"""The production core: defines the thing the fault handlers hook."""

VALUE = 1

"""Stable hash partitioning of record ids, plus slab byte layout.

Also home to the flat int64 slab layout
(:func:`pack_sections` / :func:`unpack_sections`) the process-parallel
executor uses to place per-shard position sets — type buckets, term
postings, link buckets — into ``multiprocessing.shared_memory`` segments
for zero-copy worker scans.  It lives here (stdlib-only, below every
layer) for the same layering reason as :func:`shard_of`.

The one routing function both the physical store
(:class:`repro.management.storage.PartitionedGraphStore`) and the plan
layer's columnar scatter views (:func:`repro.plan.columnar.cut_columnar_views`)
agree on.  It lives in ``repro.core`` because both sides need it and the
layering DAG (see ``docs/ARCHITECTURE.md``) forbids the plan layer from
importing the management layer: the store sits *above* the compiler (it
manages plan caches), so a ``plan → management`` import would close a
package cycle.
"""

from __future__ import annotations

import zlib
from typing import Any, Mapping, Sequence

from repro.core.graph import Id

#: Byte width of one slab element (int64 row positions).
SLAB_ITEMSIZE = 8


def pack_sections(
    groups: Mapping[str, Mapping[Any, Sequence[int]]],
) -> tuple[dict[str, dict[Any, tuple[int, int]]], bytearray]:
    """Pack named groups of position lists into one flat int64 slab.

    Returns ``(directory, buffer)``: the directory maps each group name
    to ``{key: (offset, count)}`` — *offset* in elements, not bytes —
    and the buffer holds every position list back to back as native
    int64.  The directory is small and picklable (it carries no
    positions); the buffer is the payload a shared-memory segment can
    hold so attached processes read the very same bytes.
    """
    import array

    flat = array.array("q")
    directory: dict[str, dict[Any, tuple[int, int]]] = {}
    for group, sections in groups.items():
        entry: dict[Any, tuple[int, int]] = {}
        for key, positions in sections.items():
            offset = len(flat)
            flat.extend(int(p) for p in positions)
            entry[key] = (offset, len(flat) - offset)
        directory[group] = entry
    return directory, bytearray(flat.tobytes())


def section_positions(
    buffer: Any, offset: int, count: int
) -> "memoryview":
    """One packed section of a slab buffer, zero-copy.

    *buffer* is anything exposing the buffer protocol over the bytes
    :func:`pack_sections` produced (a ``bytearray``, a
    ``multiprocessing.shared_memory`` buffer).  The returned int64
    memoryview aliases the slab — no positions are copied, which is the
    point of placing the slab in shared memory.
    """
    view = memoryview(buffer).cast("B")
    start = offset * SLAB_ITEMSIZE
    return view[start:start + count * SLAB_ITEMSIZE].cast("q")


def unpack_sections(
    directory: Mapping[str, Mapping[Any, tuple[int, int]]],
    buffer: Any,
    wrap: Any = None,
) -> dict[str, dict[Any, Any]]:
    """Rebuild every group's ``{key: positions}`` views over *buffer*.

    *wrap* post-processes each section view (e.g. ``numpy.asarray`` for
    vectorized fancy indexing); by default the raw int64 memoryviews are
    returned.  Either way the positions alias the slab bytes.
    """
    out: dict[str, dict[Any, Any]] = {}
    for group, sections in directory.items():
        rebuilt: dict[Any, Any] = {}
        for key, (offset, count) in sections.items():
            positions = section_positions(buffer, offset, count)
            rebuilt[key] = wrap(positions) if wrap is not None else positions
        out[group] = rebuilt
    return out


def slab_nbytes(groups: Mapping[str, Mapping[Any, Sequence[int]]]) -> int:
    """Total slab size in bytes for the given groups (≥1 for SharedMemory)."""
    total = sum(
        len(positions)
        for sections in groups.values()
        for positions in sections.values()
    )
    return max(total * SLAB_ITEMSIZE, 1)


def shard_of(record_id: Id, num_shards: int) -> int:
    """Stable hash partition of a record id.

    Process-independent (unlike ``hash(str)``) so shard assignment — and
    therefore per-shard scan order — is reproducible across runs.
    """
    return zlib.crc32(repr(record_id).encode("utf-8")) % num_shards

"""Experiment P1 — the plan compiler: compile cost, cache, access paths.

Three questions the plan-compilation redesign answers quantitatively:

1. what does compiling a query cost, and what does the plan cache save
   (cold compile vs. cache hit)?
2. what does the compiled serving path cost next to PR 1's hand-written
   eager pipeline (``SemanticRelevance.candidates``), at identical
   results?
3. where does the cost model's scan-vs-index crossover sit as keyword
   selectivity varies — and does the chosen path actually win?

Tables print via the ``report`` fixture; a machine-readable summary lands
in ``BENCH_plan.json`` at the repo root.  Under ``--quick`` everything
still runs (and the JSON is still written) but timing assertions are
skipped.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import Condition, Node, SocialContentGraph, input_graph
from repro.discovery import parse_query
from repro.discovery.relevance import SemanticRelevance
from repro.indexing import SemanticItemIndex
from repro.plan import QueryPlanner
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

RESULTS: dict = {}


@pytest.fixture(scope="module")
def site(quick):
    config = TravelSiteConfig(seed=42)
    return build_travel_site(config)


@pytest.fixture(scope="module")
def planner(site):
    planner = QueryPlanner(site.graph)
    index = SemanticItemIndex(site.graph)
    planner.attach_index(
        "item", provider=lambda: index, scorer_provider=lambda: index.scorer
    )
    planner._bench_index = index  # share the scorer with the exprs below
    return planner


def deep_expr(scorer, width: int = 6):
    """A deliberately deep plan: enough nodes that compilation has a cost."""
    G = input_graph("G")
    branches = []
    for i in range(width):
        branch = G.select_links({"type": "visit"}).select_links(
            {"weight__ge": i / 10}
        ).semi_join(G.select_nodes({"type": "user"}), ("src", "src"))
        branches.append(branch)
    plan = branches[0]
    for branch in branches[1:]:
        plan = plan.union(branch)
    return plan.select_nodes(Condition({"type": "item"}, keywords="denver"),
                             scorer)


def test_cold_compile_vs_cache_hit(planner, report, benchmark, quick):
    expr = deep_expr(planner._bench_index.scorer)
    _ = planner.stats  # statistics priming out of the timing
    rounds = 5 if quick else 200

    start = time.perf_counter()
    for _ in range(rounds):
        planner.cache.clear()
        planner.compile(expr)
    cold = (time.perf_counter() - start) / rounds

    planner.compile(expr)
    start = time.perf_counter()
    for _ in range(rounds):
        plan, hit = planner.compile(expr)
        assert hit
    warm = (time.perf_counter() - start) / rounds

    benchmark(planner.compile, expr)
    speedup = cold / warm if warm > 0 else float("inf")
    RESULTS["compile"] = {
        "cold_compile_ms": cold * 1e3,
        "cache_hit_ms": warm * 1e3,
        "speedup": speedup,
    }
    report(
        "",
        "=== Plan compilation: cold vs plan-cache hit ===",
        f"  cold compile (optimize+lower): {cold * 1e6:8.1f} µs",
        f"  plan-cache hit:                {warm * 1e6:8.1f} µs",
        f"  speedup:                       {speedup:8.1f}x",
    )
    if not quick:
        assert warm < cold


def test_compiled_path_vs_handwritten(site, planner, report, quick):
    """PR 1's eager semantic stage vs. the compiled plan path, same scores."""
    semantic = SemanticRelevance(site.graph,
                                 scorer=planner._bench_index.scorer)
    queries = [parse_query(JOHN, t) for t in
               ("Denver attractions", "museum history", "baseball",
                "family trip", "art galleries")]
    # parity first: identical score maps on every query
    for query in queries:
        compiled = planner.semantic_candidates(
            query, scorer=planner._bench_index.scorer
        )
        assert compiled.scores() == semantic.candidates(query).scores

    rounds = 2 if quick else 30

    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            semantic.candidates(query)
    handwritten = (time.perf_counter() - start) / rounds

    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            planner.semantic_candidates(
                query, scorer=planner._bench_index.scorer
            )
    compiled_time = (time.perf_counter() - start) / rounds

    ratio = handwritten / compiled_time if compiled_time > 0 else float("inf")
    RESULTS["serving"] = {
        "handwritten_ms": handwritten * 1e3,
        "compiled_ms": compiled_time * 1e3,
        "handwritten_over_compiled": ratio,
    }
    report(
        "",
        "=== Semantic stage: hand-written eager vs compiled plan (5-query mix) ===",
        f"  hand-written scan pipeline:  {handwritten * 1e3:8.2f} ms",
        f"  compiled (cost-chosen path): {compiled_time * 1e3:8.2f} ms",
        f"  hand-written / compiled:     {ratio:8.2f}x",
    )


def selectivity_site(num_items: int, match_fraction: float) -> SocialContentGraph:
    """Items where ``needle`` appears in a controlled fraction of texts."""
    g = SocialContentGraph()
    matching = int(num_items * match_fraction)
    for i in range(num_items):
        text = "filler words everywhere" + (" needle" if i < matching else "")
        g.add_node(Node(i, type="item", name=f"spot {i}", keywords=text))
    return g


def test_scan_vs_index_crossover(report, quick):
    """Sweep selectivity; record what the model picks and what actually wins."""
    num_items = 200 if quick else 3000
    rounds = 3 if quick else 30
    sweep = []
    for fraction in (0.01, 0.05, 0.2, 0.4, 0.6, 0.9):
        graph = selectivity_site(num_items, fraction)
        index = SemanticItemIndex(graph)
        planner = QueryPlanner(graph)
        planner.attach_index(
            "item", provider=lambda index=index: index,
            scorer_provider=lambda index=index: index.scorer,
        )
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="needle"), index.scorer
        )
        auto_plan, _ = planner.compile(expr, access="auto")
        chosen = auto_plan.access_path

        timings = {}
        # explicit env bypasses the planner's sub-plan result memo: this
        # sweep times the physical executors, not the memo
        env = {"G": graph}
        for access in ("scan", "index"):
            planner.execute(expr, env=env, access=access)  # prime
            start = time.perf_counter()
            for _ in range(rounds):
                planner.execute(expr, env=env, access=access)
            timings[access] = (time.perf_counter() - start) / rounds
        sweep.append({
            "match_fraction": fraction,
            "chosen": chosen,
            "scan_ms": timings["scan"] * 1e3,
            "index_ms": timings["index"] * 1e3,
        })

    RESULTS["selectivity_sweep"] = {"num_items": num_items, "points": sweep}
    lines = [
        "",
        f"=== Access path vs selectivity ({num_items} items) ===",
        "  match%   chosen    scan ms   index ms",
    ]
    for point in sweep:
        lines.append(
            f"  {point['match_fraction'] * 100:5.0f}   {point['chosen']:>6}"
            f"   {point['scan_ms']:8.2f}  {point['index_ms']:8.2f}"
        )
    report(*lines)

    # the model must actually switch across the sweep
    assert {p["chosen"] for p in sweep} == {"scan", "index"}
    if not quick:
        # where the model picked the index, the index must genuinely win
        for point in sweep:
            if point["chosen"] == "index" and point["match_fraction"] <= 0.05:
                assert point["index_ms"] < point["scan_ms"]


def test_social_stage_compiled_vs_legacy(site, report, quick):
    """The compiled social stage vs. the hand-executed strategies.

    Parity first (the differential harness's contract, asserted here on
    the realistic site too), then wall-clock for the three strategies over
    a keyword query and a recommendation query.
    """
    from repro.discovery import InformationDiscoverer, parse_query

    discoverer = InformationDiscoverer(site.graph)
    queries = [parse_query(JOHN, text)
               for text in ("Denver attractions", "")]
    strategies = ("friends", "similar_users", "item_based")
    rounds = 2 if quick else 15
    repeats = 1 if quick else 3

    def best_of(fn) -> float:
        """Min over repeats: shields against GC pauses/scheduler noise."""
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(rounds):
                for query in queries:
                    fn(query)
            best = min(best, (time.perf_counter() - start) / rounds)
        return best

    rows = []
    for strategy in strategies:
        for query in queries:
            compiled = discoverer.rank(query, strategy=strategy)
            legacy = discoverer._rank_legacy(query, strategy, None, None)
            assert [s.item_id for s in compiled.items] == \
                [s.item_id for s in legacy.items]

        legacy_time = best_of(
            lambda q, s=strategy: discoverer._rank_legacy(q, s, None, None)
        )
        compiled_time = best_of(
            lambda q, s=strategy: discoverer.rank(q, strategy=s)
        )
        rows.append({
            "strategy": strategy,
            "legacy_ms": legacy_time * 1e3,
            "compiled_ms": compiled_time * 1e3,
        })

    RESULTS["social_stage"] = {"strategies": rows}
    lines = [
        "",
        "=== Social stage: compiled pipeline vs legacy strategies ===",
        "  strategy          legacy ms   compiled ms",
    ]
    for row in rows:
        lines.append(
            f"  {row['strategy']:<15} {row['legacy_ms']:10.2f}"
            f"  {row['compiled_ms']:12.2f}"
        )
    lines.append("  (identical rankings on both paths — asserted)")
    report(*lines)

    if not quick:
        # The fusion + sub-plan-memo work closed the old regression: the
        # compiled friends pipeline must not lose to the hand-executed
        # reference again (small tolerance for shared-runner jitter).
        friends = next(r for r in rows if r["strategy"] == "friends")
        assert friends["compiled_ms"] <= friends["legacy_ms"] * 1.05


def sharded_workload(num_users: int, num_items: int) -> SocialContentGraph:
    """A mixed population: type-pinned scans must skip the user half."""
    g = SocialContentGraph()
    for u in range(num_users):
        g.add_node(Node(f"u{u}", type="user", name=f"user {u}"))
    for i in range(num_items):
        text = "needle gem" if i % 50 == 0 else "filler words everywhere"
        g.add_node(Node(i, type="item", name=f"spot {i}", keywords=text))
    return g


def test_shard_and_worker_sweep(report, quick):
    """Sweep columnar × shard count × executor vs. the legacy row scan.

    The acceptance rows of the columnar substrate: both the monolithic
    columnar scan and the sharded columnar scans must beat the legacy
    row-at-a-time monolithic scan (the PR 4 executor, pinned via
    ``CostModel(columnar=False)``) by ≥2× on the 8k-user/12k-item
    corpus — the win is covered type buckets plus the bulk null-graph
    union, so it holds on a single core.  The explicit environment
    bypasses the planner's sub-plan memo: this measures the executors,
    not the memo.
    """
    from repro.plan import CostModel, QueryPlanner

    num_users, num_items = (400, 600) if quick else (8_000, 12_000)
    rounds = 2 if quick else 8
    graph = sharded_workload(num_users, num_items)
    expr = input_graph("G").select_nodes({"type": "item"})
    env = {"G": graph}
    configurations = [
        (False, 1, "never"),  # the legacy baseline: row scan, no columns
        (True, 1, "never"),   # monolithic columnar
        (True, 2, "never"), (True, 4, "never"),
        (True, 2, "force"), (True, 4, "force"), (True, 8, "force"),
    ]
    sweep = []
    reference = None
    for columnar, shards, mode in configurations:
        planner = QueryPlanner(
            graph,
            cost_model=CostModel(shard_scan_min_nodes=64.0,
                                 columnar=columnar),
            parallelism=mode,
        )
        if shards > 1:
            planner.attach_shards(shards)
        execution = planner.execute(expr, env=env)  # prime plan + views
        ids = sorted(n.id for n in execution.result.nodes())
        if reference is None:
            reference = ids
        assert ids == reference  # parity across every configuration
        elapsed = float("inf")
        for _ in range(1 if quick else 3):  # min-of-3 damps runner noise
            start = time.perf_counter()
            for _ in range(rounds):
                execution = planner.execute(expr, env=env)
            elapsed = min(elapsed, (time.perf_counter() - start) / rounds)
        sweep.append({
            "columnar": columnar,
            "shards": shards,
            "parallel": mode,
            "executor": execution.executor if columnar else "legacy-scan",
            "scan_ms": elapsed * 1e3,
        })

    RESULTS["shard_sweep"] = {
        "num_users": num_users,
        "num_items": num_items,
        "points": sweep,
    }
    lines = [
        "",
        f"=== Columnar scan sweep ({num_users} users + {num_items} items, "
        "σN type=item) ===",
        "  columnar  shards  parallel   executor       scan ms",
    ]
    for point in sweep:
        lines.append(
            f"  {str(point['columnar']):<8}  {point['shards']:6d}"
            f"  {point['parallel']:<8}"
            f"  {point['executor']:<12}  {point['scan_ms']:8.2f}"
        )
    report(*lines)

    legacy = next(p for p in sweep if not p["columnar"])
    columnar_mono = next(p for p in sweep
                         if p["columnar"] and p["shards"] == 1)
    columnar_sharded = [p for p in sweep
                        if p["columnar"] and p["shards"] > 1]
    assert columnar_sharded
    if not quick:
        # the acceptance criteria: ≥2× over the legacy monolithic scan,
        # for the monolithic columnar form and the best sharded one
        assert columnar_mono["scan_ms"] * 2 <= legacy["scan_ms"]
        assert min(p["scan_ms"] for p in columnar_sharded) * 2 <= \
            legacy["scan_ms"]


def test_threads_vs_processes_sweep(report, quick):
    """Threads vs. the shared-memory process backend on a big σN sweep.

    The multicore acceptance row: on the 8k-user/12k-item corpus with 4
    shards, process workers holding resident columnar slabs must beat
    the thread pool (the GIL serializes the thread kernels; the workers
    scan in true parallel) — a claim that only holds with ≥4 cores, so
    the ratio is *waived* (``waived_metrics``) on smaller runners and in
    the quick regime, while the parity and PID-crossing assertions still
    run everywhere.  Distinct per-round conditions keep the planner's
    sub-plan memo out of the measurement; the slab ship happens once,
    outside the timed region, exactly as a warm server amortizes it.
    """
    import os

    from repro.plan import CostModel, QueryPlanner

    num_users, num_items = (400, 600) if quick else (8_000, 12_000)
    rounds = 4 if quick else 16
    shards = 4
    graph = sharded_workload(num_users, num_items)
    # big-σN, non-covered scans: "filler" keeps 49/50 items, the unique
    # second term defeats the sub-plan memo without changing survivors
    conditions = [
        Condition({"type": "item"}, keywords=f"filler uniq{r}")
        for r in range(rounds + 1)
    ]
    exprs = [input_graph("G").select_nodes(c) for c in conditions]
    reference = sorted(
        n.id for n in QueryPlanner(graph).execute(exprs[0]).result.nodes()
    )

    timings: dict[str, float] = {}
    worker_pids: list[int] = []
    ids_by_mode: dict[str, list] = {}
    for mode in ("threads", "processes"):
        planner = QueryPlanner(
            graph,
            cost_model=CostModel(shard_scan_min_nodes=64.0,
                                 process_min_rows=0.0),
            parallelism=mode,
        )
        planner.attach_shards(shards)
        try:
            # prime: compile, cut views, spawn workers, ship slabs
            primed = planner.execute(exprs[0])
            ids = sorted(n.id for n in primed.result.nodes())
            assert ids == reference, mode
            if mode == "processes":
                assert primed.executor.startswith("processes("), (
                    primed.executor
                )
            start = time.perf_counter()
            for expr in exprs[1:]:
                execution = planner.execute(expr)
            timings[mode] = (time.perf_counter() - start) / rounds
            ids_by_mode[mode] = sorted(
                n.id for n in execution.result.nodes()
            )
            if mode == "processes":
                pool = planner.process_pool
                worker_pids = list(pool.worker_pids)
                assert pool.scans_run >= shards  # work actually shipped
        finally:
            planner.close()

    assert ids_by_mode["threads"] == ids_by_mode["processes"]
    # the multicore smoke invariant: scans ran outside this process
    assert worker_pids
    assert any(pid != os.getpid() for pid in worker_pids)

    cpu_count = os.cpu_count() or 1
    ratio = timings["processes"] / timings["threads"]
    waived = ["multicore.processes_over_threads"] \
        if quick or cpu_count < 4 else []
    RESULTS["multicore"] = {
        "cpu_count": cpu_count,
        "num_users": num_users,
        "num_items": num_items,
        "shards": shards,
        "threads_s": timings["threads"],
        "processes_s": timings["processes"],
        "processes_over_threads": ratio,
        "worker_pids": worker_pids,
        "waived_metrics": waived,
    }
    report(
        "",
        f"=== Threads vs processes ({num_users} users + {num_items} items, "
        f"{shards} shards, {cpu_count} cores) ===",
        f"  threads    {timings['threads'] * 1e3:8.2f} ms/round",
        f"  processes  {timings['processes'] * 1e3:8.2f} ms/round "
        f"(workers {worker_pids})",
        f"  processes/threads = {ratio:.3f}"
        + ("  [waived: quick regime or <4 cores]" if waived else ""),
    )
    if not waived:
        # the acceptance claim itself, when the hardware can host it
        assert ratio < 1.0


def test_attr_index_vs_columnar_scan(report, quick):
    """Sweep attribute-value selectivity; record the access choice.

    The Data Manager's registered attribute indexes finally carry query
    weight: an equality on an indexed attribute lowers to the per-shard
    posting path when the estimated list is cheaper than the (columnar)
    scan.  Selective values should route to postings and win; a value
    carried by most of the population should stay on the scan.
    """
    from repro.core import Node, SocialContentGraph
    from repro.plan import ATTR_INDEX, CostModel, QueryPlanner

    num_items = 300 if quick else 6_000
    rounds = 5 if quick else 40
    graph = SocialContentGraph()
    for i in range(num_items):
        # category cardinality spans the selectivity range: "rare" ~0.2%,
        # "uncommon" ~5%, "common" the rest
        if i % 500 == 0:
            category = "rare"
        elif i % 20 == 0:
            category = "uncommon"
        else:
            category = "common"
        graph.add_node(Node(i, type="item", name=f"spot {i}",
                            category=category))
    sweep = []
    for value in ("rare", "uncommon", "common"):
        planner = QueryPlanner(
            graph, cost_model=CostModel(shard_scan_min_nodes=64.0),
        )
        planner.attach_attribute_index(("category",))
        expr = input_graph("G").select_nodes(
            {"type": "item", "category": value}
        )
        plan, _ = planner.compile(expr)
        chosen = next(
            (d.chosen for d in plan.decisions if d.chosen == ATTR_INDEX),
            "columnar-scan",
        )
        # parity: the posting path and the forced scan agree exactly
        via_plan = planner.execute(expr)
        via_scan = planner.execute(expr, access="scan")
        assert via_plan.result.same_as(via_scan.result)
        timings = {}
        for access in ("auto", "scan"):
            planner.execute(expr, env={"G": graph}, access=access)
            start = time.perf_counter()
            for _ in range(rounds):
                planner.execute(expr, env={"G": graph}, access=access)
            timings[access] = (time.perf_counter() - start) / rounds
        sweep.append({
            "value": value,
            "matching": sum(
                1 for n in graph.nodes() if n.value("category") == value
            ),
            "chosen": chosen,
            "auto_ms": timings["auto"] * 1e3,
            "scan_ms": timings["scan"] * 1e3,
        })

    RESULTS["attr_index_sweep"] = {"num_items": num_items, "points": sweep}
    lines = [
        "",
        f"=== Attribute-index access path ({num_items} items, "
        "σN type=item ∧ category=v) ===",
        "  value      matching   chosen           auto ms   scan ms",
    ]
    for point in sweep:
        lines.append(
            f"  {point['value']:<9} {point['matching']:9d}"
            f"   {point['chosen']:<14}  {point['auto_ms']:8.2f}"
            f"  {point['scan_ms']:8.2f}"
        )
    report(*lines)

    chosen_set = {p["chosen"] for p in sweep}
    assert ATTR_INDEX in chosen_set       # selective values take postings
    assert "columnar-scan" in chosen_set  # common values stay on the scan
    if not quick:
        rare = next(p for p in sweep if p["value"] == "rare")
        assert rare["chosen"] == ATTR_INDEX
        assert rare["auto_ms"] < rare["scan_ms"]


def test_social_index_vs_scan_crossover(report, quick):
    """Sweep endorsement density; record the social access-path choice.

    Dense overlap (many friends acting on a small shared pool) should
    route to the §6.2 endorsement index — few postings stand in for many
    probes; sparse graphs stay on the adjacency probe.
    """
    from factories import social_site_graph
    from repro.discovery import parse_query

    rounds = 3 if quick else 20
    shapes = [
        # (users, follows, items, acts each) — the shared ring-site
        # factory the parity suite randomises over, density dialed up
        (30, 2, 200, 2),     # sparse: the probe is a handful of links
        (30, 6, 120, 4),
        (30, 15, 20, 15),    # dense: 225 probes collapse onto ≤20 postings
        (40, 25, 12, 20),
    ]
    sweep = []
    for users, follows, items, acts in shapes:
        graph = social_site_graph(
            num_users=users, num_items=items, friends_per_user=follows,
            acts_per_user=acts, with_sim_links=False,
        )
        planner = QueryPlanner(graph)
        query = parse_query("u0", "")
        auto = planner.discovery_pipeline(query, alpha=0.0, access="auto")
        chosen = next(
            (d.chosen for d in auto.plan.decisions
             if d.op.startswith("social")), "scan",
        )
        timings = {}
        for access in ("scan", "index"):
            planner.discovery_pipeline(query, alpha=0.0, access=access)
            start = time.perf_counter()
            for _ in range(rounds):
                planner.discovery_pipeline(query, alpha=0.0, access=access)
            timings[access] = (time.perf_counter() - start) / rounds
        sweep.append({
            "users": users, "follows": follows, "items": items,
            "acts_per_user": acts, "chosen": chosen,
            "probe_ms": timings["scan"] * 1e3,
            "index_ms": timings["index"] * 1e3,
        })

    RESULTS["social_access_sweep"] = {"points": sweep}
    lines = [
        "",
        "=== Social access path vs endorsement density ===",
        "  users  follows  items  acts   chosen            probe ms  index ms",
    ]
    for point in sweep:
        lines.append(
            f"  {point['users']:5d}  {point['follows']:7d}"
            f"  {point['items']:5d}  {point['acts_per_user']:4d}"
            f"   {point['chosen']:<16}"
            f"  {point['probe_ms']:8.2f}  {point['index_ms']:8.2f}"
        )
    report(*lines)

    chosen_set = {p["chosen"] for p in sweep}
    assert "scan" in chosen_set           # sparse shapes stay on the probe
    assert chosen_set - {"scan"}          # dense shapes take a network index


def test_emit_bench_json(report, quick):
    """Write the machine-readable summary (runs last in file order)."""
    RESULTS["quick"] = bool(quick)
    OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")
    report("", f"BENCH_plan.json written: {OUTPUT}")
    assert OUTPUT.exists()
    assert {"compile", "serving", "selectivity_sweep", "social_stage",
            "social_access_sweep", "shard_sweep", "multicore",
            "attr_index_sweep"} <= RESULTS.keys()

"""repro — a full reproduction of *SocialScope: Enabling Information
Discovery on Social Content Sites* (Amer-Yahia, Lakshmanan, Yu; CIDR 2009).

The library implements the paper's three-layer architecture end to end:

* :mod:`repro.core` — the social content graph model and the paper's
  algebra (selections, set operators, composition, semi-join, SAF/NAF
  aggregation, graph-pattern aggregation, plans + optimizer);
* :mod:`repro.analysis` — the Content Analyzer (LDA topics, association
  rules, derived similarity links);
* :mod:`repro.discovery` — the Information Discoverer (query model and
  classifier, semantic + social relevance, Meaningful Social Graphs);
* :mod:`repro.management` — the Content Management layer (storage,
  OpenSocial-style integration, the three management models, activity-driven
  sync);
* :mod:`repro.indexing` — §6.2's network-aware inverted indexes, user
  clustering strategies and top-k pruning;
* :mod:`repro.presentation` — §7's grouping, ranking and explanations;
* :mod:`repro.workloads` — synthetic social-content-site workloads
  (Y!Travel-like, del.icio.us-like) and the Table 1 query generator;
* :class:`repro.socialscope.SocialScope` — the facade wiring the layers
  together (Figure 1).

Quickstart::

    from repro import SocialScope
    from repro.workloads import TravelSiteConfig, build_travel_site

    site = build_travel_site(TravelSiteConfig(seed=42))
    scope = SocialScope.from_graph(site.graph)
    page = scope.search(user_id=site.personas["john"], query="Denver attractions")
    for group in page.groups:
        print(group.label, [r.item_id for r in group.results])
"""

from repro.core import (
    Condition,
    Link,
    Node,
    SocialContentGraph,
    aggregate_links,
    aggregate_nodes,
    compose,
    intersection,
    link_minus,
    minus,
    select_links,
    select_nodes,
    semi_join,
    union,
)

__version__ = "1.0.0"

__all__ = [
    "Node",
    "Link",
    "SocialContentGraph",
    "Condition",
    "select_nodes",
    "select_links",
    "union",
    "intersection",
    "minus",
    "link_minus",
    "semi_join",
    "compose",
    "aggregate_nodes",
    "aggregate_links",
    "SocialScope",
    "__version__",
]


def __getattr__(name: str):
    # Lazy import: the facade pulls in every layer; keep `import repro`
    # cheap for users who only need the algebra.
    if name == "SocialScope":
        from repro.socialscope import SocialScope

        return SocialScope
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

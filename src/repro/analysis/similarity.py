"""Derived similarity links between users and between items.

The social content graph contains information that "may be ... derived
(e.g., links describing similarities between users)" (paper §3).  This
module computes those derived ``match`` links:

* **user-user similarity** — Jaccard over the item sets users acted on
  (the same measure Example 5's collaborative filtering uses), or over
  their friend networks (the measure of Def 11);
* **item-item similarity** — cosine over tagger incidence vectors, the
  ``ItemSim`` of §7.2's content-based explanations.

All functions are pure: they *return* a graph of derived links (endpoints
included) that the Content Analyzer unions into the main graph, so derived
information is clearly provenance-marked (``derived_by`` attribute).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core import Id, Link, SocialContentGraph


def jaccard(a: set, b: set) -> float:
    """|a ∩ b| / |a ∪ b| (0 when both empty)."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def cosine(a: dict, b: dict) -> float:
    """Cosine over sparse weight dicts."""
    if not a or not b:
        return 0.0
    dot = sum(w * b[k] for k, w in a.items() if k in b)
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def items_of_users(graph: SocialContentGraph, act_type: str = "act") -> dict[Id, set]:
    """user -> set of items they acted on (the paper's ``items(u)``)."""
    out: dict[Id, set] = {}
    for link in graph.links():
        if link.has_type(act_type):
            out.setdefault(link.src, set()).add(link.tgt)
    return out


def network_of_users(
    graph: SocialContentGraph, connect_type: str = "connect"
) -> dict[Id, set]:
    """user -> set of connected users (the paper's ``network(u)``).

    Both directions count: a connect link u→v puts v in network(u) and u in
    network(v) (friendship links are stored in both directions anyway).
    """
    out: dict[Id, set] = {}
    for link in graph.links():
        if link.has_type(connect_type):
            out.setdefault(link.src, set()).add(link.tgt)
            out.setdefault(link.tgt, set()).add(link.src)
    return out


def taggers_of_items(graph: SocialContentGraph, act_type: str = "act") -> dict[Id, set]:
    """item -> set of users who acted on it (the paper's ``taggers(i)``)."""
    out: dict[Id, set] = {}
    for link in graph.links():
        if link.has_type(act_type):
            out.setdefault(link.tgt, set()).add(link.src)
    return out


def _similarity_graph(
    base: SocialContentGraph,
    vectors: dict[Id, set],
    threshold: float,
    link_type: str,
    derived_by: str,
    measure: Callable[[set, set], float] = jaccard,
) -> SocialContentGraph:
    """All-pairs thresholded similarity links over *vectors*.

    Pairs are enumerated via shared elements (inverted index) so the cost
    is proportional to co-occurrence, not |V|²; links are emitted in both
    directions to keep derived similarity symmetric in the directed model.
    """
    out = SocialContentGraph(catalog=base.catalog)
    by_element: dict = {}
    for owner, elements in vectors.items():
        for element in elements:
            by_element.setdefault(element, set()).add(owner)
    candidate_pairs: set[tuple[Id, Id]] = set()
    for owners in by_element.values():
        ordered = sorted(owners, key=repr)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                candidate_pairs.add((a, b))
    for a, b in sorted(candidate_pairs, key=repr):
        sim = measure(vectors[a], vectors[b])
        if sim < threshold:
            continue
        for node_id in (a, b):
            if not out.has_node(node_id) and base.has_node(node_id):
                out.add_node(base.node(node_id))
        if not (out.has_node(a) and out.has_node(b)):
            continue
        out.add_link(Link(f"sim:{derived_by}:{a}->{b}", a, b,
                          type=f"match, {link_type}", sim=round(sim, 6),
                          derived_by=derived_by))
        out.add_link(Link(f"sim:{derived_by}:{b}->{a}", b, a,
                          type=f"match, {link_type}", sim=round(sim, 6),
                          derived_by=derived_by))
    return out


def user_similarity_links(
    graph: SocialContentGraph,
    threshold: float = 0.2,
    basis: str = "items",
    act_type: str = "act",
    connect_type: str = "connect",
) -> SocialContentGraph:
    """Derived user-user ``match, sim_user`` links.

    ``basis='items'`` uses tagging/visiting behaviour (Def 12's measure);
    ``basis='network'`` uses friend-set overlap (Def 11's measure).
    """
    if basis == "items":
        vectors = items_of_users(graph, act_type)
    elif basis == "network":
        vectors = network_of_users(graph, connect_type)
    else:
        raise ValueError(f"unknown similarity basis {basis!r}")
    return _similarity_graph(
        graph, vectors, threshold, "sim_user", f"user_similarity:{basis}"
    )


def item_similarity_links(
    graph: SocialContentGraph,
    threshold: float = 0.2,
    act_type: str = "act",
) -> SocialContentGraph:
    """Derived item-item ``match, sim_item`` links (Jaccard over taggers)."""
    vectors = taggers_of_items(graph, act_type)
    return _similarity_graph(
        graph, vectors, threshold, "sim_item", "item_similarity"
    )

"""Cardinality feedback: execution actuals correcting the cost model.

The loop under test: the planner observes estimated-vs-actual node
counts of base-graph selections after execution (on plan compiles),
stores capped per-term / per-type correction factors, and future
estimates multiply them in — so a workload whose statistics mislead the
independence assumptions self-corrects over repeated queries.
"""

from __future__ import annotations

import pytest

from repro.core import Condition, Node, SocialContentGraph, input_graph
from repro.core.stats import CardinalityFeedback, GraphStats
from repro.plan import QueryPlanner


def correlated_corpus(num_items: int = 120,
                      both_fraction: float = 0.1) -> SocialContentGraph:
    """Items where 'alpha' and 'beta' always co-occur.

    The term histogram prices the pair under independence —
    1-(1-f)(1-f) ≈ 2f — while the true match fraction is f: a built-in
    2x overestimate for feedback to burn down.
    """
    g = SocialContentGraph()
    matching = int(num_items * both_fraction)
    for i in range(num_items):
        text = "alpha beta gem" if i < matching else "plain filler words"
        g.add_node(Node(i, type="item", name=f"spot {i}", keywords=text))
    return g


class TestCorrectionTable:
    def test_observations_are_smoothed_and_capped(self):
        feedback = CardinalityFeedback(max_correction=4.0, smoothing=1.0)
        key = CardinalityFeedback.term_key("alpha")
        feedback.observe(key, estimated=100.0, actual=50.0)
        assert feedback.factor(key) == pytest.approx(0.5)
        # wildly wrong estimates still clamp at the cap
        for _ in range(10):
            feedback.observe(key, estimated=1.0, actual=10_000.0)
        assert feedback.factor(key) == 4.0
        for _ in range(10):
            feedback.observe(key, estimated=10_000.0, actual=1.0)
        assert feedback.factor(key) == pytest.approx(0.25)

    def test_smoothing_damps_single_outliers(self):
        feedback = CardinalityFeedback(smoothing=0.5)
        key = ("term", "x")
        feedback.observe(key, estimated=100.0, actual=50.0)
        first = feedback.factor(key)
        assert 0.5 < first < 1.0  # moved halfway, not all the way

    def test_zero_sides_are_guarded(self):
        feedback = CardinalityFeedback()
        feedback.observe(("term", "x"), estimated=0.0, actual=0.0)
        assert feedback.observations == 0
        feedback.observe(("term", "x"), estimated=0.0, actual=5.0)
        assert feedback.factor(("term", "x")) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CardinalityFeedback(max_correction=0.5)
        with pytest.raises(ValueError):
            CardinalityFeedback(smoothing=0.0)


class TestStatsIntegration:
    def test_term_factor_scales_the_match_fraction(self):
        graph = correlated_corpus()
        stats = GraphStats.of(graph, with_terms=True)
        baseline = stats.keyword_match_fraction(("alpha", "beta"))
        feedback = CardinalityFeedback()
        feedback._factors[CardinalityFeedback.term_key("alpha")] = 0.5
        feedback._factors[CardinalityFeedback.term_key("beta")] = 0.5
        stats.feedback = feedback
        assert stats.keyword_match_fraction(("alpha", "beta")) < baseline

    def test_type_factor_scales_structural_selectivity(self):
        graph = correlated_corpus()
        stats = GraphStats.of(graph)
        baseline = stats.condition_selectivity(
            Condition({"type": "item"}), of_links=False
        )
        feedback = CardinalityFeedback()
        feedback._factors[CardinalityFeedback.type_key("item", False)] = 0.5
        stats.feedback = feedback
        assert stats.condition_selectivity(
            Condition({"type": "item"}), of_links=False
        ) == pytest.approx(baseline * 0.5)


class TestPlannerLoop:
    def _error(self, planner, expr):
        plan, _ = planner.compile(expr)
        estimated = plan.root.estimate(planner.stats).nodes
        actual = planner.execute(expr).result.num_nodes
        return abs(estimated - actual) / max(actual, 1)

    def test_repeated_queries_converge_the_estimate(self):
        graph = correlated_corpus()
        planner = QueryPlanner(graph)
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="alpha beta")
        )
        initial = self._error(planner, expr)
        assert initial > 0.5  # the independence assumption is badly off
        errors = [initial]
        for _ in range(8):
            planner.cache.clear()  # evicted plan: the next compile is fresh
            errors.append(self._error(planner, expr))
        assert errors[-1] < 0.15
        assert errors[-1] < errors[0]
        assert planner.feedback.observations > 0

    def test_corrections_survive_refresh(self):
        graph = correlated_corpus()
        planner = QueryPlanner(graph)
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="alpha beta")
        )
        planner.execute(expr)
        table = planner.feedback.snapshot()
        assert table  # terms observed
        planner.refresh(graph)
        assert planner.feedback.snapshot() == table
        assert planner.stats.feedback is planner.feedback

    def test_observation_rides_on_compiles_not_hits(self):
        graph = correlated_corpus()
        planner = QueryPlanner(graph)
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="alpha")
        )
        planner.execute(expr)
        seen = planner.feedback.observations
        planner.execute(expr)  # plan-cache hit: no second observation
        assert planner.feedback.observations == seen

    def test_correction_magnitude_is_capped(self):
        graph = correlated_corpus()
        planner = QueryPlanner(graph)
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="alpha beta")
        )
        for _ in range(12):
            planner.cache.clear()
            planner.execute(expr)
        for factor in planner.feedback.snapshot().values():
            assert 1 / 8.0 <= factor <= 8.0

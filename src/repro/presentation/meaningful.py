"""Group meaningfulness and grouping choice (paper §7.1).

    "Group meaningfulness can be defined using a combination of the
    following criteria.  First, total number of groups.  Due to real
    estate on a page, the number of groups to display at a time needs to
    be restricted.  Second, group quality, which is defined using the
    relevance of items in the group.  Finally, group size, which is simply
    the number of items in the group."

:func:`meaningfulness` scores a candidate grouping on exactly those three
criteria; :func:`choose_grouping` lets the Information Organizer pick the
best dimension for the current result set ("when multiple presentation
groups are available, Information Organizer also makes decisions on which
group is more relevant").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.discovery.msg import MeaningfulSocialGraph
from repro.presentation.grouping import GroupingResult


@dataclass(frozen=True)
class MeaningfulnessWeights:
    """Relative weights of the three §7.1 criteria."""

    count_weight: float = 1.0
    quality_weight: float = 1.0
    balance_weight: float = 1.0
    #: screen real estate: the ideal displayed group count
    ideal_groups: int = 4
    max_groups: int = 8


def count_score(n_groups: int, weights: MeaningfulnessWeights) -> float:
    """1.0 at the ideal group count, decaying toward 0 at 1 or many groups.

    A single group conveys nothing; more groups than fit the page hurt.
    """
    if n_groups <= 1:
        return 0.0
    if n_groups > weights.max_groups:
        return max(0.0, 1.0 - 0.15 * (n_groups - weights.max_groups))
    distance = abs(n_groups - weights.ideal_groups)
    return max(0.0, 1.0 - distance / weights.max_groups)


def quality_score(grouping: GroupingResult, msg: MeaningfulSocialGraph) -> float:
    """Mean over groups of the mean item relevance inside the group."""
    if not grouping.groups:
        return 0.0
    means = []
    for group in grouping.groups:
        if not group.items:
            continue
        means.append(
            sum(msg.score_of(i) for i in group.items) / len(group.items)
        )
    return sum(means) / len(means) if means else 0.0


def balance_score(grouping: GroupingResult) -> float:
    """Normalised size entropy: 1.0 for evenly sized groups, → 0 for one
    dominant group."""
    sizes = [g.size for g in grouping.groups if g.size > 0]
    if len(sizes) <= 1:
        return 0.0
    total = sum(sizes)
    entropy = -sum((s / total) * math.log(s / total) for s in sizes)
    return entropy / math.log(len(sizes))


def meaningfulness(
    grouping: GroupingResult,
    msg: MeaningfulSocialGraph,
    weights: MeaningfulnessWeights | None = None,
) -> float:
    """Combined §7.1 meaningfulness of a candidate grouping."""
    w = weights or MeaningfulnessWeights()
    total_weight = w.count_weight + w.quality_weight + w.balance_weight
    score = (
        w.count_weight * count_score(grouping.num_groups, w)
        + w.quality_weight * quality_score(grouping, msg)
        + w.balance_weight * balance_score(grouping)
    )
    return score / total_weight if total_weight else 0.0


def choose_grouping(
    candidates: list[GroupingResult],
    msg: MeaningfulSocialGraph,
    weights: MeaningfulnessWeights | None = None,
) -> tuple[GroupingResult, dict[str, float]]:
    """Pick the most meaningful grouping; returns (winner, per-dimension
    scores) so callers can explain the choice."""
    if not candidates:
        raise ValueError("no candidate groupings supplied")
    scored = {
        c.dimension: meaningfulness(c, msg, weights) for c in candidates
    }
    winner = max(candidates, key=lambda c: (scored[c.dimension], c.dimension))
    return winner, scored

"""Property-based tests (hypothesis) for the algebra laws.

The operators' definitions imply a family of identities (commutativity,
associativity, idempotence, absorption, Lemma 1 ...).  We check them on
randomly drawn graph pairs that share an id space — the "same social
content site" precondition of Definition 3 — so that shared ids always
denote identical records.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core import (
    count,
    intersection,
    link_minus,
    link_minus_via_semijoin,
    minus,
    select_links,
    select_nodes,
    semi_join,
    union,
    aggregate_nodes,
)
from tests.conftest import overlapping_graph_pairs, social_graphs

FAST = settings(max_examples=60, deadline=None)


class TestUnionLaws:
    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_commutative(self, pair):
        g1, g2 = pair
        assert union(g1, g2).same_as(union(g2, g1))

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_idempotent(self, pair):
        g1, _ = pair
        assert union(g1, g1).same_as(g1)

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_associative_with_self(self, pair):
        g1, g2 = pair
        assert union(union(g1, g2), g1).same_as(union(g1, union(g2, g1)))

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_contains_both_inputs(self, pair):
        g1, g2 = pair
        u = union(g1, g2)
        assert g1.node_ids() | g2.node_ids() == u.node_ids()
        assert g1.link_ids() | g2.link_ids() == u.link_ids()


class TestIntersectionLaws:
    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_commutative(self, pair):
        g1, g2 = pair
        assert intersection(g1, g2).same_as(intersection(g2, g1))

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_idempotent(self, pair):
        g1, _ = pair
        assert intersection(g1, g1).same_as(g1)

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_subset_of_union(self, pair):
        g1, g2 = pair
        inter, u = intersection(g1, g2), union(g1, g2)
        assert inter.node_ids() <= u.node_ids()
        assert inter.link_ids() <= u.link_ids()

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_absorption(self, pair):
        g1, g2 = pair
        assert intersection(g1, union(g1, g2)).same_as(g1)


class TestMinusLaws:
    @given(g=social_graphs())
    @FAST
    def test_self_minus_empty(self, g):
        assert minus(g, g).is_empty()
        assert link_minus(g, g).num_links == 0

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_minus_disjoint_from_subtrahend_nodes(self, pair):
        g1, g2 = pair
        result = minus(g1, g2)
        assert result.node_ids().isdisjoint(g2.node_ids())

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_node_partition(self, pair):
        # nodes(G1) = nodes(G1∩G2) ⊎ nodes(G1\G2)
        g1, g2 = pair
        left = intersection(g1, g2).node_ids()
        right = minus(g1, g2).node_ids()
        assert left | right == g1.node_ids()
        assert left & right == set()

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_lemma1_equivalence(self, pair):
        # G1 \· G2 == the Lemma 1 rewrite, on arbitrary overlapping pairs.
        g1, g2 = pair
        assert link_minus(g1, g2).same_as(link_minus_via_semijoin(g1, g2))

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_link_minus_link_partition(self, pair):
        g1, g2 = pair
        kept = link_minus(g1, g2).link_ids()
        assert kept == g1.link_ids() - g2.link_ids()


class TestSelectionLaws:
    @given(g=social_graphs())
    @FAST
    def test_node_selection_idempotent(self, g):
        cond = {"type": "user"}
        once = select_nodes(g, cond)
        twice = select_nodes(once, cond)
        assert once.same_as(twice)

    @given(g=social_graphs())
    @FAST
    def test_node_selection_sound_and_complete(self, g):
        result = select_nodes(g, {"rating__ge": 3})
        for node in result.nodes():
            assert node.value("rating") >= 3
        expected = {n.id for n in g.nodes() if n.value("rating") >= 3}
        assert result.node_ids() == expected

    @given(g=social_graphs())
    @FAST
    def test_link_selection_outputs_subgraph(self, g):
        result = select_links(g, {"type": "friend"})
        for link in result.links():
            assert g.has_link(link.id)
            assert result.has_node(link.src) and result.has_node(link.tgt)

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_selection_distributes_over_intersection(self, pair):
        g1, g2 = pair
        cond = {"type": "user"}
        lhs = select_nodes(intersection(g1, g2), cond)
        rhs = intersection(select_nodes(g1, cond), select_nodes(g2, cond))
        assert lhs.same_as(rhs)


class TestSemiJoinLaws:
    @given(g=social_graphs())
    @FAST
    def test_self_semijoin_keeps_all_links(self, g):
        result = semi_join(g, g, ("src", "src"))
        assert result.link_ids() == g.link_ids()

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_output_subgraph_of_left(self, pair):
        g1, g2 = pair
        result = semi_join(g1, g2, ("tgt", "src"))
        assert result.link_ids() <= g1.link_ids()
        assert result.node_ids() <= g1.node_ids()

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_monotone_in_right_argument(self, pair):
        g1, g2 = pair
        small = semi_join(g1, g2, ("src", "src"))
        big = semi_join(g1, union(g2, g1), ("src", "src"))
        assert small.link_ids() <= big.link_ids()


class TestAggregationLaws:
    @given(g=social_graphs())
    @FAST
    def test_node_aggregation_preserves_structure(self, g):
        result = aggregate_nodes(g, {"type": "friend"}, "src", "fc", count())
        assert result.node_ids() == g.node_ids()
        assert result.link_ids() == g.link_ids()

    @given(g=social_graphs())
    @FAST
    def test_count_matches_manual(self, g):
        result = aggregate_nodes(g, {"type": "friend"}, "src", "fc", count())
        for node in result.nodes():
            expected = sum(
                1 for l in g.out_links(node.id) if l.has_type("friend")
            )
            stored = node.value("fc")
            if expected == 0:
                assert stored is None
            else:
                assert stored == expected

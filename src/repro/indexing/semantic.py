"""Semantic inverted index: keyword scoping without full graph scans.

§6.2 motivates indexes as the bridge between the discovery semantics and a
serving system: "the ranked nature of search results makes inverted lists a
natural index structure".  The network-aware structures in
:mod:`repro.indexing.inverted` index *social* scores; this module applies
the same machinery to the *semantic* side — the tf-idf keyword scoping
:class:`~repro.discovery.relevance.SemanticRelevance` otherwise performs
with a full scan over the item population per query.

:class:`SemanticItemIndex` stores, per corpus token, a posting map
``item -> term frequency`` plus each item's precomputed document norm, so a
keyword query touches only the items that actually mention a query term.
Scores are bit-for-bit identical to :class:`~repro.core.scoring.TfIdfScorer`
(same variant resolution, same idf smoothing, same norm), which is what
lets the session engine swap the scan for the index without changing any
result page.

Per-term contribution lists (sorted descending) are materialised lazily and
cached, turning :meth:`topk` into a standard Fagin-style evaluation via
:func:`repro.indexing.topk.threshold_algorithm` with the usual
:class:`~repro.indexing.topk.QueryStats` accounting.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core import Id, SocialContentGraph, TfIdfScorer
from repro.core.text import term_variants, tokenize
from repro.indexing.inverted import IndexReport
from repro.indexing.scores import g_sum
from repro.indexing.topk import QueryStats, threshold_algorithm


class SemanticItemIndex:
    """Inverted tf-idf index over one item population.

    Parity contract: for any keyword sequence, :meth:`score` equals
    ``TfIdfScorer(corpus)(item, keywords)`` exactly, and :meth:`candidates`
    equals the scan path's keyword-scoped score map over the same corpus.
    """

    def __init__(
        self,
        graph: SocialContentGraph,
        item_type: str = "item",
        scorer: TfIdfScorer | None = None,
    ):
        self.item_type = item_type
        corpus = list(graph.nodes_of_type(item_type))
        #: the shared scorer (idf source); building one here costs the same
        #: corpus pass the index build needs anyway.
        self.scorer = scorer if scorer is not None else TfIdfScorer(corpus)
        self.postings: dict[str, dict[Id, int]] = {}
        self.norms: dict[Id, float] = {}
        self._term_lists: dict[str, list[tuple[Id, float]]] = {}
        for node in corpus:
            tf: dict[str, int] = {}
            for token in tokenize(node.text()):
                tf[token] = tf.get(token, 0) + 1
            if not tf:
                continue
            self.norms[node.id] = math.sqrt(
                sum((1 + math.log(c)) ** 2 for c in tf.values())
            )
            for token, count in tf.items():
                self.postings.setdefault(token, {})[node.id] = count

    # -- scoring --------------------------------------------------------------

    def _contribution(self, term: str, item: Id) -> float:
        """(1 + log tf) · idf for *item*'s best variant of *term* (un-normed).

        Variant resolution mirrors :class:`TfIdfScorer`: the variant with
        the highest term frequency wins, first listed on ties.
        """
        best, best_count = term, 0
        for variant in term_variants(term):
            count = self.postings.get(variant, {}).get(item, 0)
            if count > best_count:
                best, best_count = variant, count
        if not best_count:
            return 0.0
        return (1 + math.log(best_count)) * self.scorer.idf(best)

    def _matching_items(self, term: str) -> set[Id]:
        matched: set[Id] = set()
        for variant in term_variants(term):
            matched.update(self.postings.get(variant, ()))
        return matched

    def score(self, item: Id, keywords: Sequence[str]) -> float:
        """Exact tf-idf score of one item (0 for unknown items)."""
        norm = self.norms.get(item)
        if not norm:
            return 0.0
        total = sum(self._contribution(term, item) for term in keywords)
        return total / norm

    def candidates(self, keywords: Sequence[str]) -> dict[Id, float]:
        """All items matching ≥1 keyword variant, with exact scores.

        This is the index-backed replacement for the scan path's
        ``σN⟨keywords, tf-idf⟩`` over the item population: the same score
        map, computed by touching only posting-list items.
        """
        matched: set[Id] = set()
        for term in keywords:
            matched |= self._matching_items(term)
        return {item: self.score(item, keywords) for item in matched}

    # -- top-k ----------------------------------------------------------------

    def term_list(self, term: str) -> list[tuple[Id, float]]:
        """Sorted (item, normalised contribution) list for one query term.

        Built on first use and cached — repeated queries over a warm
        session hit the materialised list directly.
        """
        cached = self._term_lists.get(term)
        if cached is not None:
            return cached
        entries = []
        for item in self._matching_items(term):
            contribution = self._contribution(term, item)
            if contribution > 0:
                entries.append((item, contribution / self.norms[item]))
        entries.sort(key=lambda kv: (-kv[1], repr(kv[0])))
        self._term_lists[term] = entries
        return entries

    def topk(
        self, keywords: Sequence[str], k: int
    ) -> tuple[list[tuple[Id, float]], QueryStats]:
        """Top-k items by tf-idf via the Threshold Algorithm.

        Equivalent (same items, same scores, same tie-breaks) to sorting
        :meth:`candidates` and truncating, but with TA's early stopping and
        access accounting.
        """
        lists = [self.term_list(term) for term in keywords]
        index_maps = [dict(entries) for entries in lists]

        def random_access(item: Id, list_index: int) -> float:
            return index_maps[list_index].get(item, 0.0)

        return threshold_algorithm(lists, random_access, k, g_sum)

    # -- size -----------------------------------------------------------------

    def report(self) -> IndexReport:
        """Entry/list counts, comparable with the §6.2 index reports."""
        return IndexReport(
            entries=sum(len(v) for v in self.postings.values()),
            lists=len(self.postings),
        )

    def __repr__(self) -> str:
        return (
            f"SemanticItemIndex(items={len(self.norms)}, "
            f"terms={len(self.postings)})"
        )

"""Unary selection operators (paper §5.1, Definitions 1 and 2).

Node Selection::

    σN⟨C,S⟩(G) = {v, v.score = S(v) | v ∈ nodes(G) ∧ v satisfies C}

Link Selection::

    σL⟨C,S⟩(G) = {ℓ, ℓ.score = S(ℓ) | ℓ ∈ links(G) ∧ ℓ satisfies C}

Node Selection "outputs a null graph consisting of nodes (and no links) of
the input graph that satisfy the node condition C"; Link Selection "outputs a
subgraph of the input graph induced by those links satisfying the selection
condition C".  Scores are attached only when the condition carries keywords
or a scoring function is explicitly supplied — pure structural selections
pass records through untouched so that repeated selection is cheap and
idempotent.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.conditions import Condition, Predicate, as_condition
from repro.core.graph import SocialContentGraph
from repro.core.scoring import ScoringFunction, resolve_scorer

ConditionLike = Condition | Mapping[str, Any] | Predicate | None


def select_nodes(
    graph: SocialContentGraph,
    condition: ConditionLike = None,
    scorer: ScoringFunction | None = None,
    keywords: str | Iterable[str] | None = None,
) -> SocialContentGraph:
    """Node Selection σN⟨C,S⟩(G) — Definition 1.

    Parameters
    ----------
    graph:
        The input social content graph.
    condition:
        A :class:`~repro.core.conditions.Condition`, a structural mapping
        (``{'type': 'city', 'rating__ge': 0.5}``), a bare predicate, or
        ``None`` for "all nodes".
    scorer:
        Optional scoring function S.  When omitted and the condition has
        keywords, the library default S is used (per the paper).
    keywords:
        Convenience: keywords to fold into a mapping/None condition.

    Returns
    -------
    A *null graph* (no links) containing the satisfying nodes; when scoring
    applies, each node carries ``score = S(v)``.
    """
    cond = as_condition(condition, keywords)
    return graph.null_graph_unique(
        select_matching_nodes(graph.nodes(), cond, scorer)
    )


def select_matching_nodes(
    nodes: Iterable[Any],
    cond: Condition,
    scorer: ScoringFunction | None = None,
) -> list:
    """The Node Selection kernel over an explicit node population.

    Shared by :func:`select_nodes` (whole-graph scan) and the plan
    layer's sharded scan (per-partition populations): one body, so the
    two access paths cannot drift on predicate or scoring semantics.
    """
    want_scores = scorer is not None or cond.has_keywords
    scoring = resolve_scorer(scorer)
    selected = []
    for node in nodes:
        if not cond.satisfied_by(node):
            continue
        if want_scores:
            node = node.with_score(scoring(node, cond.keywords))
        selected.append(node)
    return selected


def select_matching_links(
    links: Iterable[Any],
    cond: Condition,
    scorer: ScoringFunction | None = None,
) -> list:
    """The Link Selection kernel over an explicit link population.

    Shared by :func:`select_links` (whole-graph scan) and the plan
    layer's sharded link scan (per-partition populations): one body, so
    the two access paths cannot drift on predicate or scoring semantics.
    """
    want_scores = scorer is not None or cond.has_keywords
    scoring = resolve_scorer(scorer)
    selected = []
    for link in links:
        if not cond.satisfied_by(link):
            continue
        if want_scores:
            link = link.with_score(scoring(link, cond.keywords))
        selected.append(link)
    return selected


def select_links(
    graph: SocialContentGraph,
    condition: ConditionLike = None,
    scorer: ScoringFunction | None = None,
    keywords: str | Iterable[str] | None = None,
) -> SocialContentGraph:
    """Link Selection σL⟨C,S⟩(G) — Definition 2.

    Returns the subgraph of *graph* induced by the satisfying links: the
    links themselves plus their endpoint nodes.  When scoring applies, each
    link carries ``score = S(ℓ)``.
    """
    cond = as_condition(condition, keywords)
    return graph.subgraph_from_links(
        select_matching_links(graph.links(), cond, scorer)
    )

"""Association rule mining (Apriori) over user activity transactions.

The Content Analyzer's second cited technique is "association rule mining
[3]" (Agrawal, Imielinski & Swami 1993).  We implement classic Apriori:
level-wise frequent-itemset mining with the anti-monotone support prune,
followed by confidence-filtered rule generation.  On a social content site
a *transaction* is typically the set of items a user has acted on — rules
like ``{coors_field} ⇒ {ballpark_museum}`` become derived ``match`` links.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable, Sequence

Item = Hashable


@dataclass(frozen=True)
class Rule:
    """An association rule antecedent ⇒ consequent with its statistics."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float

    def __repr__(self) -> str:
        lhs = ",".join(map(str, sorted(self.antecedent, key=repr)))
        rhs = ",".join(map(str, sorted(self.consequent, key=repr)))
        return (
            f"{{{lhs}}} => {{{rhs}}} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def frequent_itemsets(
    transactions: Sequence[Iterable[Item]],
    min_support: float = 0.1,
    max_size: int = 3,
) -> dict[frozenset, float]:
    """Level-wise Apriori frequent-itemset mining.

    Returns itemset -> support (fraction of transactions containing it).
    ``max_size`` bounds the level loop; social-site rules rarely need more
    than 3-item sets and the bound keeps worst cases polynomial.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    baskets = [frozenset(t) for t in transactions]
    n = len(baskets)
    if n == 0:
        return {}

    # L1
    counts: dict[frozenset, int] = {}
    for basket in baskets:
        for item in basket:
            key = frozenset((item,))
            counts[key] = counts.get(key, 0) + 1
    threshold = min_support * n
    frequent: dict[frozenset, float] = {
        k: c / n for k, c in counts.items() if c >= threshold
    }
    current = [k for k in frequent if len(k) == 1]

    size = 2
    while current and size <= max_size:
        # Candidate generation: join step + anti-monotone prune.
        singles = sorted({item for s in current for item in s}, key=repr)
        prev = set(current)
        candidates = []
        for itemset in current:
            for item in singles:
                if item in itemset:
                    continue
                candidate = itemset | {item}
                if len(candidate) != size:
                    continue
                # every (size-1)-subset must be frequent
                if all(frozenset(sub) in prev
                       for sub in combinations(candidate, size - 1)):
                    candidates.append(candidate)
        candidates = list(dict.fromkeys(candidates))
        if not candidates:
            break
        level_counts = {c: 0 for c in candidates}
        for basket in baskets:
            for candidate in candidates:
                if candidate <= basket:
                    level_counts[candidate] += 1
        current = []
        for candidate, count in level_counts.items():
            if count >= threshold:
                frequent[candidate] = count / n
                current.append(candidate)
        size += 1
    return frequent


def mine_rules(
    transactions: Sequence[Iterable[Item]],
    min_support: float = 0.1,
    min_confidence: float = 0.5,
    max_size: int = 3,
) -> list[Rule]:
    """Apriori rule generation: frequent itemsets → confident rules.

    Rules are sorted by (confidence, support) descending for deterministic
    downstream consumption.
    """
    frequent = frequent_itemsets(transactions, min_support, max_size)
    rules: list[Rule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for antecedent in combinations(sorted(itemset, key=repr), r):
                lhs = frozenset(antecedent)
                rhs = itemset - lhs
                lhs_support = frequent.get(lhs)
                rhs_support = frequent.get(rhs)
                if lhs_support is None or rhs_support is None:
                    continue
                confidence = support / lhs_support
                if confidence < min_confidence:
                    continue
                lift = confidence / rhs_support if rhs_support else 0.0
                rules.append(Rule(lhs, rhs, support, confidence, lift))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support,
                                 repr(sorted(rule.antecedent, key=repr))))
    return rules


def transactions_from_graph(graph, act_type: str = "act") -> list[frozenset]:
    """Build per-user transactions (item sets) from activity links."""
    per_user: dict = {}
    for link in graph.links():
        if link.has_type(act_type):
            per_user.setdefault(link.src, set()).add(link.tgt)
    return [frozenset(items) for _, items in
            sorted(per_user.items(), key=lambda kv: repr(kv[0]))]

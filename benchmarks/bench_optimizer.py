"""Experiment OPT — logical-optimizer ablation (naive vs rewritten plans).

The paper's core systems claim for the algebra is optimizability.  This
bench builds redundant-but-natural plans (stacked selections over a
semi-join, duplicated subtrees, link-minus), optimizes them, verifies
semantic equivalence, and times naive vs optimized evaluation.
"""

from __future__ import annotations

import pytest

from repro.core import input_graph, optimize
from repro.workloads import JOHN


@pytest.fixture(scope="module")
def graph(travel_site):
    return travel_site.graph


def _redundant_plan():
    """Stacked selections + duplicated subtree + self-union."""
    G = input_graph("G")
    john = G.select_nodes({"id": JOHN})
    friends = (
        G.semi_join(john, ("src", "src"))
        .select_links({"type": "friend"})
        .select_links({"type": "connect"})
    )
    visits = (
        G.semi_join(john, ("src", "src"))
        .select_links({"type": "visit"})
        .select_links({"type": "act"})
    )
    return friends.union(visits).union(friends.union(visits))


def test_optimizer_rewrites_and_preserves_semantics(graph, report, benchmark):
    plan = _redundant_plan()
    optimized, opt_report = benchmark.pedantic(
        optimize, args=(plan,), rounds=1, iterations=1
    )
    naive_result = plan.evaluate({"G": graph})
    optimized_result = optimized.evaluate({"G": graph})
    assert naive_result.same_as(optimized_result)
    assert opt_report.applied  # something actually fired
    report(
        "",
        "=== optimizer ablation ===",
        f"  rewrites: {opt_report}",
        f"  result: {naive_result.num_nodes} nodes / "
        f"{naive_result.num_links} links (identical for both plans)",
    )


def test_naive_plan_evaluation(graph, benchmark):
    plan = _redundant_plan()
    benchmark(plan.evaluate, {"G": graph})


def test_optimized_plan_evaluation(graph, benchmark):
    plan, _ = optimize(_redundant_plan())
    benchmark(plan.evaluate, {"G": graph})


def test_optimization_overhead(benchmark):
    benchmark(lambda: optimize(_redundant_plan()))

"""The paper's worked algebra expressions as reusable recipes.

* :func:`example4_search` — "Find John's friends who have visited travel
  destinations near Denver and all their activities" (paper Example 4);
* :func:`example5_collaborative_filtering` — the nine-step collaborative
  filtering pipeline of Example 5;
* :func:`figure2_collaborative_filtering` — the concise graph-pattern
  formulation sketched around Figure 2.

These recipes follow the paper step by step (the G1..G7 intermediate names
match the text) so they double as executable documentation; integration
tests check them against independently computed results, and the Figure 2
bench compares the two CF formulations.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.aggfuncs import AttrMap, ConstAgg, First, SetAgg, average
from repro.core.aggregation import aggregate_links, aggregate_nodes
from repro.core.composition import CarryScore, JaccardOnNodeSets, compose
from repro.core.conditions import Condition, as_condition
from repro.core.graph import Id, SocialContentGraph
from repro.core.patterns import PathLinkAvg, PathPattern, Step, aggregate_pattern
from repro.core.selection import select_links, select_nodes
from repro.core.semijoin import semi_join
from repro.core.setops import union


def example4_search(
    graph: SocialContentGraph,
    user_id: Id,
    place_condition: Condition | Mapping[str, Any] | None = None,
    friend_type: str = "friend",
    visit_type: str = "visit",
    act_type: str = "act",
) -> SocialContentGraph:
    """Paper Example 4, parameterised.

    Default *place_condition* reproduces the paper's C3 = {type=
    'destination', 'near Denver'}; pass your own condition to re-target.
    Returns G7: the querying user, the friends who visited matching places,
    those places, and all the friends' activities.
    """
    if place_condition is None:
        place_condition = Condition({"type": "destination"}, keywords="near Denver")
    c3 = as_condition(place_condition)

    # G1: John's network — friend links out of the user.
    g1 = select_links(
        semi_join(graph, select_nodes(graph, {"id": user_id}), ("src", "src")),
        {"type": friend_type},
    )
    # G2: users who visited matching places (visit links into those places).
    g2 = select_links(
        semi_join(graph, select_nodes(graph, c3), ("tgt", "src")),
        {"type": visit_type},
    )
    # G3: John's friend links toward friends who visited such places.
    g3 = semi_join(g1, g2, ("tgt", "src"))
    # G4: visit links by John's friends.
    g4 = semi_join(g2, g1, ("src", "tgt"))
    # G5: friends-with-visits and visited places together.
    g5 = union(g3, g4)
    # G6: all activities of those friends.
    g6 = select_links(
        semi_join(graph, g3, ("src", "tgt")),
        {"type": act_type},
    )
    # G7: everything assembled.
    return union(g5, g6)


def example5_collaborative_filtering(
    graph: SocialContentGraph,
    user_id: Id,
    visit_type: str = "visit",
    dest_type: str = "destination",
    sim_threshold: float = 0.5,
    score_att: str = "score",
) -> SocialContentGraph:
    """Paper Example 5: algebraic collaborative filtering, steps 1-9.

    Returns G7: one link per recommended destination, ``user -> destination``
    carrying *score_att* = average similarity of the similar users who
    visited it.  Use :func:`recommendations_from` to extract a ranked list.

    Faithfulness note: after step 6 the paper treats G4 as containing only
    the newly created ``match`` links; Definition 10 retains non-satisfying
    links, so we add the explicit σL(type='match') selection the prose
    implies.  Everything else is verbatim.
    """
    # Step 1 — G1: the user and the places they visited.
    g1 = select_links(
        semi_join(graph, select_nodes(graph, {"id": user_id}), ("src", "src")),
        {"type": visit_type},
    )
    # Step 2 — G1': store the visited-destination set as attribute vst.
    g1p = aggregate_nodes(g1, {"type": visit_type}, "src", "vst", SetAgg("tgt"))
    # Step 3 — G2: everyone else and the places they visited.
    g2 = select_links(
        semi_join(graph, select_nodes(graph, {"id__ne": user_id}), ("src", "src")),
        {"type": visit_type},
    )
    # Step 4 — G2': same vst aggregation for the other users.
    g2p = aggregate_nodes(g2, {"type": visit_type}, "src", "vst", SetAgg("tgt"))
    # Step 5 — G3: compose visits tail-to-tail; F computes Jaccard(vst_u, vst_v).
    g3 = compose(
        g1p,
        g2p,
        ("tgt", "tgt"),
        JaccardOnNodeSets(att="vst", out_att="sim"),
        link_type="composed",
    )
    # Step 6 — G4: bundle per-user links with sim > θ into one 'match' link.
    g4 = aggregate_links(
        g3,
        {"sim__gt": sim_threshold},
        "type",
        AttrMap(type=ConstAgg("match"), sim=First("sim")),
    )
    g4 = select_links(g4, {"type": "match"})
    # Step 7 — G5: users and the destinations they visited.
    g5 = select_links(
        semi_join(graph, select_nodes(graph, {"type": dest_type}), ("tgt", "src")),
        {"type": visit_type},
    )
    # Step 8 — G6: for each similar user's visit, a user->destination link
    # carrying sim_sc (the similarity of the recommending user).
    g6 = compose(
        semi_join(g4, g5, ("tgt", "src")),
        semi_join(g5, g4, ("src", "tgt")),
        ("tgt", "src"),
        CarryScore(src_att="sim", out_att="sim_sc"),
        link_type="composed",
    )
    # Step 9 — G7: average sim_sc per destination into the final score.
    return aggregate_links(
        g6, {"type": "composed"}, score_att, average("sim_sc"), link_type="recommend"
    )


def figure2_collaborative_filtering(
    graph: SocialContentGraph,
    user_id: Id,
    visit_type: str = "visit",
    dest_type: str = "destination",
    sim_threshold: float = 0.5,
    score_att: str = "score",
) -> SocialContentGraph:
    """The Figure 2 formulation: one pattern aggregation instead of steps 7-9.

    Computes G4 ∪ G5 exactly as in Example 5, then applies
    γL⟨GP,score,A⟩ where GP is the match-visit path pattern of Figure 2 and
    A averages the similarity on the match link over all match-visit paths
    per (user, destination) pair.
    """
    # Reuse Example 5 steps 1-6 to obtain the match network G4.
    g1 = select_links(
        semi_join(graph, select_nodes(graph, {"id": user_id}), ("src", "src")),
        {"type": visit_type},
    )
    g1p = aggregate_nodes(g1, {"type": visit_type}, "src", "vst", SetAgg("tgt"))
    g2 = select_links(
        semi_join(graph, select_nodes(graph, {"id__ne": user_id}), ("src", "src")),
        {"type": visit_type},
    )
    g2p = aggregate_nodes(g2, {"type": visit_type}, "src", "vst", SetAgg("tgt"))
    g3 = compose(
        g1p, g2p, ("tgt", "tgt"), JaccardOnNodeSets(att="vst", out_att="sim"),
        link_type="composed",
    )
    g4 = aggregate_links(
        g3,
        {"sim__gt": sim_threshold},
        "type",
        AttrMap(type=ConstAgg("match"), sim=First("sim")),
    )
    g4 = select_links(g4, {"type": "match"})
    # Step 7 — G5 as before.
    g5 = select_links(
        semi_join(graph, select_nodes(graph, {"type": dest_type}), ("tgt", "src")),
        {"type": visit_type},
    )
    # The pattern replaces steps 8-9: γL over match-visit paths on G4 ∪ G5.
    pattern = PathPattern(
        start={"id": user_id},
        steps=[
            Step(link={"type": "match"}),
            Step(link={"type": visit_type}, node={"type": dest_type}),
        ],
    )
    return aggregate_pattern(
        union(g4, g5),
        pattern,
        score_att,
        PathLinkAvg(link_index=0, att="sim"),
        link_type="recommend",
    )


def recommendations_from(
    result: SocialContentGraph,
    user_id: Id,
    score_att: str = "score",
    exclude: set[Id] | None = None,
) -> list[tuple[Id, float]]:
    """Extract a ranked recommendation list from a CF result graph.

    Returns (destination id, score) pairs for links leaving *user_id*,
    sorted by descending score then id; *exclude* drops already-visited
    destinations if the caller wants that policy (the paper leaves it open).
    """
    scored: list[tuple[Id, float]] = []
    excluded = exclude or set()
    for link in result.out_links(user_id):
        if link.tgt in excluded:
            continue
        value = link.value(score_att)
        if value is None:
            continue
        scored.append((link.tgt, float(value)))
    scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return scored

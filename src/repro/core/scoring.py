"""Scoring functions S for scored selections (paper Defs 1-2).

    "When an optional scoring function S is specified as an input parameter,
    a score is generated using S for each node based on how well its content
    matches the keywords in C.  If no scoring function is specified, but C
    includes keywords, a default scoring function is used."

A scoring function is any callable ``(element, keywords) -> float`` where
*element* is a :class:`~repro.core.graph.Node` or ``Link`` and *keywords* is
the tokenised keyword tuple from the condition.  This module provides:

* :class:`DefaultKeywordScorer` — coverage x log-tf, corpus-free; this is
  the library's default S;
* :class:`TfIdfScorer` — classic tf-idf [Baeza-Yates & Ribeiro-Neto 1999,
  the paper's reference 6] built over a graph's nodes;
* :class:`ConstantScorer` and :class:`AttributeScorer` — degenerate scorers
  useful in tests and recipes.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Iterable, Protocol, Sequence, Union

from repro.core.graph import Link, Node, SocialContentGraph
from repro.core.text import term_frequencies, term_variants, tokenize

Element = Union[Node, Link]


class ScoringFunction(Protocol):
    """Protocol for the algebra's S parameter."""

    def __call__(self, element: Element, keywords: Sequence[str]) -> float:
        """Return a non-negative relevance score."""
        ...


class DefaultKeywordScorer:
    """Corpus-free keyword relevance: coverage weighted by term frequency.

    ``score = (matched / |keywords|) * (1 + log(1 + total_tf)) / (1 + log 2)``

    * *coverage* rewards matching more of the query's terms;
    * the log-tf factor mildly rewards repeated mentions without letting a
      tag spammed 100 times dominate.

    With no keywords the score is 1.0 for every element (pure structural
    selections still produce well-defined scores).
    """

    def __call__(self, element: Element, keywords: Sequence[str]) -> float:
        if not keywords:
            return 1.0
        tf = term_frequencies(element.text())
        matched: dict[str, int] = {}
        for keyword in keywords:
            count = sum(tf.get(v, 0) for v in term_variants(keyword))
            if count:
                matched[keyword] = matched.get(keyword, 0) + count
        if not matched:
            return 0.0
        coverage = len(matched) / len(set(keywords))
        total_tf = sum(matched.values())
        return coverage * (1.0 + math.log1p(total_tf)) / (1.0 + math.log(2.0))


class TfIdfScorer:
    """tf-idf relevance over a fixed corpus of graph elements.

    The corpus is the node set (or any element collection) handed to the
    constructor; document frequency counts how many elements mention each
    term.  Scores are the sum over query terms of ``tf * idf`` normalised
    by the element's Euclidean length, i.e. standard cosine-style lnc.ltc
    lite.  Deterministic given the corpus.
    """

    def __init__(self, corpus: Iterable[Element] | SocialContentGraph):
        if isinstance(corpus, SocialContentGraph):
            elements: list[Element] = list(corpus.nodes())
        else:
            elements = list(corpus)
        self.num_docs = max(len(elements), 1)
        df: Counter = Counter()
        for element in elements:
            df.update(set(tokenize(element.text())))
        self._df = df

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of *term*."""
        return math.log((1 + self.num_docs) / (1 + self._df.get(term, 0))) + 1.0

    def __call__(self, element: Element, keywords: Sequence[str]) -> float:
        if not keywords:
            return 1.0
        tf = term_frequencies(element.text())
        if not tf:
            return 0.0
        norm = math.sqrt(sum((1 + math.log(c)) ** 2 for c in tf.values()))
        score = 0.0
        for term in keywords:
            # Match up to singular/plural variants; use the variant actually
            # present in the element for both tf and idf.
            best = max(term_variants(term), key=lambda v: tf.get(v, 0))
            count = tf.get(best, 0)
            if count:
                score += (1 + math.log(count)) * self.idf(best)
        return score / norm if norm else 0.0


class ConstantScorer:
    """Always returns the same score (useful as a neutral S)."""

    def __init__(self, value: float = 1.0):
        self.value = float(value)

    def __call__(self, element: Element, keywords: Sequence[str]) -> float:
        return self.value


class AttributeScorer:
    """Scores by reading a numeric attribute off the element.

    E.g. ``AttributeScorer('rating')`` ranks items by their stored rating;
    used by recipes that re-rank previously scored graphs.
    """

    def __init__(self, att: str, default: float = 0.0):
        self.att = att
        self.default = float(default)

    def __call__(self, element: Element, keywords: Sequence[str]) -> float:
        value = element.value(self.att)
        if value is None:
            return self.default
        try:
            return float(value)
        except (TypeError, ValueError):
            return self.default


class CombinedScorer:
    """Weighted combination of scorers: ``sum_i w_i * s_i(element)``.

    The Information Discoverer uses this to blend semantic and social
    relevance into "a single relevance score" (paper §4).
    """

    def __init__(self, parts: Sequence[tuple[float, ScoringFunction]]):
        self.parts = list(parts)

    def __call__(self, element: Element, keywords: Sequence[str]) -> float:
        return sum(w * fn(element, keywords) for w, fn in self.parts)


#: The module-level default S used when a condition has keywords but the
#: operator call supplies no scoring function (paper Defs 1-2).
DEFAULT_SCORER: ScoringFunction = DefaultKeywordScorer()


def resolve_scorer(
    scorer: ScoringFunction | Callable[[Element, Sequence[str]], float] | None,
) -> ScoringFunction:
    """Return *scorer* or the library default when ``None``."""
    return scorer if scorer is not None else DEFAULT_SCORER

"""The process-wide shared plan cache: sharing, safety, admission, threads.

Three safety layers are pinned here: generation stamping (stale plans die
on lookup), weak graph anchoring (two planners can never exchange plans
across different graph objects even when keys and generations collide),
and the frequency doorkeeper (a full cache only evicts for keys that
repeat).  The stress tests drive one cache — and whole sessions sharing
it — from many threads at once.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import factories
from repro.api import SearchRequest, Session
from repro.core import input_graph
from repro.management import DataManager
from repro.plan import (
    QueryPlanner,
    SharedPlanCache,
    shared_plan_cache,
)


class TestAnchoringAndSharing:
    def test_planners_on_the_same_graph_share_compiled_plans(self):
        graph = factories.social_site_graph()
        cache = SharedPlanCache()
        first = QueryPlanner(graph, cache=cache)
        second = QueryPlanner(graph, cache=cache)
        expr = input_graph("G").select_nodes({"type": "item"})
        plan_a, hit_a = first.compile(expr)
        plan_b, hit_b = second.compile(expr)
        assert (hit_a, hit_b) == (False, True)
        assert plan_a is plan_b

    def test_different_graph_objects_never_share(self):
        cache = SharedPlanCache()
        expr = input_graph("G").select_nodes({"type": "item"})
        g1 = factories.social_site_graph()
        g2 = factories.social_site_graph()  # identical content, new object
        _, hit1 = QueryPlanner(g1, cache=cache).compile(expr)
        _, hit2 = QueryPlanner(g2, cache=cache).compile(expr)
        assert (hit1, hit2) == (False, False)

    def test_dead_anchor_is_a_miss(self):
        cache = SharedPlanCache()
        graph = factories.social_site_graph()
        planner = QueryPlanner(graph, cache=cache)
        expr = input_graph("G").select_nodes({"type": "item"})
        planner.compile(expr)
        key = (planner._cache_scope(), "k", "auto")
        cache.put(key, 0, "plan", anchor=graph)  # type: ignore[arg-type]
        assert cache.get(key, 0, anchor=graph) == "plan"
        del graph, planner
        import gc

        gc.collect()
        assert cache.get(key, 0, anchor=None) is None

    def test_generation_mismatch_is_a_miss(self):
        cache = SharedPlanCache()
        graph = factories.social_site_graph()
        cache.put("k", 3, "plan", anchor=graph)  # type: ignore[arg-type]
        assert cache.get("k", 4, anchor=graph) is None
        assert cache.get("k", 3, anchor=graph) is None  # dropped as stale


class TestAdmissionPolicy:
    def test_cold_keys_cannot_evict_a_full_cache(self):
        cache = SharedPlanCache(maxsize=2, admit_after=2)
        cache.put("hot-a", 0, "A")  # type: ignore[arg-type]
        cache.put("hot-b", 0, "B")  # type: ignore[arg-type]
        # one-off key: first sighting, cache full -> rejected
        assert cache.get("cold", 0) is None
        cache.put("cold", 0, "C")  # type: ignore[arg-type]
        assert cache.get("hot-a", 0) == "A"
        assert cache.get("hot-b", 0) == "B"
        assert cache.stats.rejects == 1

    def test_repeating_keys_earn_admission(self):
        cache = SharedPlanCache(maxsize=2, admit_after=2)
        cache.put("hot-a", 0, "A")  # type: ignore[arg-type]
        cache.put("hot-b", 0, "B")  # type: ignore[arg-type]
        for _ in range(2):  # two misses = proven reuse
            assert cache.get("riser", 0) is None
        cache.put("riser", 0, "R")  # type: ignore[arg-type]
        assert cache.get("riser", 0) == "R"
        assert len(cache) == 2  # one resident was evicted for it

    def test_resident_keys_always_refresh(self):
        cache = SharedPlanCache(maxsize=1, admit_after=5)
        cache.put("k", 0, "v1")  # type: ignore[arg-type]
        cache.put("k", 1, "v2")  # type: ignore[arg-type]
        assert cache.get("k", 1) == "v2"

    def test_spare_capacity_admits_immediately(self):
        cache = SharedPlanCache(maxsize=8, admit_after=3)
        cache.put("fresh", 0, "v")  # type: ignore[arg-type]
        assert cache.get("fresh", 0) == "v"
        assert cache.stats.rejects == 0

    def test_rejects_validation(self):
        with pytest.raises(ValueError):
            SharedPlanCache(admit_after=0)


class TestProcessWideDefault:
    def test_planners_default_to_the_shared_singleton(self):
        planner = QueryPlanner(factories.social_site_graph())
        assert planner.cache is shared_plan_cache()

    def test_sessions_share_hot_plans_across_each_other(self):
        dm = DataManager()
        dm.load_graph(factories.social_site_graph())
        first = Session(dm)
        second = Session(dm)
        request = SearchRequest(user_id="u0")  # scorer-free: shareable shape
        first.run(request)
        assert first.stats.plan_compiles == 1
        second.run(request)
        assert second.stats.plan_compiles == 0
        assert second.stats.plan_cache_hits == 1

    def test_sessions_with_diverged_refresh_histories_still_share(self):
        # Entries are stamped with the *graph's* mutation epoch, not the
        # planner-local generation counter — so a veteran session (many
        # refreshes behind it) and a freshly created one agree on entry
        # validity instead of perpetually evicting each other's plans.
        from repro.core import Node

        dm = DataManager()
        dm.load_graph(factories.social_site_graph())
        veteran = Session(dm)
        request = SearchRequest(user_id="u0")
        veteran.run(request)
        dm.add_node(Node("i-x", type="item", name="newcomer"))
        veteran.run(request)  # resync: new snapshot, recompile
        assert veteran.stats.plan_compiles == 2
        newcomer = Session(dm)
        newcomer.run(request)
        assert newcomer.stats.plan_compiles == 0
        assert newcomer.stats.plan_cache_hits == 1
        # and the veteran keeps hitting too: no eviction ping-pong
        veteran.run(request)
        assert veteran.stats.plan_compiles == 2


@pytest.mark.usefixtures("deadlock_watchdog")
class TestConcurrency:
    def test_raw_cache_survives_a_thread_storm(self):
        cache = SharedPlanCache(maxsize=32, admit_after=2)
        graph = factories.social_site_graph()
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(300):
                    key = ("k", (seed * 7 + i) % 48)
                    generation = i % 3
                    got = cache.get(key, generation, anchor=graph)
                    if got is None:
                        cache.put(key, generation, f"plan-{key}",
                                  anchor=graph)  # type: ignore[arg-type]
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats
        assert stats.hits + stats.misses == 8 * 300

    def test_concurrent_sessions_agree_through_the_shared_cache(self):
        graph = factories.social_site_graph(num_users=6, num_items=8)
        dm = DataManager()
        dm.load_graph(graph)
        sessions = [Session(dm) for _ in range(4)]
        requests = [
            SearchRequest(user_id=f"u{i % 6}", text=("topic0" if i % 2 else ""))
            for i in range(12)
        ]
        reference = [Session(dm).run(r).items for r in requests]

        def serve(session: Session) -> list:
            return [session.run(r).items for r in requests]

        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(serve, sessions))
        for outcome in outcomes:
            assert outcome == reference

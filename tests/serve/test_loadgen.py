"""The closed-loop load harness: seeded determinism and honest reports."""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from repro.serve.gateway import GatewayConfig
from repro.serve.loadgen import (
    DEFAULT_LOAD_ADMISSION,
    HarnessConfig,
    LoadMix,
    LoadMixConfig,
    main,
    run_closed_loop,
    run_sequential_baseline,
)
from repro.serve.metrics import latency_summary, percentile
from repro.workloads import WorkloadConfig, build_site


@pytest.fixture(scope="module")
def site():
    return build_site(WorkloadConfig(num_users=40, num_items=80, seed=11))


@pytest.fixture()
def mix(site):
    return LoadMix.for_site(
        site.user_ids, site.categories,
        LoadMixConfig(num_tenants=8, num_query_shapes=10, seed=11),
    )


class TestLoadMix:
    def test_same_seed_same_stream(self, site):
        config = LoadMixConfig(num_tenants=6, num_query_shapes=8, seed=5)
        a = LoadMix.for_site(site.user_ids, site.categories, config)
        b = LoadMix.for_site(site.user_ids, site.categories, config)
        assert a.stream(50) == b.stream(50)

    def test_different_seed_different_stream(self, site):
        a = LoadMix.for_site(
            site.user_ids, site.categories, LoadMixConfig(seed=1)
        )
        b = LoadMix.for_site(
            site.user_ids, site.categories, LoadMixConfig(seed=2)
        )
        assert a.stream(50) != b.stream(50)

    def test_tenants_bind_distinct_site_users(self, site, mix):
        users = [user for _, user in mix.tenants]
        assert len(set(users)) == len(users)
        assert set(users) <= set(site.user_ids)

    def test_traffic_is_skewed_toward_rank_one(self, mix):
        stream = mix.stream(400)
        by_tenant: dict[str, int] = {}
        for tenant, _ in stream:
            by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
        heaviest = max(by_tenant.values())
        # Zipf(1.2) over 8 tenants: rank 1 carries ~3x the uniform share
        assert heaviest > 400 / len(mix.tenants) * 2

    def test_requests_are_valid_and_capped(self, mix):
        for tenant, request in mix.stream(60):
            assert tenant.startswith("t")
            assert request.k == mix.config.k

    def test_recommendation_share_present(self, site):
        mix = LoadMix.for_site(
            site.user_ids, site.categories,
            LoadMixConfig(recommendation_share=0.5, seed=3),
        )
        stream = mix.stream(200)
        empties = sum(1 for _, r in stream if not r.text)
        assert 40 <= empties <= 160  # loose: it is a coin with p=0.5

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            LoadMix([], ["q"])
        with pytest.raises(ValueError):
            LoadMix([("t0", "u0")], [])


class TestClosedLoop:
    def test_report_is_complete_and_consistent(self, site, mix):
        session = Session.from_graph(site.graph)
        report = run_closed_loop(session, mix, HarnessConfig(
            concurrency=8, total_requests=32,
        ))
        assert report.requests == 32
        assert report.completed + report.failed + report.shed == 32
        assert report.completed > 0
        assert report.duration_s > 0
        assert report.throughput_rps > 0
        assert set(report.latency_ms) == {"p50", "p95", "p99", "mean", "max"}
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        assert sum(
            size * count
            for size, count in report.batch_size_histogram.items()
        ) == report.completed + report.failed
        assert report.batches == sum(report.batch_size_histogram.values())
        assert report.peak_rss_mb > 0
        assert report.plan_cache["compiles"] >= 1

    def test_report_round_trips_as_json(self, site, mix):
        session = Session.from_graph(site.graph)
        report = run_closed_loop(session, mix, HarnessConfig(
            concurrency=4, total_requests=12,
        ))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["requests"] == 12
        assert "p95" in payload["latency_ms"]
        assert isinstance(payload["hot_keys"], list)
        text = report.render()
        assert "serve load report" in text and "p95" in text

    def test_default_admission_is_generous(self):
        assert DEFAULT_LOAD_ADMISSION.default.refill_per_s >= 256
        assert GatewayConfig().admission.max_depth > 0

    def test_sequential_baseline_measures(self, site, mix):
        session = Session.from_graph(site.graph)
        stream = mix.stream(6)
        result = run_sequential_baseline(session.data_manager, stream)
        assert result["requests"] == 6.0
        assert result["throughput_rps"] > 0


class TestMetrics:
    def test_percentile_interpolates(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 100.0) == 40.0
        assert percentile(samples, 50.0) == pytest.approx(25.0)
        assert percentile([], 95.0) == 0.0

    def test_latency_summary_shape(self):
        summary = latency_summary([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["max"] == 3.0
        assert summary["p50"] == 2.0

    def test_empty_summary_is_zeroed(self):
        summary = latency_summary([])
        assert set(summary.values()) == {0.0}


class TestCli:
    def test_quick_smoke_exits_zero(self, capsys):
        code = main(["--quick", "--requests", "16", "--concurrency", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serve load report" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "--quick", "--requests", "12", "--concurrency", "4", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["requests"] == 12
        assert payload["completed"] > 0

"""Unit tests for the social content graph model (paper §4)."""

from __future__ import annotations

import pytest

from repro.core import Link, Node, SocialContentGraph, graph_from_edges
from repro.errors import (
    DanglingLinkError,
    GraphError,
    UnknownLinkError,
    UnknownNodeError,
)


class TestNode:
    def test_requires_type(self):
        with pytest.raises(GraphError):
            Node(1, name="John")

    def test_multi_valued_type_from_comma_string(self):
        node = Node(1, type="user, traveler", name="John")
        assert node.types == ("user", "traveler")
        assert node.has_type("user")
        assert node.has_type("traveler")
        assert not node.has_type("item")

    def test_paper_example_n2(self):
        # n2 = {id=2; type='item, city'; name='Denver'; keywords='skiing'}
        n2 = Node(2, type="item, city", name="Denver", keywords="skiing")
        assert n2.value("name") == "Denver"
        assert n2.values("keywords") == ("skiing",)

    def test_immutable(self):
        node = Node(1, type="user")
        with pytest.raises(AttributeError):
            node.attrs = {}

    def test_with_attrs_creates_new_record(self):
        node = Node(1, type="user", name="John")
        updated = node.with_attrs(name="Johnny", age=30)
        assert node.value("name") == "John"
        assert updated.value("name") == "Johnny"
        assert updated.value("age") == 30
        assert updated.id == node.id

    def test_with_attrs_none_deletes(self):
        node = Node(1, type="user", name="John")
        assert node.with_attrs(name=None).value("name") is None

    def test_cannot_drop_type(self):
        node = Node(1, type="user")
        with pytest.raises(GraphError):
            node.with_attrs(type=None)

    def test_with_score(self):
        node = Node(1, type="user")
        assert node.score is None
        assert node.with_score(0.5).score == 0.5

    def test_merge_unions_values(self):
        a = Node(1, type="user", tags=("x", "y"))
        b = Node(1, type="traveler", tags=("y", "z"), name="J")
        merged = a.merged_with(b)
        assert set(merged.types) == {"user", "traveler"}
        assert set(merged.values("tags")) == {"x", "y", "z"}
        assert merged.value("name") == "J"

    def test_merge_rejects_different_id(self):
        with pytest.raises(GraphError):
            Node(1, type="user").merged_with(Node(2, type="user"))

    def test_text_includes_only_string_values(self):
        node = Node(1, type="user", name="John", age=30)
        text = node.text()
        assert "John" in text and "30" not in text

    def test_equality_covers_attrs(self):
        assert Node(1, type="user") == Node(1, type="user")
        assert Node(1, type="user") != Node(1, type="user", x=1)


class TestLink:
    def test_paper_example_l12(self):
        l12 = Link(12, 1, 2, type="act, tag", date="2008-8-2",
                   tags="rockies baseball")
        assert l12.has_type("act") and l12.has_type("tag")
        assert l12.src == 1 and l12.tgt == 2

    def test_endpoint_access(self):
        link = Link("l", "a", "b", type="friend")
        assert link.endpoint("src") == "a"
        assert link.endpoint("tgt") == "b"
        assert link.other_endpoint("src") == "b"
        assert link.other_endpoint("tgt") == "a"

    def test_endpoint_bad_direction(self):
        with pytest.raises(GraphError):
            Link("l", "a", "b", type="x").endpoint("middle")

    def test_requires_type(self):
        with pytest.raises(GraphError):
            Link("l", "a", "b")

    def test_merge_conflicting_endpoints_rejected(self):
        a = Link("l", 1, 2, type="x")
        b = Link("l", 1, 3, type="x")
        with pytest.raises(GraphError):
            a.merged_with(b)


class TestSocialContentGraph:
    def test_add_and_lookup(self):
        g = SocialContentGraph()
        g.add_node(Node(1, type="user"))
        g.add_node(id=2, type="item")
        g.add_link(Link("l1", 1, 2, type="visit"))
        assert g.num_nodes == 2 and g.num_links == 1
        assert g.node(1).has_type("user")
        assert g.link("l1").tgt == 2

    def test_add_link_keyword_form(self):
        g = SocialContentGraph()
        g.add_node(id=1, type="user")
        g.add_node(id=2, type="item")
        g.add_link(id="l", src=1, tgt=2, type="tag", tags="baseball")
        assert g.link("l").values("tags") == ("baseball",)

    def test_dangling_link_rejected(self):
        g = SocialContentGraph()
        g.add_node(Node(1, type="user"))
        with pytest.raises(DanglingLinkError):
            g.add_link(Link("l1", 1, 99, type="visit"))

    def test_unknown_lookups_raise(self):
        g = SocialContentGraph()
        with pytest.raises(UnknownNodeError):
            g.node(1)
        with pytest.raises(UnknownLinkError):
            g.link("l")

    def test_duplicate_add_consolidates(self):
        g = SocialContentGraph()
        g.add_node(Node(1, type="user", tags="a"))
        g.add_node(Node(1, type="traveler", tags="b"))
        assert set(g.node(1).types) == {"user", "traveler"}
        assert set(g.node(1).values("tags")) == {"a", "b"}

    def test_adjacency(self, tiny_travel_graph):
        g = tiny_travel_graph
        assert g.out_degree(101) == 4  # 2 visits + 2 friend links
        assert {l.tgt for l in g.out_links(101)} == {"d1", "d3", 102, 103}
        assert 101 in g.predecessors("d1")
        assert g.successors(104) == {"d3", "d1"}
        assert g.neighbors(102) == {101, 104, "d1", "d3", "d2"}

    def test_remove_node_cascades(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        before = g.num_links
        g.remove_node(102)  # Ann: 3 visits + f1 in + f3 out
        assert g.num_links == before - 5
        assert not g.has_node(102)

    def test_remove_link(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        g.remove_link("f1")
        assert not g.has_link("f1")
        assert 102 not in g.successors(101) or "f1" not in {
            l.id for l in g.out_links(101)
        }

    def test_copy_is_independent(self, tiny_travel_graph):
        g = tiny_travel_graph
        clone = g.copy()
        clone.remove_node(101)
        assert g.has_node(101)
        assert not clone.has_node(101)

    def test_replace_node_keeps_adjacency(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        g.replace_node(g.node(101).with_attrs(vip=True))
        assert g.node(101).value("vip") is True
        assert g.out_degree(101) == 4

    def test_replace_link_cannot_move_endpoints(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        with pytest.raises(GraphError):
            g.replace_link(Link("f1", 101, 104, type="friend"))

    def test_null_graph(self, tiny_travel_graph):
        g = tiny_travel_graph
        null = g.null_graph([g.node(101)])
        assert null.is_null_graph() and null.num_nodes == 1

    def test_subgraph_from_links_induces_endpoints(self, tiny_travel_graph):
        g = tiny_travel_graph
        sub = g.subgraph_from_links([g.link("f1")])
        assert sub.node_ids() == {101, 102}
        assert sub.num_links == 1

    def test_induced_subgraph(self, tiny_travel_graph):
        g = tiny_travel_graph
        sub = g.induced_subgraph([101, 102, "d1"])
        assert sub.node_ids() == {101, 102, "d1"}
        # v0 (101->d1), v2 (102->d1), f1 (101->102) survive.
        assert sub.num_links == 3

    def test_overlay_views(self, tiny_travel_graph):
        g = tiny_travel_graph
        activity = g.activity_graph()
        network = g.network_graph()
        assert activity.num_links == 10
        assert network.num_links == 3
        assert all(l.has_type("visit") for l in activity.links())
        assert all(l.has_type("friend") for l in network.links())

    def test_same_as(self, tiny_travel_graph):
        g = tiny_travel_graph
        assert g.same_as(g.copy())
        other = g.copy()
        other.replace_node(other.node(101).with_attrs(x=1))
        assert not g.same_as(other)

    def test_contains(self, tiny_travel_graph):
        g = tiny_travel_graph
        assert g.node(101) in g
        assert g.link("f1") in g
        assert Node(999, type="user") not in g

    def test_unhashable(self, tiny_travel_graph):
        with pytest.raises(TypeError):
            hash(tiny_travel_graph)

    def test_graph_from_edges(self):
        g = graph_from_edges([("a", "b"), ("b", "c")])
        assert g.node_ids() == {"a", "b", "c"}
        assert g.has_link("a->b") and g.has_link("b->c")

    def test_typed_iterators(self, tiny_travel_graph):
        g = tiny_travel_graph
        assert len(list(g.nodes_of_type("user"))) == 4
        assert len(list(g.nodes_of_type("destination"))) == 4
        assert len(list(g.links_of_type("friend"))) == 3

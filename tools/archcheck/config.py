"""archcheck configuration: the layer DAG and per-rule settings.

The defaults below ARE the project's architecture contract (documented
prose-side in ``docs/ARCHITECTURE.md``).  A ``[tool.archcheck]`` table in
``pyproject.toml`` may override any field — the CI run and the default
CLI invocation load it when the interpreter has :mod:`tomllib`
(Python ≥ 3.11); on 3.10 the identical built-in defaults apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

#: The allowed import DAG, package → packages it may import.  Importing
#: inside your own package is always allowed.  The split mirrors the
#: paper's three serving layers (content management → discovery →
#: presentation, §3) threaded onto the engine stack
#: (core ← indexing ← plan ← api).  ``management`` sits *above* ``plan``
#: because the Data Manager owns plan-cache administration; the plan
#: layer must never import back up (that cycle is what moved ``shard_of``
#: into ``repro.core.partition``).
DEFAULT_LAYERS: dict[str, tuple[str, ...]] = {
    "errors": (),
    "core": ("errors",),
    "workloads": ("core", "errors"),
    "analysis": ("core", "errors"),
    "indexing": ("core", "analysis", "errors"),
    "plan": ("core", "indexing", "errors"),
    "management": ("core", "plan", "errors"),
    "discovery": ("core", "plan", "workloads", "errors"),
    "presentation": ("core", "analysis", "discovery", "errors"),
    "api": (
        "core", "analysis", "indexing", "plan", "management",
        "discovery", "presentation", "errors",
    ),
    "serve": ("api", "core", "management", "workloads", "errors"),
    # test-only: fault handlers and chaos schedules.  It may reach down
    # to core (the fault-point registry lives there) but NOTHING in
    # production may import it — rule T001 below enforces the reverse
    # direction explicitly, over and above the DAG's silence.
    "testing": ("core", "errors"),
    "socialscope": (
        "api", "core", "discovery", "management", "presentation", "errors",
    ),
    # the top package's own modules (repro/__init__.py re-exports)
    "repro": ("core", "workloads", "errors"),
}

#: Module prefixes (post layer-root stripping: ``plan``, not
#: ``repro.plan``) where the determinism rules run in full: wall-clock
#: reads, any RNG, and identity-derived cache keys are all findings.
#: Monotonic profiling clocks (``time.perf_counter``) stay legal — they
#: never reach a result or a key.
DEFAULT_DETERMINISM_STRICT: tuple[str, ...] = ("plan", "core")

#: Modules allowed to hold *seeded* RNGs, with the justification the
#: baseline would otherwise carry.  Unseeded RNG stays banned everywhere.
DEFAULT_RNG_ALLOWLIST: dict[str, str] = {
    "workloads": "synthetic-site generators draw from random.Random(seed) "
                 "taken from the workload config; runs are replayable",
    "analysis.lda": "collapsed Gibbs sampling uses one "
                    "np.random.default_rng(seed) per fit; fits are "
                    "reproducible for a given seed",
    "benchmarks": "bench workloads reuse the seeded generators so "
                  "BENCH_plan.json is reproducible run-to-run",
    "serve.loadgen": "the load harness samples tenants/queries from one "
                     "random.Random(seed) per mix; a run's request stream "
                     "is exactly replayable (timing of course is not)",
}

#: Function-name patterns marking "this produces a cache/plan key":
#: ``id()`` inside one of these is nondeterministic across processes and
#: therefore a finding (D003) unless baselined with a justification.
DEFAULT_KEY_FUNCTION_PATTERNS: tuple[str, ...] = (
    r"(^|_)key$",
    r"_keys?$",
    r"_scope$",
    r"_ids$",
    r"^__hash__$",
)

#: Modules whose execute paths must treat input graphs as read-only.
DEFAULT_PURITY_MODULES: tuple[str, ...] = ("plan.columnar", "plan.physical")

#: Graph-mutating method names the purity rule watches for.
DEFAULT_PURITY_MUTATORS: tuple[str, ...] = (
    "add_node", "add_link", "remove_node", "remove_link", "remove_nodes",
    "remove_links",
)

#: Stdlib/third-party import prefix → the one module prefix (post
#: layer-root stripping) allowed to import it.  ``multiprocessing`` is
#: confined to the process-backend module so worker lifecycle, pipe
#: protocol and shared-memory ownership stay in one reviewable place —
#: a second spawner would have its own fork/cleanup bugs.
DEFAULT_RESTRICTED_IMPORTS: dict[str, str] = {
    "multiprocessing": "plan.parallel",
}

#: Packages only tests/benches may import (rule T001): production code
#: importing one of these could arm fault handlers in a serving process.
#: The fault-point *hooks* (``repro.core.faults``) are production-legal —
#: they compile to a ``None``-check when nothing is armed — but the
#: *handlers* (``repro.testing``) must stay out of production closures.
DEFAULT_TEST_ONLY_PACKAGES: tuple[str, ...] = ("testing",)


@dataclass
class Config:
    """Everything the rule families read; see module docstring."""

    layer_root: str = "repro"
    layers: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    determinism_strict: tuple[str, ...] = DEFAULT_DETERMINISM_STRICT
    rng_allowlist: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_RNG_ALLOWLIST)
    )
    key_function_patterns: tuple[str, ...] = DEFAULT_KEY_FUNCTION_PATTERNS
    purity_modules: tuple[str, ...] = DEFAULT_PURITY_MODULES
    purity_mutators: tuple[str, ...] = DEFAULT_PURITY_MUTATORS
    restricted_imports: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_RESTRICTED_IMPORTS)
    )
    test_only_packages: tuple[str, ...] = DEFAULT_TEST_ONLY_PACKAGES

    def module_in(self, name: str, prefixes: tuple[str, ...]) -> bool:
        """True when dotted *name* equals or nests under any prefix."""
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in prefixes
        )

    def rng_justification(self, name: str) -> str | None:
        """The allowlist justification covering *name*, if any."""
        for prefix, reason in self.rng_allowlist.items():
            if name == prefix or name.startswith(prefix + "."):
                return reason
        return None


def load_config(pyproject: Path | None = None) -> Config:
    """The defaults, overlaid with ``[tool.archcheck]`` when readable."""
    config = Config()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: defaults mirror pyproject
        return config
    table = (
        tomllib.loads(pyproject.read_text(encoding="utf-8"))
        .get("tool", {})
        .get("archcheck", {})
    )
    if "layer_root" in table:
        config.layer_root = str(table["layer_root"])
    if "layers" in table:
        config.layers = {
            package: tuple(allowed)
            for package, allowed in table["layers"].items()
        }
    if "determinism_strict" in table:
        config.determinism_strict = tuple(table["determinism_strict"])
    if "rng_allowlist" in table:
        config.rng_allowlist = dict(table["rng_allowlist"])
    if "key_function_patterns" in table:
        config.key_function_patterns = tuple(table["key_function_patterns"])
    if "purity_modules" in table:
        config.purity_modules = tuple(table["purity_modules"])
    if "purity_mutators" in table:
        config.purity_mutators = tuple(table["purity_mutators"])
    if "restricted_imports" in table:
        config.restricted_imports = dict(table["restricted_imports"])
    if "test_only_packages" in table:
        config.test_only_packages = tuple(table["test_only_packages"])
    return config

"""Fixture: a lock-order inversion across two module-level locks.

``forward`` nests a_lock -> b_lock, ``backward`` nests b_lock ->
a_lock; the lock-order graph has the two-node cycle and C002 fires.
"""

import threading

a_lock = threading.Lock()
b_lock = threading.Lock()


def forward():
    with a_lock:
        with b_lock:
            return 1


def backward():
    with b_lock:
        with a_lock:
            return 2

"""Experiment S62a — the §6.2 index-size analysis (the "~1 TB" estimate).

Prints (a) the analytic paper-scale model reproducing the 1 TB number,
(b) measured entry counts of the concrete index structures at 1/500 scale,
and (c) the compression each clustering strategy buys.  Timed rows build
each index.
"""

from __future__ import annotations

import pytest

from repro.indexing import (
    ClusteredIndex,
    ExactUserIndex,
    GlobalPopularityIndex,
    SizingScenario,
    behavior_clustering,
    network_clustering,
    paper_scale_estimate,
)

THETA = 0.3


def test_paper_scale_estimate(report, benchmark):
    estimate = benchmark(paper_scale_estimate)
    scaled = paper_scale_estimate(SizingScenario(
        num_users=200, num_items=500, num_tags=40,
        tags_per_item=4.0, tagger_fraction=0.05,
    ))
    report(
        "",
        "=== §6.2 index sizing ===",
        ("paper scale (100k users, 1M items, 1k tags, 20 tags/item from 5% "
         "of users):"),
        (f"  analytic entries = {estimate.entries:.3e}  ->  "
         f"{estimate.terabytes:.2f} TB at 10 B/entry   (paper: ~1 TB)"),
        (f"bench scale analytic entries = {scaled.entries:.3e} "
         f"({scaled.gigabytes*1000:.1f} MB)"),
    )
    assert estimate.terabytes == pytest.approx(1.0)


def test_measured_sizes(tagging_data, report, benchmark):
    exact = benchmark.pedantic(
        lambda: ExactUserIndex(tagging_data).report(), rounds=1, iterations=1
    )
    global_ = GlobalPopularityIndex(tagging_data).report()
    rows = [
        ("exact per-(tag,user)", exact.entries, exact.lists, 1.0),
        ("global per-tag", global_.entries, global_.lists,
         exact.entries / max(global_.entries, 1)),
    ]
    for name, make, theta in (
        ("network θ=0.2", network_clustering, 0.2),
        ("behavior θ=0.1", behavior_clustering, 0.1),
    ):
        clustering = make(tagging_data, theta)
        rep = ClusteredIndex(tagging_data, clustering).report()
        rows.append((f"clustered {name} ({clustering.num_clusters} clusters)",
                     rep.entries, rep.lists,
                     exact.entries / max(rep.entries, 1)))
    lines = [
        "",
        "measured index sizes (200 users / 500 items / 40 tags):",
        f"  {'structure':<44}{'entries':>9}{'lists':>7}{'x smaller':>10}",
    ]
    for name, entries, lists, ratio in rows:
        lines.append(f"  {name:<44}{entries:>9}{lists:>7}{ratio:>10.2f}")
    report(*lines)

    exact_entries = rows[0][1]
    for name, entries, _, _ in rows[1:]:
        assert entries <= exact_entries  # every alternative is smaller


def test_build_exact_index(tagging_data, benchmark):
    benchmark(ExactUserIndex, tagging_data)


def test_build_network_clustered_index(tagging_data, benchmark):
    clustering = network_clustering(tagging_data, THETA)
    benchmark(ClusteredIndex, tagging_data, clustering)


def test_build_behavior_clustered_index(tagging_data, benchmark):
    clustering = behavior_clustering(tagging_data, THETA)
    benchmark(ClusteredIndex, tagging_data, clustering)

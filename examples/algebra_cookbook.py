#!/usr/bin/env python
"""The paper's algebra, worked: Examples 4-5, Figure 2, and the optimizer.

Every expression follows the paper's own step numbering, so this file
doubles as a readable companion to §5 of the paper.

Run:  python examples/algebra_cookbook.py
"""

from repro.core import (
    GraphStats,
    example4_search,
    example5_collaborative_filtering,
    figure2_collaborative_filtering,
    graph_from_edges,
    input_graph,
    link_minus,
    link_minus_via_semijoin,
    minus,
    optimize,
    recommendations_from,
)
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site

site = build_travel_site(TravelSiteConfig(seed=42))
graph = site.graph

# ---------------------------------------------------------------------------
# Definitions 3-4: the two Minus operators on the paper's own example.
# ---------------------------------------------------------------------------
g1 = graph_from_edges([("a", "b"), ("a", "c"), ("b", "c")])
g2 = graph_from_edges([("a", "b")])
node_driven = minus(g1, g2)
link_driven = link_minus(g1, g2)
print("G1 = {(a,b),(a,c),(b,c)},  G2 = {(a,b)}")
print(f"  G1 \\ G2  -> nodes {sorted(node_driven.node_ids())}, "
      f"{node_driven.num_links} links   (null graph {{c}}, as in the paper)")
print(f"  G1 \\· G2 -> nodes {sorted(link_driven.node_ids())}, "
      f"links {sorted(link_driven.link_ids())}")
print(f"  Lemma 1 rewrite agrees: "
      f"{link_minus_via_semijoin(g1, g2).same_as(link_driven)}")

# ---------------------------------------------------------------------------
# Example 4: "John's friends who visited destinations near Denver,
# and all their activities."
# ---------------------------------------------------------------------------
result = example4_search(graph, JOHN)
friends = {l.tgt for l in result.out_links(JOHN) if l.has_type("friend")}
acts = [l for l in result.links() if l.has_type("act")]
print(f"\nExample 4 for John: {len(friends)} qualifying friends, "
      f"{len(acts)} of their activities, {result.num_nodes} nodes total")

# ---------------------------------------------------------------------------
# Example 5 vs Figure 2: nine algebra steps vs one pattern aggregation.
# ---------------------------------------------------------------------------
multi = example5_collaborative_filtering(graph, JOHN, sim_threshold=0.1)
pattern = figure2_collaborative_filtering(graph, JOHN, sim_threshold=0.1)
recs_multi = recommendations_from(multi, JOHN)[:5]
recs_pattern = recommendations_from(pattern, JOHN)[:5]
print("\nExample 5 (multi-step) top-5 recommendations for John:")
for dest, score in recs_multi:
    print(f"  {graph.node(dest).value('name'):<28} {score:.3f}")
print(f"Figure 2 (graph pattern) gives the same answer: "
      f"{dict(recs_multi) == dict(recs_pattern)}")

# ---------------------------------------------------------------------------
# Declarative plans + the logical optimizer.
# ---------------------------------------------------------------------------
G = input_graph("G")
john = G.select_nodes({"id": JOHN})
plan = (
    G.semi_join(john, ("src", "src"))
    .select_links({"type": "friend"})
    .select_links({"type": "connect"})
)
optimized, report = optimize(plan)
stats = GraphStats.of(graph)
print("\nnaive plan:")
print(plan.render(stats))
print(f"\noptimizer: {report}")
print("optimized plan:")
print(optimized.render(stats))
naive_result = plan.evaluate({"G": graph})
optimized_result = optimized.evaluate({"G": graph})
print(f"results identical: {naive_result.same_as(optimized_result)}")

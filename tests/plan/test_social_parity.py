"""Differential parity: the compiled social stage vs. the legacy strategies.

The correctness net under the social-stage compiler: hypothesis-driven
property tests hold the compiled plans (logical evaluation, the lowered
physical forms, and the §6.2 network-index access paths) equal — within
1e-9 — to the hand-executed reference implementations in
``repro.discovery.strategies`` / ``repro.discovery.connections`` across
randomized workload graphs, all three strategies, and the degenerate
regimes (empty neighborhoods, null graphs, absent users) where relevance
reproductions drift silently.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from factories import social_site_graph
from repro.core import Link, Node, SocialContentGraph, input_graph
from repro.core.expr import ConnectionBasisE, SocialScoreE
from repro.core.social import decode_social_result
from repro.discovery import (
    DEFAULT_STRATEGIES,
    FriendBasedStrategy,
    InformationDiscoverer,
    find_experts,
    parse_query,
)
from repro.discovery.connections import ConnectionSelector
from repro.plan import CostModel, QueryPlanner

TOL = 1e-9

USER_POOL = [f"u{i}" for i in range(7)]
ITEM_POOL = [f"i{i}" for i in range(8)]
VOCAB = ("topic0", "topic1", "topic2", "offkey")


# ---------------------------------------------------------------------------
# Random workload graphs
# ---------------------------------------------------------------------------


@st.composite
def social_workloads(draw):
    """A random social site plus a query (user, keywords).

    Regimes covered by construction: users without friends, friends
    without activities, missing ``sim_item`` feeds, empty keyword sets,
    keywords matching nothing, and (occasionally) a querying user with no
    node at all beyond its links.
    """
    g = SocialContentGraph()
    n_users = draw(st.integers(min_value=1, max_value=len(USER_POOL)))
    users = USER_POOL[:n_users]
    for u in users:
        g.add_node(Node(u, type="user", name=f"user {u}"))
    n_items = draw(st.integers(min_value=0, max_value=len(ITEM_POOL)))
    items = ITEM_POOL[:n_items]
    for index, item in enumerate(items):
        g.add_node(Node(
            item, type="item", name=f"item {item}",
            keywords=draw(st.sampled_from(VOCAB)),
            category=VOCAB[index % 3],
        ))
    link_id = 0
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        src, tgt = draw(st.sampled_from(users)), draw(st.sampled_from(users))
        g.add_link(Link(f"c{link_id}", src, tgt, type="connect, friend"))
        link_id += 1
    if items:
        for _ in range(draw(st.integers(min_value=0, max_value=14))):
            src = draw(st.sampled_from(users))
            tgt = draw(st.sampled_from(items))
            attrs = {"type": "act, visit"}
            if draw(st.booleans()):
                attrs["tags"] = draw(st.sampled_from(VOCAB))
            g.add_link(Link(f"a{link_id}", src, tgt, **attrs))
            link_id += 1
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            src = draw(st.sampled_from(items))
            tgt = draw(st.sampled_from(items))
            if src == tgt:
                continue
            g.add_link(Link(
                f"s{link_id}", src, tgt, type="sim_item",
                sim=draw(st.floats(min_value=0.05, max_value=1.0,
                                   allow_nan=False)),
            ))
            link_id += 1
    user = draw(st.sampled_from(users))
    keywords = tuple(draw(st.lists(st.sampled_from(VOCAB), max_size=2)))
    return g, user, keywords


# ---------------------------------------------------------------------------
# The legacy reference (exactly the seed-era control flow)
# ---------------------------------------------------------------------------


def legacy_social(graph, user, keywords, strategy_name):
    """Reference scores: ConnectionSelector + strategy + Selma fallback."""
    selection = ConnectionSelector(graph).select(user, keywords)
    strategy = DEFAULT_STRATEGIES[strategy_name]
    candidates = {n.id for n in graph.nodes_of_type("item")}
    social = strategy.score(graph, user, candidates, selection)
    fallback = selection.used_expert_fallback
    if (
        not social.scores
        and isinstance(strategy, FriendBasedStrategy)
        and not fallback
    ):
        fallback = True
        selection.used_expert_fallback = True
        selection.experts = find_experts(graph, set(keywords), exclude={user})
        social = strategy.score(graph, user, candidates, selection)
    return social, fallback


def compiled_social(graph, user, keywords, strategy_name, planner=None,
                    access="auto"):
    """Compiled scores: the SocialScoreE stage, logical or physical."""
    G = input_graph("G")
    candidates = G.select_nodes({"type": "item"})
    basis = ConnectionBasisE(G, user_id=user, keywords=keywords)
    social = SocialScoreE(
        G, candidates, basis,
        strategy=strategy_name, user_id=user, keywords=keywords,
        sim_threshold=0.1, act_type="visit",
    )
    if planner is None:
        result = social.evaluate({"G": graph})
    else:
        result = planner.execute(social, access=access).result
    return decode_social_result(result)


def assert_scores_match(reference, fallback, decoded):
    assert set(decoded.scores) == set(reference.scores)
    for item, score in reference.scores.items():
        assert decoded.scores[item] == pytest.approx(score, abs=TOL)
    assert set(decoded.endorsers) == set(reference.endorsers)
    for item, per_user in reference.endorsers.items():
        assert set(decoded.endorsers[item]) == set(per_user)
        for u, w in per_user.items():
            assert decoded.endorsers[item][u] == pytest.approx(w, abs=TOL)
    assert set(decoded.supporting_items) == set(reference.supporting_items)
    for item, per_item in reference.supporting_items.items():
        for s, w in per_item.items():
            assert decoded.supporting_items[item][s] == pytest.approx(
                w, abs=TOL
            )
    assert decoded.used_expert_fallback == fallback


# ---------------------------------------------------------------------------
# Properties: one per strategy, logical and physical
# ---------------------------------------------------------------------------


class TestStrategyParity:
    @settings(max_examples=60, deadline=None)
    @given(social_workloads())
    def test_friend_based(self, workload):
        graph, user, keywords = workload
        reference, fallback = legacy_social(graph, user, keywords, "friends")
        decoded = compiled_social(graph, user, keywords, "friends")
        assert_scores_match(reference, fallback, decoded)

    @settings(max_examples=45, deadline=None)
    @given(social_workloads())
    def test_similar_users(self, workload):
        graph, user, keywords = workload
        reference, fallback = legacy_social(
            graph, user, keywords, "similar_users"
        )
        decoded = compiled_social(graph, user, keywords, "similar_users")
        assert_scores_match(reference, fallback, decoded)

    @settings(max_examples=45, deadline=None)
    @given(social_workloads())
    def test_item_based(self, workload):
        graph, user, keywords = workload
        reference, fallback = legacy_social(
            graph, user, keywords, "item_based"
        )
        decoded = compiled_social(graph, user, keywords, "item_based")
        assert_scores_match(reference, fallback, decoded)


class TestPhysicalPathParity:
    """Every lowered form — probe, exact index, clustered index — agrees."""

    @settings(max_examples=30, deadline=None)
    @given(social_workloads())
    def test_network_index_paths_match_the_probe(self, workload):
        graph, user, _keywords = workload
        keywords = ()  # the uniform-weight regime the index paths serve
        reference, fallback = legacy_social(graph, user, keywords, "friends")
        exact = compiled_social(
            graph, user, keywords, "friends",
            planner=QueryPlanner(graph), access="index",
        )
        clustered = compiled_social(
            graph, user, keywords, "friends",
            planner=QueryPlanner(
                graph, cost_model=CostModel(network_entry_budget=0.0)
            ),
            access="index",
        )
        assert_scores_match(reference, fallback, exact)
        assert_scores_match(reference, fallback, clustered)

    @settings(max_examples=25, deadline=None)
    @given(social_workloads(), st.sampled_from(
        ["friends", "similar_users", "item_based"]
    ))
    def test_compiled_pipeline_matches_legacy_rank(self, workload, strategy):
        graph, user, keywords = workload
        discoverer = InformationDiscoverer(graph)
        query = parse_query(user, " ".join(keywords))
        compiled = discoverer.rank(query, strategy=strategy)
        legacy = discoverer._rank_legacy(query, strategy, None, None)
        assert [s.item_id for s in compiled.items] == [
            s.item_id for s in legacy.items
        ]
        for got, want in zip(compiled.items, legacy.items):
            assert got.combined == pytest.approx(want.combined, abs=TOL)
            assert got.semantic == pytest.approx(want.semantic, abs=TOL)
            assert got.social == pytest.approx(want.social, abs=TOL)
        assert compiled.used_expert_fallback == legacy.used_expert_fallback
        for item in {s.item_id for s in legacy.items}:
            assert compiled.social.endorsers.get(item, {}) == pytest.approx(
                legacy.social.endorsers.get(item, {}), abs=TOL
            )


class TestDegenerateRegimes:
    """Deterministic corners: null graphs and empty neighborhoods."""

    def test_null_graph(self):
        g = SocialContentGraph()
        g.add_node(Node("u0", type="user"))
        for strategy in ("friends", "similar_users", "item_based"):
            reference, fallback = legacy_social(g, "u0", (), strategy)
            decoded = compiled_social(g, "u0", (), strategy)
            assert_scores_match(reference, fallback, decoded)
            assert decoded.scores == {}

    def test_totally_empty_graph(self):
        g = SocialContentGraph()
        for strategy in ("friends", "similar_users", "item_based"):
            reference, fallback = legacy_social(g, "u0", ("topic0",), strategy)
            decoded = compiled_social(g, "u0", ("topic0",), strategy)
            assert_scores_match(reference, fallback, decoded)

    def test_friendless_user_triggers_the_expert_fallback(self):
        g = social_site_graph(num_users=4, num_items=4)
        g.add_node(Node("loner", type="user", name="no friends"))
        reference, fallback = legacy_social(g, "loner", ("topic0",), "friends")
        decoded = compiled_social(g, "loner", ("topic0",), "friends")
        assert fallback is True
        assert_scores_match(reference, fallback, decoded)

    def test_friends_without_matching_activities(self):
        g = SocialContentGraph()
        for u in ("u0", "u1"):
            g.add_node(Node(u, type="user"))
        g.add_node(Node("i0", type="item", keywords="topic0"))
        g.add_link(Link("c0", "u0", "u1", type="connect, friend"))
        # u1 never acts: empty-neighborhood endorsements on every path
        for access in ("auto", "index", "scan"):
            decoded = compiled_social(
                g, "u0", (), "friends",
                planner=QueryPlanner(g), access=access,
            )
            reference, fallback = legacy_social(g, "u0", (), "friends")
            assert_scores_match(reference, fallback, decoded)
            assert decoded.used_expert_fallback is True

    def test_auto_resolution_uses_the_configured_cf_parameters(self):
        # A connect-free graph resolves "auto" to similar_users; the
        # compiled stage must score with the *registered* instance's
        # parameters, not library defaults.
        from repro.discovery import DEFAULT_STRATEGIES, SimilarUserStrategy

        g = SocialContentGraph()
        for u in ("u0", "u1", "u2"):
            g.add_node(Node(u, type="user"))
        for i in ("i0", "i1", "i2", "i3"):
            g.add_node(Node(i, type="item", keywords="topic0"))
        acts = [("u0", "i0"), ("u0", "i1"), ("u1", "i0"), ("u1", "i1"),
                ("u1", "i2"), ("u2", "i0"), ("u2", "i3")]
        for n, (u, i) in enumerate(acts):
            g.add_link(Link(f"a{n}", u, i, type="act, visit"))
        strategies = dict(DEFAULT_STRATEGIES)
        strategies["similar_users"] = SimilarUserStrategy(sim_threshold=0.5)
        discoverer = InformationDiscoverer(g, strategies=strategies)
        query = parse_query("u0", "")
        explicit = discoverer.rank(query, strategy="similar_users")
        auto = discoverer.rank(query, strategy="auto")
        assert auto.social.strategy == "similar_users"
        assert [s.item_id for s in auto.items] == [
            s.item_id for s in explicit.items
        ]
        assert auto.social.scores == pytest.approx(explicit.social.scores,
                                                   abs=TOL)

    def test_multi_activity_pairs_degrade_the_index_path_safely(self):
        # Two act links (u1 -> i0): per-link probe weights diverge from
        # set-semantics postings, so the index path must fall back.
        g = SocialContentGraph()
        for u in ("u0", "u1"):
            g.add_node(Node(u, type="user"))
        g.add_node(Node("i0", type="item", keywords="topic0"))
        g.add_link(Link("c0", "u0", "u1", type="connect, friend"))
        g.add_link(Link("a0", "u1", "i0", type="act, visit"))
        g.add_link(Link("a1", "u1", "i0", type="act, tag", tags="topic0"))
        reference, fallback = legacy_social(g, "u0", (), "friends")
        assert reference.scores["i0"] == pytest.approx(2.0)
        decoded = compiled_social(
            g, "u0", (), "friends", planner=QueryPlanner(g), access="index"
        )
        assert_scores_match(reference, fallback, decoded)

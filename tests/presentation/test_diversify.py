"""Tests for result diversification (the paper's reference-[30] extension)."""

from __future__ import annotations

import pytest

from repro.discovery import InformationDiscoverer
from repro.presentation import (
    coverage_diversify,
    intra_list_similarity,
    mmr_diversify,
)
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def msg(travel):
    return InformationDiscoverer(travel.graph).discover(
        JOHN, "attractions", k=15
    )


class TestMMR:
    def test_lambda_one_is_pure_relevance(self, msg):
        ranked = [s.item_id for s in msg.items]
        diversified = [i for i, _ in mmr_diversify(msg, k=5, lam=1.0)]
        assert diversified == ranked[:5]

    def test_k_bounds_output(self, msg):
        assert len(mmr_diversify(msg, k=3)) == 3
        assert len(mmr_diversify(msg, k=999)) == len(msg.items)

    def test_no_duplicates(self, msg):
        items = [i for i, _ in mmr_diversify(msg, k=10)]
        assert len(items) == len(set(items))

    def test_reduces_intra_list_similarity(self, msg, travel):
        plain = [s.item_id for s in msg.items[:8]]
        diverse = [i for i, _ in mmr_diversify(msg, k=8, lam=0.5)]
        assert intra_list_similarity(diverse, travel.graph) <= (
            intra_list_similarity(plain, travel.graph) + 1e-9
        )

    def test_invalid_lambda(self, msg):
        with pytest.raises(ValueError):
            mmr_diversify(msg, k=3, lam=1.5)

    def test_deterministic(self, msg):
        a = mmr_diversify(msg, k=6, lam=0.6)
        b = mmr_diversify(msg, k=6, lam=0.6)
        assert a == b


class TestCoverage:
    def test_covers_attribute_values_first(self, msg, travel):
        picked = [i for i, _ in coverage_diversify(msg, k=6,
                                                   attribute="category")]
        values = [travel.graph.node(i).value("category", "(none)")
                  for i in picked]
        distinct_available = {
            travel.graph.node(s.item_id).value("category", "(none)")
            for s in msg.items
        }
        expected_distinct = min(len(distinct_available), 6)
        assert len(set(values)) >= expected_distinct - 1

    def test_refills_by_relevance(self, msg):
        k = len(msg.items)
        picked = coverage_diversify(msg, k=k)
        assert len(picked) == k
        assert {i for i, _ in picked} == set(msg.item_ids)

    def test_k_respected(self, msg):
        assert len(coverage_diversify(msg, k=4)) == 4


class TestIntraListSimilarity:
    def test_singleton_is_zero(self, msg, travel):
        assert intra_list_similarity([msg.item_ids[0]], travel.graph) == 0.0

    def test_bounds(self, msg, travel):
        value = intra_list_similarity(msg.item_ids[:6], travel.graph)
        assert 0.0 <= value <= 1.0

"""Fixture: a clean plan module exercising every rule's *negative* path.

Downward import (layering OK), ``perf_counter`` profiling in a strict
module (determinism OK), and a correctly disciplined lock: guarded
writes under ``with self._lock``, the ``*_locked`` helper called only
with the lock held (concurrency OK).
"""

import threading
import time

from app.core import fold


def profile(values):
    start = time.perf_counter()
    total = fold(values)
    return total, time.perf_counter() - start


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def _note_locked(self):
        self.count += 1

    def bump(self):
        with self._lock:
            self._note_locked()

    def bump_twice(self):
        with self._lock:
            self._note_locked()
            self._note_locked()

"""The Information Discoverer (paper §3): query → Meaningful Social Graph.

    "The Information Discoverer parses the user query, constructs its
    internal representations (based on various semantic and social
    relevance computations), and evaluates them on the social content
    graph."

Pipeline per query:

1. parse (:mod:`repro.discovery.query`) and classify
   (:mod:`repro.discovery.classify`) the text;
2. build the *whole* remaining pipeline as one algebra plan and execute
   it through the physical compiler (:mod:`repro.plan`): semantic
   σN⟨C,S⟩ scoping (index vs. scan chosen cost-wise), connection
   selection (friend subset fit for the query, falling back to topic
   experts — Example 2), social relevance (friend endorsements by
   default; Example 5 CF and item-based available; probe vs. §6.2
   endorsement index chosen cost-wise, and the strategy itself under
   ``"auto"``), and the ``α·semantic + (1-α)·social`` combination over
   max-normalised components (empty queries use social only, §4) —
   compiled once per shape into the generation-stamped plan cache;
3. assemble the MSG.

Custom strategy objects (anything outside the three built-in classes)
and injected semantic score maps still run the hand-executed reference
path (:meth:`InformationDiscoverer._rank_legacy`), which the parity
suite holds equal to the compiled one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id, SocialContentGraph
from repro.core.social import decode_social_result
from repro.discovery.classify import QueryClassifier
from repro.discovery.connections import ConnectionSelector
from repro.discovery.msg import MeaningfulSocialGraph, ScoredItem, assemble_msg
from repro.discovery.query import Query, parse_query
from repro.discovery.relevance import SemanticRelevance, SemanticResult
from repro.discovery.strategies import (
    DEFAULT_STRATEGIES,
    FriendBasedStrategy,
    ItemBasedStrategy,
    SimilarUserStrategy,
    SocialScores,
    SocialStrategy,
)
from repro.errors import DiscoveryError
from repro.plan import PlanExecution, QueryPlanner

#: Strategy classes the physical compiler knows how to lower, mapped to
#: their canonical plan names.  Custom strategy objects fall back to the
#: hand-executed scoring path.
_COMPILED_STRATEGY_TYPES = {
    FriendBasedStrategy: "friends",
    SimilarUserStrategy: "similar_users",
    ItemBasedStrategy: "item_based",
}


@dataclass
class DiscoveryConfig:
    """Tunables for the discovery pipeline."""

    #: semantic weight α in the combined score (1-α is social)
    alpha: float = 0.5
    #: how many results an MSG carries
    max_results: int = 20
    #: social strategy name from the registry
    strategy: str = "friends"
    #: drop items with a combined score of zero
    drop_zero: bool = True


@dataclass
class RankedDiscovery:
    """One query's *full* combined ranking, before any window is cut.

    The items list is totally ordered (score desc, item-id repr asc), so
    any ``[offset : offset+limit]`` window is deterministic — the property
    the session API's pagination rests on.
    """

    query: Query
    items: list[ScoredItem]
    social: SocialScores
    used_expert_fallback: bool
    #: the end-to-end physical-plan execution that produced this ranking
    #: (None only when a custom strategy forced the hand-executed path
    #: *and* the caller injected precomputed semantic scores)
    execution: PlanExecution | None = field(default=None, compare=False)

    @property
    def total(self) -> int:
        """Number of ranked (non-dropped) items."""
        return len(self.items)


class InformationDiscoverer:
    """Evaluates queries into Meaningful Social Graphs."""

    def __init__(
        self,
        graph: SocialContentGraph,
        config: DiscoveryConfig | None = None,
        strategies: dict[str, SocialStrategy] | None = None,
        item_type: str = "item",
    ):
        self.graph = graph
        self.config = config or DiscoveryConfig()
        self.strategies = dict(strategies or DEFAULT_STRATEGIES)
        self.classifier = QueryClassifier()
        self.semantic = SemanticRelevance(graph, item_type=item_type)
        self.connections = ConnectionSelector(graph)
        #: compiles every query's scoping plan; sessions attach their
        #: semantic index here so the cost model can choose it
        self.planner = QueryPlanner(graph)

    def refresh(self, graph: SocialContentGraph) -> None:
        """Point the pipeline at a (possibly new) graph in place.

        The incremental alternative to reconstructing the discoverer:
        stateless helpers are retargeted, the semantic layer's cached
        corpus state is invalidated rather than eagerly rebuilt, and the
        planner bumps its generation (stale compiled plans die on lookup).
        """
        self.graph = graph
        self.semantic.invalidate(graph)
        self.connections.graph = graph
        self.planner.refresh(graph)

    def strategy(self, name: str | None = None) -> SocialStrategy:
        """Resolve a strategy by name (configured default when None)."""
        key = name or self.config.strategy
        strategy = self.strategies.get(key)
        if strategy is None:
            raise DiscoveryError(
                f"unknown social strategy {key!r}; have {sorted(self.strategies)}"
            )
        return strategy

    # ------------------------------------------------------------------ main
    def discover(
        self,
        user_id: Id,
        text: str = "",
        structural=None,
        strategy: str | None = None,
        k: int | None = None,
    ) -> MeaningfulSocialGraph:
        """Run the full pipeline for one query."""
        query = parse_query(user_id, text, structural)
        return self.discover_query(query, strategy=strategy, k=k)

    def discover_query(
        self,
        query: Query,
        strategy: str | None = None,
        k: int | None = None,
        alpha: float | None = None,
        semantic: SemanticResult | None = None,
        offset: int = 0,
        access: str = "auto",
    ) -> MeaningfulSocialGraph:
        """Evaluate an already-parsed query into a (windowed) MSG.

        Request-aware entry point: *strategy*/*alpha* override the config
        per call, *semantic* injects a precomputed candidate score map
        (e.g. from an index-backed stage), and *offset* cuts a later
        pagination window out of the full ranking.
        """
        limit = k if k is not None else self.config.max_results
        ranking = self.rank(
            query, strategy=strategy, alpha=alpha, semantic=semantic,
            access=access, limit=offset + limit,
        )
        window = ranking.items[offset : offset + limit]
        return assemble_msg(
            self.graph, query, window, ranking.social,
            ranking.used_expert_fallback,
        )

    def semantic_candidates(
        self, query: Query, access: str = "auto"
    ) -> PlanExecution:
        """Execute the query's σN scoping plan through the compiler.

        *access* constrains the physical choice (``"auto"``/``"index"``/
        ``"scan"``); eligibility — keyword-only scope over the indexed
        population, shared scorer — is enforced by the compiler, so a
        forced ``"index"`` on an ineligible query still scans.
        """
        scorer = self.semantic.scorer if query.keywords else None
        return self.planner.semantic_candidates(
            query,
            item_type=self.semantic.item_type,
            scorer=scorer,
            access=access,
        )

    def _compiled_form(self, name: str) -> tuple[str, float, str] | None:
        """(canonical strategy, sim_threshold, act_type) or None.

        ``None`` means the resolved strategy is a custom object the
        compiler cannot lower — the hand-executed scoring path serves it.
        Unknown names raise, exactly as the registry lookup always has.
        """
        if name == "auto":
            # Auto may resolve to similar_users at compile time: carry the
            # registered instance's parameters so the auto-resolved scoring
            # matches an explicit request exactly.
            configured = self.strategies.get("similar_users")
            if isinstance(configured, SimilarUserStrategy):
                return ("auto", configured.sim_threshold, configured.act_type)
            return ("auto", 0.1, "visit")
        instance = self.strategy(name)
        canonical = _COMPILED_STRATEGY_TYPES.get(type(instance))
        if canonical is None:
            return None
        if isinstance(instance, SimilarUserStrategy):
            return (canonical, instance.sim_threshold, instance.act_type)
        return (canonical, 0.1, "visit")

    def rank(
        self,
        query: Query,
        strategy: str | None = None,
        alpha: float | None = None,
        semantic: SemanticResult | None = None,
        access: str = "auto",
        limit: int | None = None,
        deadline: float | None = None,
    ) -> RankedDiscovery:
        """Compute the combined ranking for an already-parsed query.

        The *whole* pipeline — semantic σN⟨C,S⟩ candidates, connection
        basis, strategy scoring, α-combination — runs as one compiled
        physical plan (Example 4/5's semi-join + aggregation reading), so
        EXPLAIN covers every stage and the plan cache covers the full
        query.  Two callers opt out of compilation: an injected *semantic*
        score map (precomputed candidates cannot enter a compiled plan)
        and a custom strategy object the compiler cannot lower.  Per-item
        combined scores are independent of any result limit (normalisation
        runs over the full candidate set), so callers may window the
        returned list freely without reordering artifacts.

        *limit* pushes a result budget into the ranking stage (top-k
        selection instead of a full sort): the returned ``items`` carry
        only the best *limit* rows — identical to the full ranking's
        prefix — while score and provenance maps still cover every
        surviving item.  ``None`` keeps the full ranking (the pagination
        paths that may walk arbitrarily deep pass ``None``).
        """
        name = strategy or self.config.strategy
        form = None if semantic is not None else self._compiled_form(name)
        if form is None:
            return self._rank_legacy(query, name, alpha, semantic, access)
        weight = 0.0 if query.is_empty else (
            self.config.alpha if alpha is None else alpha
        )
        execution = self.planner.discovery_pipeline(
            query,
            item_type=self.semantic.item_type,
            scorer=self.semantic.scorer if query.keywords else None,
            strategy=form[0],
            sim_threshold=form[1],
            act_type=form[2],
            alpha=weight,
            drop_zero=self.config.drop_zero,
            min_fit=self.connections.min_fit,
            min_qualified=self.connections.min_qualified,
            max_experts=self.connections.max_experts,
            access=access,
            limit=limit,
            deadline=deadline,
        )
        # A fused root hands the decoded ranking over directly; unfused
        # plans (e.g. the endorsement-merge forms) decode the graph.
        decoded = execution.payload
        if decoded is None:
            decoded = decode_social_result(execution.result, limit=limit)
        social = SocialScores(
            strategy=decoded.strategy,
            scores=decoded.scores,
            endorsers=decoded.endorsers,
            supporting_items=decoded.supporting_items,
        )
        items = [
            ScoredItem(item_id=item, semantic=sem, social=soc, combined=combined)
            for item, sem, soc, combined in decoded.items
        ]
        return RankedDiscovery(
            query=query,
            items=items,
            social=social,
            used_expert_fallback=decoded.used_expert_fallback,
            execution=execution,
        )

    def _rank_legacy(
        self,
        query: Query,
        name: str,
        alpha: float | None,
        semantic: SemanticResult | None,
        access: str = "auto",
    ) -> RankedDiscovery:
        """The hand-executed scoring pipeline (reference implementation).

        Kept for custom strategy objects and injected semantic scores;
        the differential parity suite holds the compiled path equal to
        this one on the built-in strategies.
        """
        execution = None
        if semantic is None:
            execution = self.semantic_candidates(query, access=access)
            semantic_result = SemanticResult(scores=execution.scores())
        else:
            semantic_result = semantic
        candidates = set(semantic_result.scores)

        selection = self.connections.select(query.user_id, query.keywords)
        chosen = self.strategy(name)
        social = chosen.score(self.graph, query.user_id, candidates, selection)
        # Selma fallback: if the friend basis produced nothing (or experts
        # were already chosen), friend strategies rerun over experts.
        if (
            not social.scores
            and isinstance(chosen, FriendBasedStrategy)
            and not selection.used_expert_fallback
        ):
            from repro.discovery.connections import find_experts

            selection.used_expert_fallback = True
            selection.experts = find_experts(
                self.graph, set(query.keywords), exclude={query.user_id}
            )
            social = chosen.score(
                self.graph, query.user_id, candidates, selection
            )

        semantic_norm = semantic_result.normalized()
        social_norm = social.normalized()
        if query.is_empty:
            weight = 0.0
        else:
            weight = self.config.alpha if alpha is None else alpha

        combined: list[ScoredItem] = []
        for item in candidates:
            sem = semantic_norm.get(item, 0.0)
            soc = social_norm.get(item, 0.0)
            score = weight * sem + (1 - weight) * soc
            if self.config.drop_zero and score <= 0.0:
                continue
            combined.append(
                ScoredItem(item_id=item, semantic=sem, social=soc, combined=score)
            )
        combined.sort(key=lambda s: (-s.combined, repr(s.item_id)))
        return RankedDiscovery(
            query=query,
            items=combined,
            social=social,
            used_expert_fallback=selection.used_expert_fallback,
            execution=execution,
        )

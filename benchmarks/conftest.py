"""Shared fixtures for the benchmark harness.

Each bench prints the paper-style table it regenerates (via the ``report``
fixture, which bypasses pytest's output capture so the tables land in
``bench_output.txt``) and uses pytest-benchmark for the timing rows.
"""

from __future__ import annotations

import pytest

from repro.indexing import TaggingData
from repro.workloads import (
    TaggingSiteConfig,
    TravelSiteConfig,
    build_tagging_site,
    build_travel_site,
)


def pytest_addoption(parser):
    """``--quick``: smoke mode for CI — tiny workloads, no timing asserts.

    Benches honoring it (via the ``quick`` fixture) still exercise every
    code path and still emit their JSON artifacts; they just stop claiming
    anything about wall-clock on shared runners.
    """
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="benchmark smoke mode: assert benches run, not timings",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return request.config.getoption("--quick")


@pytest.fixture(scope="session", autouse=True)
def _bench_harness_is_deterministic():
    """Gate: the bench harness itself obeys the determinism rules.

    ``bench_baselines.json`` comparisons are only meaningful when the
    benches draw from seeded generators and never read the wall clock
    into a result (``perf_counter`` timing is fine).  The archcheck
    determinism family enforces exactly that, with ``benchmarks`` on the
    seeded-RNG allowlist, so regressions in the harness fail fast here
    rather than as unexplainable baseline drift.
    """
    import sys
    from pathlib import Path

    bench_root = Path(__file__).resolve().parent
    repo_root = bench_root.parent
    sys.path.insert(0, str(repo_root))  # make `tools` importable
    try:
        from tools.archcheck.config import load_config
        from tools.archcheck.findings import collect_modules
        from tools.archcheck.runner import run_rules
    finally:
        sys.path.remove(str(repo_root))

    config = load_config(repo_root / "pyproject.toml")
    # bench modules live at benchmarks/<name>.py: present them to the
    # checker under the `benchmarks` package the allowlist names
    modules = collect_modules(bench_root, repo_root, layer_root="")
    for module in modules:
        module.name = f"benchmarks.{module.name}"
    assert modules, "no bench modules collected"
    findings = run_rules(modules, config, ("determinism",))
    assert not findings, "\n".join(f.render() for f in findings)
    yield


@pytest.fixture
def report(capsys):
    """Print lines straight to the terminal, bypassing capture."""

    def _print(*lines: object) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _print


@pytest.fixture(scope="session")
def travel_site():
    """The shared Y!Travel-like site (personas included)."""
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="session")
def tagging_data():
    """The shared §6.2 tagging workload, pre-extracted."""
    site = build_tagging_site(
        TaggingSiteConfig(num_users=200, num_items=500, num_tags=40, seed=11)
    )
    return TaggingData.from_graph(site.graph)

"""The Information Discoverer half of the Information Discovery layer.

Query model and classification (Table 1), semantic + social relevance,
connection selection with expert fallback, and Meaningful Social Graph
construction.
"""

from repro.discovery.classify import (
    CATEGORICAL,
    ClassifiedQuery,
    GENERAL,
    QueryClassifier,
    SPECIFIC,
    UNCLASSIFIED,
)
from repro.discovery.connections import (
    ConnectionSelection,
    ConnectionSelector,
    find_experts,
)
from repro.discovery.discoverer import (
    DiscoveryConfig,
    InformationDiscoverer,
    RankedDiscovery,
)
from repro.discovery.msg import MeaningfulSocialGraph, ScoredItem, assemble_msg
from repro.discovery.query import Query, parse_query
from repro.discovery.relevance import SemanticRelevance, SemanticResult
from repro.discovery.strategies import (
    DEFAULT_STRATEGIES,
    FriendBasedStrategy,
    ItemBasedStrategy,
    SimilarUserStrategy,
    SocialScores,
)

__all__ = [
    "Query", "parse_query",
    "QueryClassifier", "ClassifiedQuery",
    "GENERAL", "CATEGORICAL", "SPECIFIC", "UNCLASSIFIED",
    "SemanticRelevance", "SemanticResult",
    "ConnectionSelector", "ConnectionSelection", "find_experts",
    "FriendBasedStrategy", "SimilarUserStrategy", "ItemBasedStrategy",
    "SocialScores", "DEFAULT_STRATEGIES",
    "MeaningfulSocialGraph", "ScoredItem", "assemble_msg",
    "InformationDiscoverer", "DiscoveryConfig", "RankedDiscovery",
]

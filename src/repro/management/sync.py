"""Activity-driven synchronization scheduling (paper §6 "further discussion").

Given refresh intervals from the :class:`~repro.management.activity.
ActivityManager`, :class:`SyncScheduler` decides, on a simulated clock,
which users to re-import from remote sites at each tick.  It tracks the
staleness (remote activities not yet imported) that the policy leaves
behind, so benches can compare activity-driven scheduling against uniform
refreshing under an equal API-call budget — the quantity the paper argues
activity awareness should improve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id
from repro.management.activity import UserActivityProfile
from repro.management.integrator import ContentIntegrator
from repro.management.remote import RemoteSocialSite


@dataclass
class SyncMetrics:
    """Accounting for a scheduling run."""

    ticks: int = 0
    refreshes: int = 0
    imported_activities: int = 0
    #: sum over ticks of total remaining staleness (lower = fresher data)
    staleness_area: int = 0

    @property
    def mean_staleness(self) -> float:
        """Average outstanding remote activities per tick."""
        return self.staleness_area / self.ticks if self.ticks else 0.0


class SyncScheduler:
    """Interval-based refresh scheduler over one remote site."""

    def __init__(
        self,
        site: RemoteSocialSite,
        integrator: ContentIntegrator,
        profiles: dict[Id, UserActivityProfile],
    ):
        self.site = site
        self.integrator = integrator
        self.profiles = profiles
        self._next_due: dict[Id, int] = {
            user: 0 for user in profiles  # everyone due at tick 0
        }
        self.metrics = SyncMetrics()

    def due_users(self, tick: int) -> list[Id]:
        """Users whose refresh interval has elapsed at *tick*."""
        return sorted(
            (u for u, due in self._next_due.items() if due <= tick), key=repr
        )

    def run_tick(self, tick: int, budget: int | None = None) -> int:
        """Refresh due users (optionally capped at *budget*); returns count.

        Budget-capped ticks prioritise by *aging*: how long a user has been
        overdue, scaled by their interval (``(tick - due) / interval``).
        Short-interval (heavy) users accrue priority fastest, but everyone's
        priority grows while waiting, so quiet users are never starved.
        """
        due = self.due_users(tick)

        def priority(user: Id) -> tuple:
            profile = self.profiles[user]
            overdue = tick - self._next_due[user]
            return (-(overdue + 1) / profile.refresh_interval, repr(user))

        due.sort(key=priority)
        if budget is not None:
            due = due[:budget]
        for user in due:
            report = self.integrator.import_user(
                self.site, user, with_connections=False, with_activities=True
            )
            self.metrics.imported_activities += report.activities
            self.metrics.refreshes += 1
            self._next_due[user] = tick + self.profiles[user].refresh_interval
        # Staleness accounting across ALL users after this tick's refreshes.
        self.metrics.ticks += 1
        for user in self.profiles:
            self.metrics.staleness_area += self.integrator.staleness(
                self.site, user
            )
        return len(due)

    def run(self, ticks: int, budget_per_tick: int | None = None) -> SyncMetrics:
        """Run the scheduler for a number of ticks."""
        for tick in range(ticks):
            self.run_tick(tick, budget=budget_per_tick)
        return self.metrics


def uniform_profiles(
    users: list[Id], interval: int
) -> dict[Id, UserActivityProfile]:
    """Baseline: every user refreshed at the same fixed interval."""
    return {
        user: UserActivityProfile(
            user_id=user, refresh_interval=max(1, interval)
        )
        for user in users
    }

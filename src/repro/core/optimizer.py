"""Rule-based logical optimizer over algebra expression trees.

The paper positions the algebra as "the foundation for the optimization of
those tasks"; this module supplies the first concrete rules:

* **Selection fusion** — σC1(σC2(G)) ⇒ σ⟨C1∧C2⟩(G) when the inner selection
  neither scores nor scopes by keywords (otherwise fusing would change the
  attached scores).
* **Selection pushdown through semi-join** — σL_C(G1 ⋉δ G2) ⇒
  σL_C(G1) ⋉δ G2.  Sound because a semi-join returns a subgraph of G1
  induced by surviving links, so filtering before or after keeps exactly
  the links that both match and satisfy C.
* **Lemma 1** — G1 \\· G2 ⇒ id-matching anti-semi-join (see
  :mod:`repro.core.setops` for the reading of the lemma).
* **Set-operation idempotence** — G ∪ G ⇒ G, G ∩ G ⇒ G (structural
  sharing detected via :func:`repro.core.expr.same_expr`).
* **Pattern decomposition** (explicit transform, not auto-applied) —
  rewrites γL⟨GP,att,A⟩ into the compose + γL multi-step form so the
  Figure 2 ablation can compare both plans under one evaluator.

``optimize`` applies the rewrite set bottom-up to a fixpoint; each rule is
a pure function Expr -> Expr | None.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.expr import (
    ComposeE,
    Expr,
    IntersectE,
    LinkAggE,
    LinkMinusE,
    AntiSemiJoinE,
    PatternAggE,
    SelectLinksE,
    SelectNodesE,
    SemiJoinE,
    UnionE,
    same_expr,
)
from repro.core.patterns import PathLinkAvg
from repro.errors import ExpressionError

Rule = Callable[[Expr], Optional[Expr]]


def fuse_selections(expr: Expr) -> Expr | None:
    """σC1(σC2(G)) ⇒ σ⟨C1 ∧ C2⟩(G) when the inner selection is pure.

    "Pure" = no scorer and no keywords: then the inner pass only filters,
    and conjoining conditions is observationally identical while halving
    the passes over the data.
    """
    for cls in (SelectNodesE, SelectLinksE):
        if isinstance(expr, cls) and isinstance(expr.child, cls):
            inner = expr.child
            if inner.scorer is None and not inner.condition.has_keywords:
                fused = expr.condition.conjoin(inner.condition)
                return cls(inner.child, fused, expr.scorer)
    return None


def push_selection_into_semijoin(expr: Expr) -> Expr | None:
    """σL_C(G1 ⋉δ G2) ⇒ σL_C(G1) ⋉δ G2.

    Both sides keep exactly the G1 links that match δ *and* satisfy C; the
    induced node sets then coincide.  Filtering first shrinks the probe
    side, which is why Example 4's expressions are written that way.
    """
    if isinstance(expr, SelectLinksE) and isinstance(expr.child, SemiJoinE):
        join = expr.child
        pushed = SelectLinksE(join.left, expr.condition, expr.scorer)
        return SemiJoinE(pushed, join.right, join.delta)
    return None


def link_minus_to_antijoin(expr: Expr) -> Expr | None:
    """Lemma 1: G1 \\· G2 ⇒ G1 ⋉̄_id G2."""
    if isinstance(expr, LinkMinusE):
        return AntiSemiJoinE(expr.left, expr.right, ("src", "src"), on="id")
    return None


def setop_idempotence(expr: Expr) -> Expr | None:
    """G ∪ G ⇒ G and G ∩ G ⇒ G for structurally identical operands.

    Sound because union/intersection consolidate by id and consolidation
    with an identical record is the identity.
    """
    if isinstance(expr, (UnionE, IntersectE)) and same_expr(expr.left, expr.right):
        return expr.left
    return None


def _is_empty_literal(expr: Expr) -> bool:
    from repro.core.expr import LiteralE

    return isinstance(expr, LiteralE) and expr.graph.is_empty()


def propagate_empty(expr: Expr) -> Expr | None:
    """Constant-fold operators applied to the empty graph literal.

    * ``G ∪ ∅ ⇒ G`` and ``∅ ∪ G ⇒ G``;
    * ``G ∩ ∅ ⇒ ∅`` and ``∅ ∩ G ⇒ ∅``;
    * ``G \\ ∅ ⇒ G``; ``∅ \\ G ⇒ ∅``; same for ``\\·``;
    * ``G ⋉δ ∅ ⇒ ∅`` (nothing to match), ``∅ ⋉δ G ⇒ ∅``;
    * ``G ∘ ∅ ⇒ ∅`` and ``∅ ∘ G ⇒ ∅`` (no link pairs).

    These arise when earlier rules or user code splice constant subgraphs
    into plans; folding them lets whole branches disappear.
    """
    from repro.core.expr import (
        ComposeE as Comp,
        IntersectE as Inter,
        LinkMinusE as LMinus,
        LiteralE,
        MinusE as NMinus,
        SemiJoinE as SJoin,
        UnionE as Un,
    )
    from repro.core.graph import SocialContentGraph

    empty = lambda: LiteralE(SocialContentGraph())
    if isinstance(expr, Un):
        if _is_empty_literal(expr.left):
            return expr.right
        if _is_empty_literal(expr.right):
            return expr.left
    elif isinstance(expr, Inter):
        if _is_empty_literal(expr.left) or _is_empty_literal(expr.right):
            return empty()
    elif isinstance(expr, NMinus):
        if _is_empty_literal(expr.right):
            return expr.left
        if _is_empty_literal(expr.left):
            return empty()
    elif isinstance(expr, LMinus):
        # G \· ∅ is NOT G in general: Definition 4 keeps only link-induced
        # nodes, so isolated nodes of G would be dropped.  Only the
        # empty-left case folds safely.
        if _is_empty_literal(expr.left):
            return empty()
    elif isinstance(expr, SJoin):
        if _is_empty_literal(expr.left) or _is_empty_literal(expr.right):
            return empty()
    elif isinstance(expr, Comp):
        if _is_empty_literal(expr.left) or _is_empty_literal(expr.right):
            return empty()
    return None


#: Rules applied automatically by :func:`optimize`, in priority order.
DEFAULT_RULES: tuple[Rule, ...] = (
    fuse_selections,
    push_selection_into_semijoin,
    link_minus_to_antijoin,
    setop_idempotence,
    propagate_empty,
)


@dataclass
class OptimizeReport:
    """What the optimizer did, for EXPLAIN output and tests."""

    applied: list[str] = field(default_factory=list)
    passes: int = 0

    def __str__(self) -> str:
        if not self.applied:
            return "no rewrites applied"
        return f"{len(self.applied)} rewrites in {self.passes} passes: " + ", ".join(
            self.applied
        )


def optimize(
    expr: Expr,
    rules: tuple[Rule, ...] = DEFAULT_RULES,
    max_passes: int = 10,
) -> tuple[Expr, OptimizeReport]:
    """Apply *rules* bottom-up until fixpoint (or *max_passes*).

    Returns the rewritten plan and a report of the rule applications.  The
    input plan object is never mutated.
    """
    report = OptimizeReport()

    def rewrite(node: Expr) -> Expr:
        children = node.children()
        if children:
            new_children = tuple(rewrite(c) for c in children)
            if any(nc is not oc for nc, oc in zip(new_children, children)):
                node = node.with_children(*new_children)
        for rule in rules:
            replacement = rule(node)
            if replacement is not None:
                report.applied.append(rule.__name__)
                return replacement
        return node

    current = expr
    for _ in range(max_passes):
        report.passes += 1
        before = len(report.applied)
        current = rewrite(current)
        if len(report.applied) == before:
            break
    return current, report


def decompose_pattern_aggregation(expr: PatternAggE) -> Expr:
    """Rewrite a 2-hop γL⟨GP,att,A⟩ into the multi-step form of Example 5.

    This is the ablation transform the paper poses as an open question
    ("study the difference between the two approaches"): the pattern form
    scans paths once; the decomposed form runs a composition producing one
    link per path, followed by a link aggregation.

    Supported shape: 2-hop pattern whose A is :class:`PathLinkAvg` on hop 0
    (exactly Figure 2).  Other shapes raise ExpressionError — decomposition
    of arbitrary patterns is the open research question, not claimed here.
    """
    if not isinstance(expr, PatternAggE):
        raise ExpressionError("decompose_pattern_aggregation expects PatternAggE")
    pattern = expr.pattern
    if len(pattern.steps) != 2 or not isinstance(expr.agg, PathLinkAvg):
        raise ExpressionError(
            "only 2-hop patterns aggregated with PathLinkAvg(hop 0) decompose "
            "into the Example 5 multi-step form"
        )
    if expr.agg.link_index != 0:
        raise ExpressionError("decomposition requires aggregation on hop-0 links")
    hop1, hop2 = pattern.steps
    if hop1.direction != "out" or hop2.direction != "out":
        raise ExpressionError("decomposition supports forward (out) hops only")

    child = expr.child
    from repro.core.aggfuncs import average
    from repro.core.composition import CarryScore
    from repro.core.conditions import as_condition

    att = expr.agg.att
    # Stage 1: select hop-1 links out of the pattern's start nodes.
    start_nodes = child.select_nodes(pattern.start)
    first_links = child.select_links(as_condition(hop1.link)).semi_join(
        start_nodes, ("src", "src")
    )
    # Stage 2: select hop-2 links into the pattern's end nodes.
    end_nodes = child.select_nodes(as_condition(hop2.node))
    second_links = child.select_links(as_condition(hop2.link)).semi_join(
        end_nodes, ("tgt", "src")
    )
    # Stage 3: compose pairs (one link per path), carrying the hop-0 value.
    composed = first_links.compose_with(
        second_links,
        ("tgt", "src"),
        CarryScore(src_att=att, out_att="__hop0"),
        link_type="composed",
    )
    # Stage 4: aggregate per (start, end) pair with AVERAGE.
    return composed.aggregate_links(
        {"type": "composed"}, expr.att, average("__hop0"), link_type=expr.link_type
    )

"""User clustering strategies for index compression (paper Defs 11-13).

    "The intuitive idea is to cluster users according their social
    connections and activities such that score estimations can be done
    accurately without blowing up the index size.  There are three main
    strategies: network-based, behavior-based and hybrid."

The definitions give *pairwise* predicates (Jaccard ≥ θ), which are not
transitive; like the VLDB'08 system the paper builds on, we realise them
with deterministic greedy **leader clustering**: users are processed in a
canonical order, each joining the first cluster whose leader satisfies the
predicate with them, else founding a new cluster.  "Each user falls into a
single cluster" (paper) holds by construction.

θ sweeps move clusterings between the two extremes: θ > 1 degenerates to
one-cluster-per-user (the exact index), θ = 0 merges everyone (a global
index).  The trade-off bench exploits exactly that dial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.similarity import jaccard
from repro.core import Id
from repro.indexing.scores import TaggingData


@dataclass
class Clustering:
    """A partition of users into clusters."""

    strategy: str
    theta: float
    clusters: list[list[Id]] = field(default_factory=list)
    cluster_of: dict[Id, int] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the partition."""
        return len(self.clusters)

    def members(self, cluster_index: int) -> list[Id]:
        """Users in a cluster."""
        return self.clusters[cluster_index]

    def is_partition_of(self, users: list[Id]) -> bool:
        """Validation helper: every user in exactly one cluster."""
        seen: set[Id] = set()
        for cluster in self.clusters:
            for user in cluster:
                if user in seen:
                    return False
                seen.add(user)
        return seen == set(users)


Predicate = Callable[[Id, Id], bool]


def _greedy_leader_clustering(
    users: list[Id], predicate: Predicate, strategy: str, theta: float
) -> Clustering:
    """Deterministic leader clustering under a pairwise predicate."""
    clustering = Clustering(strategy=strategy, theta=theta)
    leaders: list[Id] = []
    for user in sorted(users, key=repr):
        placed = False
        for index, leader in enumerate(leaders):
            if predicate(user, leader):
                clustering.clusters[index].append(user)
                clustering.cluster_of[user] = index
                placed = True
                break
        if not placed:
            leaders.append(user)
            clustering.clusters.append([user])
            clustering.cluster_of[user] = len(leaders) - 1
    return clustering


def network_clustering(data: TaggingData, theta: float) -> Clustering:
    """Definition 11: same cluster iff
    ``|network(u1) ∩ network(u2)| / |network(u1) ∪ network(u2)| ≥ θ``."""

    def predicate(u1: Id, u2: Id) -> bool:
        return jaccard(
            data.network.get(u1, set()), data.network.get(u2, set())
        ) >= theta

    return _greedy_leader_clustering(data.users, predicate, "network", theta)


def behavior_clustering(data: TaggingData, theta: float) -> Clustering:
    """Definition 12: same cluster iff
    ``|items(u1) ∩ items(u2)| / |items(u1) ∪ items(u2)| ≥ θ``."""

    def predicate(u1: Id, u2: Id) -> bool:
        return jaccard(
            data.items.get(u1, set()), data.items.get(u2, set())
        ) >= theta

    return _greedy_leader_clustering(data.users, predicate, "behavior", theta)


def hybrid_clustering(data: TaggingData, theta: float) -> Clustering:
    """Definition 13: same cluster iff **all** pairs (v1, v2) of their
    network members tag similarly:
    ``|items(v1) ∩ items(v2)| / |items(v1) ∪ items(v2)| ≥ θ`` for all
    v1 ∈ network(u1), v2 ∈ network(u2).

    The paper leaves exploring this strategy to future work; we implement
    it literally (the ∀∀ quantification makes it the most conservative of
    the three — clusters are small but score bounds are tight).
    """

    def predicate(u1: Id, u2: Id) -> bool:
        net1 = data.network.get(u1, set())
        net2 = data.network.get(u2, set())
        if not net1 or not net2:
            return False
        for v1 in net1:
            items1 = data.items.get(v1, set())
            for v2 in net2:
                if jaccard(items1, data.items.get(v2, set())) < theta:
                    return False
        return True

    return _greedy_leader_clustering(data.users, predicate, "hybrid", theta)


def exact_clustering(data: TaggingData) -> Clustering:
    """The degenerate one-user-per-cluster partition (= the exact index)."""
    clustering = Clustering(strategy="exact", theta=float("inf"))
    for index, user in enumerate(sorted(data.users, key=repr)):
        clustering.clusters.append([user])
        clustering.cluster_of[user] = index
    return clustering


STRATEGIES: dict[str, Callable[[TaggingData, float], Clustering]] = {
    "network": network_clustering,
    "behavior": behavior_clustering,
    "hybrid": hybrid_clustering,
}

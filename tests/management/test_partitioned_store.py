"""PartitionedGraphStore ≡ GraphStore: differential parity + shard accounting.

The partitioned store must be indistinguishable from the monolithic one
through the entire public read surface — that is what lets DataManager,
sync, and the integrator run unchanged on top of either.  The parity
tests drive both stores through identical write sequences (factory
graphs plus randomized deletes) and compare every read path; the
accounting tests pin the per-shard bookkeeping the plan layer reads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import factories
from repro.core import Link, Node
from repro.errors import DanglingLinkError, ManagementError, UnknownNodeError
from repro.management import (
    DataManager,
    GraphStore,
    PartitionedGraphStore,
    shard_of,
)

SHARD_COUNTS = (1, 2, 7)


def load(store, graph, origin="local"):
    for node in graph.nodes():
        store.upsert_node(node, origin=origin)
    for link in graph.links():
        store.upsert_link(link, origin=origin)


def assert_stores_equivalent(mono: GraphStore, part: PartitionedGraphStore):
    assert part.num_nodes == mono.num_nodes
    assert part.num_links == mono.num_links
    assert part.snapshot().same_as(mono.snapshot())
    # merged statistics equal the monolithic ones
    assert part.graph_stats() == mono.graph_stats()
    merged = part.stats
    assert merged.node_types == mono.stats.node_types
    assert merged.link_types == mono.stats.link_types
    # type scans come back in the same order
    for type_name in set(mono.stats.node_types) | {"missing-type"}:
        assert [n.id for n in part.nodes_of_type(type_name)] == [
            n.id for n in mono.nodes_of_type(type_name)
        ]
    for type_name in set(mono.stats.link_types):
        assert [l.id for l in part.links_of_type(type_name)] == [
            l.id for l in mono.links_of_type(type_name)
        ]
    # per-record reads agree everywhere
    for node in mono.snapshot().nodes():
        assert part.node(node.id) == mono.node(node.id)
        assert part.has_node(node.id)
        assert sorted(l.id for l in part.out_links(node.id)) == sorted(
            l.id for l in mono.out_links(node.id)
        )
        assert sorted(l.id for l in part.in_links(node.id)) == sorted(
            l.id for l in mono.in_links(node.id)
        )
        assert part.origin_of("node", node.id) == mono.origin_of(
            "node", node.id
        )


@st.composite
def store_workloads(draw):
    """A factory graph plus a randomized delete schedule."""
    graph = factories.social_site_graph(
        num_users=draw(st.integers(min_value=1, max_value=7)),
        num_items=draw(st.integers(min_value=1, max_value=9)),
        friends_per_user=draw(st.integers(min_value=0, max_value=3)),
        acts_per_user=draw(st.integers(min_value=0, max_value=4)),
        with_sim_links=draw(st.booleans()),
    )
    link_ids = sorted(graph.link_ids(), key=repr)
    node_ids = sorted(graph.node_ids(), key=repr)
    drop_links = draw(st.lists(st.sampled_from(link_ids), max_size=4,
                               unique=True)) if link_ids else []
    drop_nodes = draw(st.lists(st.sampled_from(node_ids), max_size=2,
                               unique=True))
    return graph, drop_links, drop_nodes


class TestDifferentialParity:
    @settings(max_examples=40, deadline=None)
    @given(store_workloads(), st.sampled_from(SHARD_COUNTS))
    def test_write_read_delete_parity(self, workload, shards):
        graph, drop_links, drop_nodes = workload
        mono = GraphStore(indexed_attributes=("name",))
        part = PartitionedGraphStore(indexed_attributes=("name",),
                                     num_shards=shards)
        load(mono, graph)
        load(part, graph)
        for link_id in drop_links:
            if mono.has_link(link_id):
                mono.delete_link(link_id)
                part.delete_link(link_id)
        for node_id in drop_nodes:
            if mono.has_node(node_id):
                mono.delete_node(node_id)
                part.delete_node(node_id)
        assert_stores_equivalent(mono, part)

    @settings(max_examples=20, deadline=None)
    @given(store_workloads(), st.sampled_from((2, 7)))
    def test_attribute_index_scatter(self, workload, shards):
        graph, _, _ = workload
        mono = GraphStore(indexed_attributes=("name",))
        part = PartitionedGraphStore(indexed_attributes=("name",),
                                     num_shards=shards)
        load(mono, graph)
        load(part, graph)
        names = {node.value("name") for node in graph.nodes()}
        for name in names:
            assert [n.id for n in part.find_nodes("name", name)] == [
                n.id for n in mono.find_nodes("name", name)
            ]

    def test_datamanager_runs_unchanged_on_partitions(self):
        graph = factories.tiny_travel_graph()
        flat = DataManager()
        sharded = DataManager(shards=4)
        flat.load_graph(graph)
        sharded.load_graph(graph)
        assert sharded.num_shards == 4 and flat.num_shards == 1
        assert sharded.graph().same_as(flat.graph())
        assert sharded.statistics() == flat.statistics()
        assert sharded.provenance_summary() == flat.provenance_summary()


class TestShardAccounting:
    def test_nodes_route_by_stable_hash(self):
        store = PartitionedGraphStore(num_shards=5)
        graph = factories.social_site_graph()
        load(store, graph)
        for index, shard in enumerate(store.shards):
            for node_id in list(shard._nodes):
                assert shard_of(node_id, 5) == index
        # links live in their source node's shard
        for link in graph.links():
            home = store._link_home[link.id]
            assert home == store.shard_index(link.src)

    def test_per_shard_stats_sum_to_the_site_view(self):
        store = PartitionedGraphStore(num_shards=3)
        load(store, factories.social_site_graph())
        per_shard = store.shard_stats()
        assert len(per_shard) == 3
        assert sum(s.writes for s in per_shard) == store.stats.writes
        total = sum((+s.node_types for s in per_shard),
                    start=type(per_shard[0].node_types)())
        assert total == store.stats.node_types

    def test_shard_snapshot_is_the_partition_population(self):
        store = PartitionedGraphStore(num_shards=4)
        load(store, factories.social_site_graph())
        seen = set()
        for index in range(4):
            view = store.shard_snapshot(index)
            assert view.is_null_graph()
            for node_id in view.node_ids():
                assert store.shard_index(node_id) == index
            seen |= view.node_ids()
        assert seen == store.snapshot().node_ids()

    def test_cross_shard_links_delete_cleanly(self):
        store = PartitionedGraphStore(num_shards=2)
        # find two ids hashing to different shards
        a, b = None, None
        for i in range(100):
            if shard_of(f"n{i}", 2) == 0 and a is None:
                a = f"n{i}"
            if shard_of(f"n{i}", 2) == 1 and b is None:
                b = f"n{i}"
        store.upsert_node(Node(a, type="user"))
        store.upsert_node(Node(b, type="item"))
        store.upsert_link(Link("x", a, b, type="act"))
        assert [l.id for l in store.in_links(b)] == ["x"]
        store.delete_node(a)  # cascades across the shard boundary
        assert not store.has_link("x")
        assert list(store.in_links(b)) == []

    def test_invariants_enforced_across_shards(self):
        store = PartitionedGraphStore(num_shards=3)
        store.upsert_node(Node("u", type="user"))
        with pytest.raises(DanglingLinkError):
            store.upsert_link(Link("l", "u", "ghost", type="act"))
        store.upsert_node(Node("i", type="item"))
        store.upsert_link(Link("l", "u", "i", type="act"))
        with pytest.raises(ManagementError):
            store.upsert_link(Link("l", "i", "u", type="act"))
        with pytest.raises(UnknownNodeError):
            store.delete_node("ghost")
        with pytest.raises(ManagementError):
            PartitionedGraphStore(num_shards=0)

"""Fixture: the execute path mutates its *input* graph (P001).

``materialize`` builds a fresh local graph and mutates that — the
fresh-local rule must keep it silent.
"""


class Graph:
    def __init__(self):
        self.rows = []

    def add_node(self, row):
        self.rows.append(row)


def scatter(graph, rows):
    for row in rows:
        graph.add_node(row)  # P001: graph is shared input, not local
    return graph


def materialize(rows):
    out = Graph()
    for row in rows:
        out.add_node(row)  # fresh local: allowed
    return out

"""Batch-key normalisation: exactly the plan-shaping fields survive.

The key must agree with the plan compiler forever — which is why it *is*
the request normalised to plan-shaping fields, not a parallel fingerprint.
These tests pin the contract: every execution-only field is erased, every
plan-shaping field separates keys.
"""

from __future__ import annotations

from repro.api import SearchRequest, encode_cursor
from repro.serve.batching import (
    EXECUTION_ONLY_FIELDS,
    batch_key,
    describe_key,
)
from repro.workloads import ALEXIA, JOHN

BASE = SearchRequest(user_id=JOHN, text="denver attractions")


class TestExecutionFieldsErased:
    def test_k_does_not_split_keys(self):
        assert batch_key(BASE) == batch_key(BASE.replace(k=5))

    def test_pagination_does_not_split_keys(self):
        variants = [
            BASE.replace(page=3),
            BASE.replace(page_size=2),
            BASE.replace(cursor=encode_cursor(4, 2, epoch=0)),
        ]
        assert {batch_key(v) for v in variants} == {batch_key(BASE)}

    def test_grouping_and_explain_do_not_split_keys(self):
        assert batch_key(BASE.replace(grouping="social")) == batch_key(BASE)
        assert batch_key(BASE.replace(explain=True)) == batch_key(BASE)

    def test_every_listed_field_is_actually_erased(self):
        """The documented tuple and the implementation cannot drift."""
        key = batch_key(
            BASE.replace(
                k=7, grouping="topical", page=2, page_size=3,
                cursor=encode_cursor(3, 3, epoch=0), explain=True,
            )
        )
        assert key == batch_key(BASE)
        for field_name in EXECUTION_ONLY_FIELDS:
            value = getattr(key, field_name)
            assert value in (None, 1, False), (field_name, value)


class TestPlanShapingFieldsKept:
    def test_user_splits_keys(self):
        assert batch_key(BASE) != batch_key(BASE.replace(user_id=ALEXIA))

    def test_text_splits_keys(self):
        assert batch_key(BASE) != batch_key(BASE.replace(text="museum"))

    def test_overrides_split_keys(self):
        assert batch_key(BASE) != batch_key(BASE.replace(alpha=0.5))
        assert batch_key(BASE) != batch_key(BASE.replace(strategy="cf"))
        assert batch_key(BASE) != batch_key(BASE.replace(use_index=False))

    def test_structural_splits_keys(self):
        structured = BASE.replace(structural={"type": "destination"})
        assert batch_key(BASE) != batch_key(structured)

    def test_key_is_hashable_and_stable(self):
        assert hash(batch_key(BASE)) == hash(batch_key(BASE.replace(k=9)))
        assert {batch_key(BASE): "x"}[batch_key(BASE.replace(page=2))] == "x"


class TestDescribeKey:
    def test_label_carries_the_shape(self):
        key = batch_key(BASE.replace(alpha=0.25, strategy="cf"))
        label = describe_key(key)
        assert repr(JOHN) in label
        assert "denver attractions" in label
        assert "alpha=0.25" in label
        assert "strategy=cf" in label

    def test_recommendation_label_is_just_the_user(self):
        label = describe_key(batch_key(SearchRequest(user_id=JOHN)))
        assert label == f"u={JOHN!r}"

"""Exception hierarchy for the SocialScope reproduction.

Every error raised by :mod:`repro` derives from :class:`SocialScopeError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between graph-model misuse, algebra misuse,
and layer-specific failures.
"""

from __future__ import annotations


class SocialScopeError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(SocialScopeError):
    """Structural misuse of a social content graph (dangling links, dup ids)."""


class UnknownNodeError(GraphError):
    """A node id was referenced that is not present in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class UnknownLinkError(GraphError):
    """A link id was referenced that is not present in the graph."""

    def __init__(self, link_id: object) -> None:
        super().__init__(f"unknown link id: {link_id!r}")
        self.link_id = link_id


class DuplicateIdError(GraphError):
    """An id was added twice with conflicting payloads."""


class DanglingLinkError(GraphError):
    """A link references an endpoint node that the graph does not contain."""

    def __init__(self, link_id: object, node_id: object) -> None:
        super().__init__(
            f"link {link_id!r} references missing endpoint node {node_id!r}"
        )
        self.link_id = link_id
        self.node_id = node_id


class ConditionError(SocialScopeError):
    """A selection/aggregation condition is malformed."""


class AlgebraError(SocialScopeError):
    """An algebra operator was applied with invalid parameters."""


class CompositionError(AlgebraError):
    """Composition function or directional condition misuse."""


class AggregationError(AlgebraError):
    """Aggregation function or parameter misuse."""


class PatternError(AlgebraError):
    """A graph pattern is malformed or cannot be evaluated."""


class ExpressionError(AlgebraError):
    """An algebra expression tree is malformed."""


class QueryError(SocialScopeError):
    """A user query is malformed or cannot be interpreted."""


class RestartCursorError(QueryError):
    """A pagination cursor was minted by a previous site incarnation.

    Cursors embed the refresh epoch *and* a boot token (the store's
    restart generation).  After recovery the epoch counters continue from
    the persisted values, but a cursor minted before the restart points
    into a ranking computed by a process that no longer exists — it is
    rejected with this typed error so clients can distinguish "re-page
    from the start" (here) from a mid-session refresh
    (``QueryError: stale cursor``)."""


class DiscoveryError(SocialScopeError):
    """The Information Discovery layer could not produce an MSG."""


class ManagementError(SocialScopeError):
    """Content Management layer failure (storage, integration, sync)."""


class PersistenceError(ManagementError):
    """Durable-storage failure: unreadable snapshot, bad manifest, version
    or checksum mismatch."""


class WalCorruptedError(PersistenceError):
    """A write-ahead-log segment holds a corrupt record *before* valid
    ones — not a torn tail (torn tails truncate cleanly on recovery),
    but mid-file damage recovery must not paper over."""


class PermissionDeniedError(ManagementError):
    """A remote site rejected an access for lack of user permission."""

    def __init__(self, site: str, user_id: object, scope: str) -> None:
        super().__init__(
            f"site {site!r} denied access to {scope!r} data of user {user_id!r}"
        )
        self.site = site
        self.user_id = user_id
        self.scope = scope


class ServeError(SocialScopeError):
    """Serving-gateway misuse (bad configuration, submit while stopped).

    Note the *overload* outcome is not an exception: shedding is an
    expected, typed response (:class:`repro.serve.admission.Overloaded`)
    the gateway returns, because under heavy traffic overload is part of
    normal operation, not a failure of the caller's code.
    """


class DeadlineError(SocialScopeError):
    """A cooperative deadline check fired inside plan execution.

    Raised between physical operators and between per-shard subtasks
    when the request's deadline has passed; the serving layer catches it
    and converts to the typed ``DeadlineExceeded`` shed value (the
    *outcome* is a value, like ``Overloaded`` — the exception exists
    only to unwind the executing plan promptly).
    """

    def __init__(self, stage: str, elapsed_s: float) -> None:
        super().__init__(
            f"deadline exceeded at {stage!r} after {elapsed_s:.3f}s"
        )
        self.stage = stage
        self.elapsed_s = elapsed_s


class IndexError_(SocialScopeError):
    """Indexing layer failure (the trailing underscore avoids shadowing
    the builtin :class:`IndexError`)."""


class PresentationError(SocialScopeError):
    """Information Presentation layer failure."""

"""The query planner: compile-and-execute service over one live graph.

One :class:`QueryPlanner` is owned by each
:class:`~repro.discovery.discoverer.InformationDiscoverer` (and therefore
by each :class:`~repro.api.session.Session`).  It holds the pieces
compilation needs and serving must keep coherent:

* **statistics** — :class:`~repro.core.stats.GraphStats` with the term
  histogram, collected lazily once per graph generation, carrying the
  planner's :class:`~repro.core.stats.CardinalityFeedback` so executed
  queries sharpen future estimates;
* **the plan cache** — by default the *process-wide*
  :class:`~repro.plan.cache.SharedPlanCache`: compiled plans are keyed by
  (planner scope, structural key, access), stamped with the generation,
  and anchored to the live graph object, so sessions serving the same
  graph amortize compilation across each other while any graph change
  (Data-Manager write, analysis, remote attach) still invalidates at
  once;
* **the index binding** — where the semantic inverted index lives and
  which population it covers, attached by the session;
* **partitions and the pool** — when the backing store is sharded the
  session attaches the shard count; the planner then partitions its live
  graph into per-shard views (lazily, per generation) for
  :class:`~repro.plan.physical.ShardedScanOp`, and drives large plans
  through the shared worker pool (:mod:`repro.plan.parallel`).

``semantic_candidates`` is the serving entry point: it builds the σN plan
for a parsed query's scope condition and runs it through the compiler,
which is how both ``Session.run`` and
``InformationDiscoverer.discover_query`` execute every query.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping

from repro.core.expr import (
    CombineScoresE,
    ConnectionBasisE,
    Expr,
    SelectNodesE,
    SocialScoreE,
    input_graph,
    plan_key,
)
from repro.core.graph import SocialContentGraph
from repro.core.resilience import CircuitBreaker
from repro.core.stats import CardinalityFeedback, GraphStats
from repro.core.partition import shard_of
from repro.errors import DeadlineError
from repro.plan.cache import PlanCache, ResultMemo, shared_plan_cache
from repro.plan.columnar import cut_columnar_views
from repro.plan.compiler import CostModel, IndexBinding, compile_plan
from repro.plan.parallel import (
    ProcessBackend,
    ProcessShardPool,
    WorkerPool,
    shared_worker_pool,
)
from repro.plan.physical import (
    AttrIndexScanOp,
    FusedSocialCombineOp,
    PhysicalPlan,
    PlanExecution,
    ShardView,
)

#: Name under which the planner binds its live graph in plan environments.
BASE_GRAPH = "G"

#: Execution-parallelism modes a planner can be pinned to.
#: ``"auto"`` cost-gates the thread pool and escalates to the process
#: backend only past the cost model's row floor; ``"threads"`` is the
#: cost-gated thread pool with processes pinned off; ``"processes"``
#: forces the process backend (degrading per execution if workers fail);
#: ``"force"`` drives every plan through the thread pool; ``"never"``
#: stays sequential.
PARALLEL_MODES = ("auto", "never", "force", "threads", "processes")


class QueryPlanner:
    """Compiles logical plans against a live graph, with a plan cache.

    *cache* defaults to the process-wide shared cache; pass a private
    :class:`PlanCache` to opt a planner out of cross-session sharing.
    *shards* > 1 enables partition-scattered scans; *parallelism* pins the
    executor choice (``"auto"`` lets the cost model's threshold decide
    per plan).
    """

    def __init__(
        self,
        graph: SocialContentGraph,
        cost_model: CostModel | None = None,
        cache: PlanCache | None = None,
        shards: int = 1,
        parallelism: str = "auto",
        pool: WorkerPool | None = None,
        feedback: CardinalityFeedback | None = None,
    ):
        if parallelism not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallelism {parallelism!r}; have {PARALLEL_MODES}"
            )
        self.graph = graph
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.cache = cache if cache is not None else shared_plan_cache()
        self.shards = max(1, shards)
        self.parallelism = parallelism
        self._pool = pool
        #: execution-observed correction factors, surviving refreshes so
        #: repeated queries keep sharpening the cost model
        self.feedback = (
            feedback if feedback is not None else CardinalityFeedback()
        )
        #: bumped on every refresh/attach — the cache's generation stamp
        self.generation = 0
        self._stats: GraphStats | None = None
        self._stats_token: tuple | None = None
        self._index: IndexBinding | None = None
        #: attributes the planner keeps per-shard value postings for (the
        #: Data Manager's registered attribute indexes, attached by the
        #: session) — the compiler's attribute-index eligibility set
        self.indexed_attrs: frozenset[str] = frozenset()
        #: lazily built per-shard *columnar* views of the live graph
        #: (node rows + link rows + lazy columns/buckets/postings),
        #: stamped with the generation they were cut under
        self._shard_views: tuple[ShardView, ...] | None = None
        self._shard_generation = -1
        #: lazily built §6.2 endorsement indexes, keyed by variant and
        #: stamped with the generation they were built under
        self._network_indexes: dict[str, Any] = {}
        self._network_generation = -1
        #: generation-stamped memo of deterministic sub-plan results
        #: (connection bases, σN selections): repeated queries skip
        #: re-deriving them; bounded by entries *and* estimated bytes
        self._subplan_results = ResultMemo()
        self._subplan_generation = -1
        #: lazily spawned process backend (``parallelism="processes"`` /
        #: big-scatter ``"auto"`` executions); planner-owned so the slab
        #: version token is this planner's ``(generation, epoch)`` stamp
        self._process_pool: "ProcessShardPool | None" = None
        #: the ladder's threads→sequential step: pooled-execution
        #: failures trip it and later plans run sequentially until the
        #: cooldown's recovery probe succeeds
        self.pool_breaker = CircuitBreaker(
            "worker_pool", failure_threshold=2, cooldown_s=1.0
        )
        #: the attr-index→columnar-scan step: posting-path faults trip
        #: it and the provider degrades to ``None`` (the op falls back
        #: to the scan compute) until a probe succeeds
        self.attr_breaker = CircuitBreaker(
            "attr_index", failure_threshold=2, cooldown_s=1.0
        )
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def refresh(self, graph: SocialContentGraph) -> None:
        """Point at a (possibly new) graph; drops stats and stales all plans.

        Nothing is recomputed here — statistics rebuild lazily on the next
        compile, shard views re-cut on the next sharded execution, and
        stale cache entries die on lookup, so back-to-back refreshes cost
        nothing (the session's dirty-flag discipline).
        """
        with self._lock:
            self.graph = graph
            self._stats = None
            self._shard_views = None
            self.generation += 1

    def attach_index(
        self,
        item_type: str,
        provider: Callable[[], Any],
        scorer_provider: Callable[[], Any] | None = None,
    ) -> None:
        """Declare a semantic index over *item_type* nodes of the graph.

        *provider* materialises the index lazily (called only when a plan
        actually takes the index path); *scorer_provider* exposes the
        scorer shared with the scan path for the parity check.  Attaching
        changes what plans compile to, so it bumps the generation.
        """
        with self._lock:
            self._index = IndexBinding(
                item_type=item_type,
                provider=provider,
                scorer_provider=scorer_provider,
            )
            self.generation += 1

    def attach_shards(self, num_shards: int) -> None:
        """Declare that the base graph partitions into *num_shards* views.

        Changes what plans compile to (large scans lower to the scattered
        form), so it bumps the generation.
        """
        with self._lock:
            self.shards = max(1, num_shards)
            self._shard_views = None
            self.generation += 1

    def attach_attribute_index(self, attributes: Iterable[str]) -> None:
        """Declare attribute-value postings over the named attributes.

        The attributes come from the Data Manager's registered attribute
        indexes; the *postings themselves* are cut per shard view from
        the planner's live graph (so analysis-derived nodes participate
        and in-place writes invalidate through the usual
        ``(generation, mutation_epoch)`` stamp).  Attaching changes what
        plans compile to, so it bumps the generation.
        """
        with self._lock:
            self.indexed_attrs = frozenset(attributes)
            self.generation += 1

    @property
    def index_binding(self) -> IndexBinding | None:
        return self._index

    @property
    def pool(self) -> WorkerPool:
        """The worker pool pooled executions run on (shared by default)."""
        if self._pool is None:
            self._pool = shared_worker_pool()
        return self._pool

    @property
    def process_pool(self) -> ProcessShardPool:
        """The planner's process-worker pool (spawned lazily on first use)."""
        with self._lock:
            if self._process_pool is None:
                self._process_pool = ProcessShardPool()
            return self._process_pool

    def close(self) -> None:
        """Release planner-owned executor resources (process workers)."""
        with self._lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown()

    def _process_backend(
        self, plan: PhysicalPlan, mode: str,
        env: Mapping[str, SocialContentGraph] | None,
    ) -> ProcessBackend | None:
        """The process backend for one execution, or ``None`` (threads).

        Eligibility: the mode asks for processes (explicitly, or
        ``"auto"`` with the estimated scatter population over the cost
        model's ``process_min_rows`` floor), the plan scatters at least
        one scan whose program ships whole (residual-free or
        residual-picklable — covered scans don't disqualify), the
        environment binds the planner's own graph, and the pool is not
        broken.  The backend carries this planner's current
        ``(generation, mutation_epoch)`` token, so a mutated graph
        re-ships fresh slabs before any worker scans.
        """
        if mode not in ("processes", "auto"):
            return None
        if env is not None:  # foreign graphs never reach worker residency
            return None
        if not plan.uses_sharded_scan or not plan.process_shippable:
            return None
        if mode == "auto":
            stats = self.stats
            if (stats.num_nodes * self.shards
                    < self.cost_model.process_min_rows):
                return None
        pool = self.process_pool
        # the breaker decides: closed → go, open → threads, half-open →
        # this execution is the recovery probe (dead workers respawn on
        # the re-ship; success re-closes the circuit)
        if not pool.breaker.allow():
            return None
        views = self.shard_views(self.graph)
        if views is None:
            return None
        return ProcessBackend(pool, self._derived_token(), views)

    def _derived_token(self) -> tuple:
        """Validity stamp for every planner-local derived structure.

        Statistics, shard views, network indexes and the sub-plan result
        memo are all functions of the live graph's *content*: they must
        die both on :meth:`refresh`/attach (the generation) and on any
        in-place mutation of the graph object (the mutation epoch) — the
        plan cache already validates against the epoch, and a recompiled
        plan reading a pre-write memo or shard view would silently serve
        stale records.
        """
        return (self.generation, self.graph.mutation_epoch)

    # -- partitioned views ----------------------------------------------------

    def shard_views(
        self, graph: SocialContentGraph
    ) -> tuple[ShardView, ...] | None:
        """Per-shard *columnar* scatter views of *graph*.

        Views are cut from the *planner's* live graph (not the physical
        store) so analysis-derived nodes partition too; requests for any
        other graph return ``None`` and the operator degrades to a full
        scan rather than scanning the wrong population.  One pass per
        graph generation pays for every columnar scan of that generation;
        the views' derived columns — type buckets, attribute columns,
        term and value postings — build lazily inside the views and live
        just as long.  With ``shards == 1`` this is the single monolithic
        columnar view.
        """
        if graph is not self.graph:
            return None
        with self._lock:
            if self._shard_generation != self._derived_token() or \
                    self._shard_views is None:
                self._shard_views = cut_columnar_views(
                    graph, self.shards, shard_of
                )
                self._shard_generation = self._derived_token()
            return self._shard_views

    def attr_posting_candidates(
        self, graph: SocialContentGraph, att: str, value: Any
    ) -> list | None:
        """Candidate records for ``att = value`` from the shard postings.

        The execution-time provider behind :class:`AttrIndexScanOp`:
        concatenates the per-shard sorted posting lists of the value.
        Returns ``None`` — degrading the operator to a scan — when the
        graph is not the planner's live graph, the attribute was never
        registered, or the attr-index breaker is open (repeated
        posting-path faults demoted this access path to the columnar
        scan until a recovery probe succeeds).  A posting-path fault
        raises — the operator catches it, degrades *this* execution, and
        the breaker decides about the next one.
        """
        if att not in self.indexed_attrs:
            return None
        if not self.attr_breaker.allow():
            return None
        views = self.shard_views(graph)
        if views is None:
            return None
        candidates: list = []
        try:
            for view in views:
                candidates.extend(view.attr_posting_nodes(att, value))
        except Exception:
            self.attr_breaker.record_failure()
            raise
        self.attr_breaker.record_success()
        return candidates

    def network_index(self, variant: str) -> Any:
        """The §6.2 endorsement index of the live graph (lazy, cached).

        ``variant`` is ``"exact"`` (per-user lists) or ``"clustered"``
        (per-cluster upper-bound lists).  Indexes rebuild lazily after any
        generation bump, so a cached physical plan re-executing after a
        refresh can never read stale postings.
        """
        with self._lock:
            if self._network_generation != self._derived_token():
                self._network_indexes.clear()
                self._network_generation = self._derived_token()
            index = self._network_indexes.get(variant)
            if index is None:
                from repro.indexing.endorsement import (
                    clustered_endorsement_index,
                    exact_endorsement_index,
                )

                if variant == "clustered":
                    index = clustered_endorsement_index(self.graph)
                else:
                    index = exact_endorsement_index(self.graph)
                self._network_indexes[variant] = index
        return index

    @property
    def stats(self) -> GraphStats:
        """Term-aware statistics of the current graph (lazy, per token)."""
        token = self._derived_token()
        if self._stats is None or self._stats_token != token:
            with self._lock:
                if self._stats is None or self._stats_token != token:
                    stats = GraphStats.of(
                        self.graph, with_terms=True,
                        indexed_attrs=sorted(self.indexed_attrs),
                    )
                    stats.feedback = self.feedback
                    self._stats = stats
                    self._stats_token = token
        return self._stats

    # -- compilation ----------------------------------------------------------

    def _cache_scope(self) -> tuple:
        """The shared-cache namespace everything this planner compiles in.

        Everything a compiled plan depends on beyond the structural key
        and the generation: the graph identity (also enforced as the weak
        anchor), the frozen cost model, the index binding's coverage, and
        the shard count.  Two planners with equal scopes compile
        byte-equivalent plans for equal keys — which is exactly when
        sharing is safe.
        """
        return (
            id(self.graph),
            self.cost_model,
            self._index.item_type if self._index is not None else None,
            self.shards,
            self.indexed_attrs,
        )

    def compile(self, expr: Expr, access: str = "auto") -> tuple[PhysicalPlan, bool]:
        """The compiled plan for *expr*, and whether the cache served it.

        Cache entries are stamped with the *graph's* mutation epoch, not
        this planner's generation counter: every planner serving the same
        graph object agrees on the epoch, so sessions share hot plans
        even when their private refresh histories diverge — while any
        in-place graph write still invalidates instantly.  (The planner
        generation keeps governing the planner-local derived state:
        statistics, shard views, network indexes, the sub-plan memo.)
        """
        structural_key = plan_key(expr)
        key = (self._cache_scope(), structural_key, access)
        epoch = self.graph.mutation_epoch
        cached = self.cache.get(key, epoch, anchor=self.graph)
        if cached is not None:
            return cached, True
        plan = compile_plan(
            expr,
            self.stats,
            index=self._index,
            access=access,
            cost_model=self.cost_model,
            key=structural_key,
            shards=self.shards,
            indexed_attrs=self.indexed_attrs,
        )
        self.cache.put(key, epoch, plan, anchor=self.graph)
        return plan, False

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        expr: Expr,
        env: Mapping[str, SocialContentGraph] | None = None,
        access: str = "auto",
        parallel: str | None = None,
        topk: int | None = None,
        deadline: float | None = None,
    ) -> PlanExecution:
        """Compile (or fetch) and run a plan against the live graph.

        *parallel* overrides the planner's pinned mode for this one
        execution (the differential harness uses ``"force"``/``"never"``
        to hold both executors to identical results).  *topk* bounds the
        ranking stage's sorted output (an execution parameter — cached
        plans serve any k).  *deadline* is an absolute monotonic
        timestamp the execution's cooperative checks enforce.

        Executor faults walk the degradation ladder, never fail the
        query: the process backend's breaker already degrades
        processes→threads, and a pooled execution that *raises* is
        retried sequentially here (operators are side-effect-free, so
        the retry is safe), tripping ``pool_breaker`` so later plans
        skip the pool until its recovery probe succeeds.  Deadline
        expiry is the exception — it propagates, retrying would only
        burn more of a budget that is already gone.
        """
        plan, cache_hit = self.compile(expr, access)
        provider = self._index.provider if self._index is not None else None
        mode = parallel if parallel is not None else self.parallelism
        if mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallelism {mode!r}; have {PARALLEL_MODES}"
            )
        notes: list[str] = []
        if mode != "never" and not self.pool_breaker.allow():
            notes.append("pool:threads→sequential")
            mode = "never"
        # the sub-plan memo assumes the default environment: a custom
        # env may bind G to a different graph than the memo was cut on
        run_env = env if env is not None else {BASE_GRAPH: self.graph}
        result_cache = self._subplan_cache() if env is None else None

        def attempt(run_mode: str) -> PlanExecution:
            return plan.execute(
                run_env,
                index_provider=provider,
                network_provider=self.network_index,
                shard_provider=self.shard_views,
                attr_provider=self.attr_posting_candidates,
                pool=self.pool if run_mode != "never" else None,
                parallel=run_mode,
                parallel_min_cost=self.cost_model.parallel_min_cost,
                process_backend=self._process_backend(plan, run_mode, env),
                result_cache=result_cache,
                topk=topk,
                deadline=deadline,
                resilience_notes=tuple(notes),
            )

        try:
            execution = attempt(mode)
        except DeadlineError:
            raise
        except Exception:
            if mode == "never":
                raise
            self.pool_breaker.record_failure()
            notes.append("pool:threads→sequential")
            execution = attempt("never")
        else:
            if mode != "never":
                self.pool_breaker.record_success()
        execution.cache_hit = cache_hit
        if not plan.feedback_observed:
            # Feedback rides on fresh plans, not on every hot-path hit:
            # each compiled plan's first execution reports its actuals,
            # and the correction reaches the cost model at the next
            # (re)compile.  The marker lives on the plan object itself —
            # an id()-keyed set would confuse a recycled address for an
            # already-observed plan.
            plan.feedback_observed = True
            self._observe(plan, execution)
        return execution

    def _subplan_cache(self) -> ResultMemo:
        """The token-stamped sub-plan result memo (entry- and byte-bound).

        The memo's own LRU handles the running budget; a stale generation
        (refresh, in-place write) *rebinds* a fresh memo rather than
        clearing in place — an in-flight execution still holds the old
        object and may write pre-invalidation results into it, which must
        land in the orphan, never in the memo new-generation queries read.
        """
        with self._lock:
            if self._subplan_generation != self._derived_token():
                self._subplan_results = ResultMemo()
                self._subplan_generation = self._derived_token()
            return self._subplan_results

    # -- cardinality feedback -------------------------------------------------

    def _observe(self, plan: PhysicalPlan, execution: PlanExecution) -> None:
        """Feed per-operator actuals back into the correction table.

        Base-graph node selections attribute their error to the
        condition's terms (keyword scopes), its type predicates
        (structural scopes), or — on the attribute-index path — the
        posting pair the access choice rested on.  Connection-basis and
        social-stage operators feed the *social* corrections
        (:meth:`CardinalityFeedback.basis_key` /
        :meth:`~CardinalityFeedback.endorse_key`), which is how the
        cost-based strategy picker stops reading raw degree histograms.
        Derived-input selections stay unobserved — they would smear
        upstream errors into the wrong keys.
        """
        from repro.core.expr import InputE

        for op, (actual, _elapsed) in execution.op_actuals.items():
            logical = op.logical
            if isinstance(logical, ConnectionBasisE):
                # minus the meta marker node the basis graph carries
                self.feedback.observe(
                    CardinalityFeedback.basis_key(),
                    max(self.stats.expected_basis_size(), 0.0),
                    max(actual.nodes - 1, 0.0),
                )
                continue
            if isinstance(logical, SocialScoreE) or isinstance(
                op, FusedSocialCombineOp
            ):
                # the stage's links are its endorsement/support edges —
                # the reach the probe-vs-postings choice is priced on
                self.feedback.observe(
                    CardinalityFeedback.endorse_key(),
                    self.stats.expected_endorsements(),
                    actual.links,
                )
                continue
            if not isinstance(logical, SelectNodesE):
                continue
            if not isinstance(logical.child, InputE):
                continue
            estimated = op.estimate(self.stats).nodes
            condition = logical.condition
            if isinstance(op, AttrIndexScanOp):
                # feed back the posting-list length the op gathered — the
                # quantity attr_value_count estimates.  The final result
                # cardinality would misattribute every *other* conjunct's
                # selectivity to the posting estimate and ratchet it down.
                gathered = execution.ctx.attr_postings_gathered.get(id(op))
                if gathered is not None:
                    self.feedback.observe(
                        CardinalityFeedback.attr_key(op.att, op.value),
                        self.stats.attr_value_count(op.att, op.value),
                        gathered,
                    )
            if condition.has_keywords:
                for term in condition.keywords:
                    self.feedback.observe(
                        CardinalityFeedback.term_key(term),
                        estimated, actual.nodes,
                    )
            else:
                for type_name in _condition_type_names(condition):
                    self.feedback.observe(
                        CardinalityFeedback.type_key(type_name, False),
                        estimated, actual.nodes,
                    )

    def semantic_candidates(
        self,
        # a parsed discovery query; typed loosely because the plan layer
        # must not import repro.discovery (layer DAG)
        query: Any,
        item_type: str = "item",
        scorer: Any = None,
        access: str = "auto",
    ) -> PlanExecution:
        """Execute the σN⟨C,S⟩ scoping plan of a parsed query.

        This is the compiled replacement for the hand-written
        ``SemanticRelevance.candidates`` pipeline: the same condition, the
        same scorer, but routed through optimize → lower → (cost-chosen)
        scan or index → profiled execution.
        """
        condition = query.scope_condition(default_type=item_type)
        expr = input_graph(BASE_GRAPH).select_nodes(
            condition, scorer if condition.has_keywords else None
        )
        return self.execute(expr, access=access)

    def discovery_pipeline(
        self,
        query: Any,
        item_type: str = "item",
        scorer: Any = None,
        strategy: str = "friends",
        sim_threshold: float = 0.1,
        act_type: str = "visit",
        alpha: float = 0.5,
        drop_zero: bool = True,
        min_fit: float = 0.15,
        min_qualified: int = 2,
        max_experts: int = 10,
        access: str = "auto",
        parallel: str | None = None,
        limit: int | None = None,
        deadline: float | None = None,
    ) -> PlanExecution:
        """Compile and run the *whole* discovery pipeline as one plan.

        semantic σN⟨C,S⟩ candidates → connection basis → social scoring
        (strategy-parameterised; ``"auto"`` lets the compiler pick from
        statistics) → α-combination.  The candidate sub-plan is shared
        between the scoring and combination stages (a DAG, as in Example
        4), so it executes once; EXPLAIN covers every operator of the
        pipeline and the plan cache covers the full query shape.  *limit*
        pushes the caller's result budget into the ranking stage (top-k
        instead of a full sort) without entering the plan shape.
        """
        condition = query.scope_condition(default_type=item_type)
        G = input_graph(BASE_GRAPH)
        candidates = G.select_nodes(
            condition, scorer if condition.has_keywords else None
        )
        basis = ConnectionBasisE(
            G,
            user_id=query.user_id,
            keywords=tuple(query.keywords),
            min_fit=min_fit,
            min_qualified=min_qualified,
            max_experts=max_experts,
        )
        social = SocialScoreE(
            G,
            candidates,
            basis,
            strategy=strategy,
            user_id=query.user_id,
            keywords=tuple(query.keywords),
            sim_threshold=sim_threshold,
            act_type=act_type,
        )
        root = CombineScoresE(candidates, social, alpha=alpha,
                              drop_zero=drop_zero)
        return self.execute(root, access=access, parallel=parallel,
                            topk=limit, deadline=deadline)


def _condition_type_names(condition: Any) -> list[str]:
    """Type names a structural condition pins (feedback attribution)."""
    from repro.core.conditions import AttrEquals, HasType

    names: list[str] = []
    for predicate in condition.predicates:
        if isinstance(predicate, HasType):
            names.append(predicate.type_name)
        elif isinstance(predicate, AttrEquals) and predicate.att == "type":
            names.extend(str(required) for required in predicate.required)
    return names

"""Graph statistics and cardinality estimation for the logical optimizer.

The paper's stated motivation for an algebra is that ad-hoc graph code
"leaves the system with few opportunities for reuse, customization and
optimization".  A cost-based optimizer needs cardinality estimates; this
module provides the simple statistics the Data Manager maintains (node/link
counts and per-type histograms) and heuristic selectivity estimation for
the operators.

Estimates are deliberately coarse — the goal is plan *ordering*, not exact
prediction — and every constant is documented so the ablation bench can
show where the model is wrong.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.conditions import AttrCompare, AttrEquals, Condition, HasType
from repro.core.graph import SocialContentGraph

#: Selectivity assumed for a structural predicate we know nothing about.
DEFAULT_PREDICATE_SELECTIVITY = 0.5
#: Selectivity of a keyword scope (matching at least one term).
KEYWORD_SELECTIVITY = 0.3
#: Fraction of probe-side links expected to survive a semi-join.
SEMIJOIN_SELECTIVITY = 0.5


@dataclass
class GraphStats:
    """Summary statistics over one social content graph."""

    num_nodes: int = 0
    num_links: int = 0
    node_types: Counter = field(default_factory=Counter)
    link_types: Counter = field(default_factory=Counter)

    @classmethod
    def of(cls, graph: SocialContentGraph) -> "GraphStats":
        """Collect statistics from a graph in one pass."""
        stats = cls(num_nodes=graph.num_nodes, num_links=graph.num_links)
        for node in graph.nodes():
            for t in node.types:
                stats.node_types[t] += 1
        for link in graph.links():
            for t in link.types:
                stats.link_types[t] += 1
        return stats

    # -- selectivity ---------------------------------------------------------

    def _type_fraction(self, type_name: str, of_links: bool) -> float:
        histogram = self.link_types if of_links else self.node_types
        total = self.num_links if of_links else self.num_nodes
        if total == 0:
            return 0.0
        return min(1.0, histogram.get(type_name, 0) / total)

    def condition_selectivity(self, condition: Condition, of_links: bool) -> float:
        """Estimated fraction of elements satisfying *condition*.

        Type-equality predicates use the type histogram; other predicates
        fall back to :data:`DEFAULT_PREDICATE_SELECTIVITY`; keyword scopes
        multiply in :data:`KEYWORD_SELECTIVITY`.  Predicates are assumed
        independent (the usual System-R simplification).
        """
        selectivity = 1.0
        for predicate in condition.predicates:
            if isinstance(predicate, HasType):
                selectivity *= self._type_fraction(predicate.type_name, of_links)
            elif isinstance(predicate, AttrEquals) and predicate.att == "type":
                for required in predicate.required:
                    selectivity *= self._type_fraction(str(required), of_links)
            elif isinstance(predicate, AttrEquals) and predicate.att == "id":
                total = self.num_links if of_links else self.num_nodes
                selectivity *= 1.0 / max(total, 1)
            elif isinstance(predicate, AttrCompare) and predicate.att == "id":
                # id != x keeps nearly everything; other id ranges ~half.
                selectivity *= 1.0 if predicate.op == "!=" else 0.5
            else:
                selectivity *= DEFAULT_PREDICATE_SELECTIVITY
        if condition.has_keywords:
            selectivity *= KEYWORD_SELECTIVITY
        return max(0.0, min(1.0, selectivity))


@dataclass(frozen=True)
class Card:
    """Estimated cardinality of an operator's output."""

    nodes: float
    links: float

    def cost(self) -> float:
        """Scalar cost proxy: elements materialised."""
        return self.nodes + self.links

    def __repr__(self) -> str:
        return f"~{self.nodes:.0f}n/{self.links:.0f}l"

"""Rule family D: determinism of the compiled-plan kernels.

Plan keys, cache scopes, and operator results must be pure functions of
the query and the graph *content* — never of wall-clock time, RNG draws,
or CPython object identity.  The shared plan cache and the differential
parity harness both assume it.

* **D001** — wall-clock read inside a strict module: ``time.time``,
  ``time.localtime``, ``datetime.now``/``utcnow``/``today``.
  ``time.perf_counter``/``monotonic`` stay legal (profiling only).
* **D002** — RNG use.  Inside strict modules, *any* RNG construction or
  module-level draw is a finding.  Elsewhere, unseeded RNG is a finding
  unless the module is on the seeded-RNG allowlist **and** the
  construction passes an explicit seed (``random.Random(seed)``,
  ``np.random.default_rng(seed)``).  Bare ``random.random()`` /
  ``np.random.<draw>()`` hit the process-global generator and are never
  allowed in ``src``.
* **D003** — ``id(...)`` inside a key-producing function (name matches a
  configured pattern) in a strict module.  ``id()`` values change every
  process: a key derived from one silently defeats cross-run caching and
  makes parity traces unreproducible.

Call matching is import-alias aware: ``import time as _t`` followed by
``_t.time()`` still matches, as does ``from datetime import datetime``
then ``datetime.now()``.
"""

from __future__ import annotations

import ast
import re

from tools.archcheck.config import Config
from tools.archcheck.findings import Finding, Module

#: canonical call path → rule code for wall-clock reads
WALL_CLOCK = {
    "time.time": "D001",
    "time.time_ns": "D001",
    "time.localtime": "D001",
    "time.ctime": "D001",
    "datetime.datetime.now": "D001",
    "datetime.datetime.utcnow": "D001",
    "datetime.datetime.today": "D001",
    "datetime.date.today": "D001",
}

#: RNG constructors that accept a seed as their first positional argument
SEEDED_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
}

#: module-global draw functions — always hit shared unseeded state
GLOBAL_DRAWS_PREFIXES = ("random.", "numpy.random.")
GLOBAL_DRAW_EXCEPTIONS = SEEDED_CONSTRUCTORS | {"random.SystemRandom"}


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """Local name → canonical dotted path, from this module's imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                canonical = _canon_top(alias.name)
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    canonical if alias.asname else canonical.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            base = _canon_top(node.module)
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


def _canon_top(dotted: str) -> str:
    """``np`` conventions: normalise the numpy top-level name."""
    parts = dotted.split(".")
    if parts[0] == "np":
        parts[0] = "numpy"
    return ".".join(parts)


def _canonical_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Dotted canonical path of a call target, alias-resolved."""
    parts: list[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    head = aliases.get(func.id)
    if head is None:
        if not parts:
            return None  # bare builtin/local call — not an import target
        head = func.id
    return _canon_top(".".join([head] + list(reversed(parts))))


def _has_seed_argument(node: ast.Call) -> bool:
    """A non-None first positional arg or a seed= keyword counts."""
    if node.args:
        first = node.args[0]
        return not (
            isinstance(first, ast.Constant) and first.value is None
        )
    return any(
        kw.arg == "seed" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        )
        for kw in node.keywords
    )


def check_determinism(modules: list[Module], config: Config) -> list[Finding]:
    findings: list[Finding] = []
    key_patterns = [re.compile(p) for p in config.key_function_patterns]
    for module in modules:
        strict = config.module_in(module.name, config.determinism_strict)
        allow_reason = config.rng_justification(module.name)
        aliases = _alias_map(module.tree)
        for qualname, fn in _functions_with_qualnames(module.tree):
            is_key_fn = any(p.search(fn.name) for p in key_patterns)
            for node in _own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                canonical = _canonical_call(node, aliases)
                if canonical is None:
                    # bare id() has no attribute chain — handle here
                    if (
                        strict
                        and is_key_fn
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "id"
                        and aliases.get("id") is None
                    ):
                        findings.append(Finding(
                            rule="D003",
                            path=module.rel_path,
                            line=node.lineno,
                            symbol=qualname,
                            message=(
                                f"id() inside key-producing function "
                                f"{fn.name!r}: identity-derived keys "
                                f"change every process and defeat "
                                f"cross-run caching"
                            ),
                            detail=_id_detail(node),
                        ))
                    continue
                if strict and canonical in WALL_CLOCK:
                    findings.append(Finding(
                        rule="D001",
                        path=module.rel_path,
                        line=node.lineno,
                        symbol=qualname,
                        message=(
                            f"wall-clock read {canonical}() in strict "
                            f"module {module.name!r} — plan kernels must "
                            f"be time-independent (use perf_counter for "
                            f"profiling only)"
                        ),
                        detail=canonical,
                    ))
                    continue
                finding = _rng_finding(
                    canonical, node, module, qualname, strict, allow_reason
                )
                if finding is not None:
                    findings.append(finding)
    return findings


def _rng_finding(canonical, node, module, qualname, strict, allow_reason):
    is_constructor = canonical in SEEDED_CONSTRUCTORS
    is_global_draw = (
        canonical.startswith(GLOBAL_DRAWS_PREFIXES)
        and canonical not in GLOBAL_DRAW_EXCEPTIONS
    )
    if not (is_constructor or is_global_draw):
        return None
    if strict:
        return Finding(
            rule="D002",
            path=module.rel_path,
            line=node.lineno,
            symbol=qualname,
            message=(
                f"RNG use {canonical}() in strict module "
                f"{module.name!r}: plan/core kernels must be "
                f"deterministic, seeded or not"
            ),
            detail=canonical,
        )
    if is_global_draw:
        return Finding(
            rule="D002",
            path=module.rel_path,
            line=node.lineno,
            symbol=qualname,
            message=(
                f"{canonical}() draws from the process-global RNG; "
                f"construct a seeded generator instead"
            ),
            detail=canonical,
        )
    # seeded-constructor path: allowlisted modules may build seeded RNGs
    if allow_reason is not None and _has_seed_argument(node):
        return None
    if allow_reason is not None:
        return Finding(
            rule="D002",
            path=module.rel_path,
            line=node.lineno,
            symbol=qualname,
            message=(
                f"{canonical}() without an explicit seed — the RNG "
                f"allowlist for {module.name!r} covers *seeded* "
                f"generators only"
            ),
            detail=canonical,
        )
    return Finding(
        rule="D002",
        path=module.rel_path,
        line=node.lineno,
        symbol=qualname,
        message=(
            f"RNG constructor {canonical}() in module {module.name!r} "
            f"which is not on the seeded-RNG allowlist"
        ),
        detail=canonical,
    )


def _id_detail(node: ast.Call) -> str:
    """Stable-ish discriminator: the argument's source-ish rendering."""
    if node.args:
        try:
            return f"id({ast.unparse(node.args[0])})"
        except Exception:
            return "id(...)"
    return "id()"


def _own_nodes(fn: ast.AST):
    """Walk a function's nodes without descending into nested defs.

    Nested functions are yielded as functions of their own by
    :func:`_functions_with_qualnames`; walking them here too would
    double-report every finding inside them.
    """
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _functions_with_qualnames(tree: ast.Module):
    """Yield (qualname, fn) for every function, class-prefixed."""
    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)
    yield from walk(tree, "")

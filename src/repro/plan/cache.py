"""A version-keyed LRU cache of compiled physical plans.

Keys are structural (:func:`repro.core.expr.plan_key` plus the access
preference), so a repeated request — same condition, same scorer, same
shape — skips the optimizer and lowering entirely.  Every entry is stamped
with the generation of the graph it was compiled against; a lookup under
any other generation misses, which is how Data-Manager writes and session
refreshes invalidate stale plans without eagerly walking the cache.

Entries hold *plans*, never results: a cached plan re-executes against the
live graph, and :meth:`PhysicalPlan.execute` guarantees its result aliases
no shared state, so cache hits cannot observe a caller's mutations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.plan.physical import PhysicalPlan


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one plan cache."""

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Thread-safe LRU of ``key → (generation, PhysicalPlan)``."""

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, tuple[Any, PhysicalPlan]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, generation: Any) -> PhysicalPlan | None:
        """The cached plan for *key* compiled under *generation*, or None.

        A generation mismatch counts as a miss and drops the stale entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == generation:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[1]
            if entry is not None:
                del self._entries[key]  # stale: compiled against an old graph
            self._misses += 1
            return None

    def put(self, key: Hashable, generation: Any, plan: PhysicalPlan) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail past maxsize."""
        with self._lock:
            self._entries[key] = (generation, plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )

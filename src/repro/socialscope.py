"""The SocialScope facade: back-compat shims over the session API.

    Content Management  —  integrating, maintaining and physically
                           accessing the content and social data;
    Information Discovery — analyzing content to derive interesting new
                           information, and interpreting and processing
                           the user's information need;
    Information Presentation — exploring the discovered information and
                           helping users better understand it.

Since the session-API redesign, the engine behind Figure 1 lives in
:class:`repro.api.Session`; :class:`SocialScope` remains the stable entry
point and keeps the historical one-shot call signatures::

    scope = SocialScope.from_graph(graph)
    page = scope.search(user_id, "Denver attractions")     # query
    page = scope.recommend(user_id)                        # empty query

Each old call delegates to a structured :class:`~repro.api.SearchRequest`
on the owned session (so repeated calls stay warm — no per-call layer
rebuilds), and the fluent form is one hop away::

    response = scope.query(user_id).text("Denver attractions").limit(10).run()

Remote sites attach through the management layer (`attach_remote`), and
offline analyses run through `analyze`, after which discovery sees the
enriched graph automatically.
"""

from __future__ import annotations

from repro.api import (
    QueryBuilder,
    SearchRequest,
    SearchResponse,
    Session,
    SessionConfig,
)
from repro.core import Id, SocialContentGraph
from repro.discovery import MeaningfulSocialGraph
from repro.management import DataManager, RemoteSocialSite
from repro.presentation import HierarchicalPresenter, ResultPage

#: Historical name for the stack configuration (same object).
SocialScopeConfig = SessionConfig


class SocialScope:
    """The assembled system — a thin facade over one warm session."""

    def __init__(self, data_manager: DataManager,
                 config: SocialScopeConfig | None = None):
        self.session = Session(data_manager, config)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_graph(
        cls,
        graph: SocialContentGraph,
        config: SocialScopeConfig | None = None,
    ) -> "SocialScope":
        """Build the stack around an existing logical graph."""
        dm = DataManager()
        dm.load_graph(graph)
        return cls(dm, config)

    # -------------------------------------------------------------- delegation
    @property
    def config(self) -> SessionConfig:
        """The stack configuration."""
        return self.session.config

    @property
    def data_manager(self) -> DataManager:
        """The Content Management layer."""
        return self.session.data_manager

    @property
    def analyzer(self):
        """The Content Analyzer."""
        return self.session.analyzer

    @property
    def discoverer(self):
        """The Information Discoverer (kept warm by the session)."""
        self.session._ensure_fresh()
        return self.session.discoverer

    @property
    def organizer(self):
        """The Information Organizer (kept warm by the session)."""
        self.session._ensure_fresh()
        return self.session.organizer

    # ---------------------------------------------------------------- content
    @property
    def graph(self) -> SocialContentGraph:
        """The current (possibly analysis-enriched) social content graph."""
        return self.session.graph

    def attach_remote(self, site: RemoteSocialSite,
                      with_activities: bool = False) -> None:
        """Pull a remote site's social data in (Open Cartel integration)."""
        self.session.attach_remote(site, with_activities=with_activities)

    def analyze(self, name: str) -> None:
        """Run one Content Analyzer analysis and refresh discovery.

        The enriched graph lives in the analyzer; the Data Manager keeps
        the raw records (re-deriving is cheap and derivations are marked
        with ``derived_by``, so nothing is lost by not persisting them).
        """
        self.session.analyze(name)

    # -------------------------------------------------------------- discovery
    def discover(self, user_id: Id, text: str = "", structural=None,
                 strategy: str | None = None, k: int | None = None
                 ) -> MeaningfulSocialGraph:
        """Query → MSG (stop before presentation)."""
        return self.session.discover(SearchRequest(
            user_id=user_id, text=text, structural=structural,
            strategy=strategy, k=k,
        ))

    # ------------------------------------------------------------ presentation
    def query(self, user_id: Id) -> QueryBuilder:
        """Start a fluent structured query (the session-API entry point)."""
        return self.session.query(user_id)

    def run(self, request: SearchRequest) -> SearchResponse:
        """Evaluate a structured request (see :mod:`repro.api`)."""
        return self.session.run(request)

    def search(self, user_id: Id, query: str, structural=None,
               strategy: str | None = None, k: int | None = None) -> ResultPage:
        """The full pipeline: query → MSG → organized result page."""
        response = self.session.run(SearchRequest(
            user_id=user_id, text=query, structural=structural,
            strategy=strategy, k=k,
        ))
        return response.page

    def recommend(self, user_id: Id, k: int | None = None) -> ResultPage:
        """Empty-query mode: social relevance only (§4)."""
        return self.search(user_id, "", k=k)

    def explore(self, user_id: Id, query: str) -> HierarchicalPresenter:
        """Zoomable hierarchical presentation of a query's results."""
        return self.session.explore(SearchRequest(user_id=user_id, text=query))

"""Index size analysis — the paper's "~1 terabyte" estimate (§6.2).

    "Consider a moderately sized social content site with 100,000 users,
    1 million items, and 1000 distinct tags.  If on average each item
    receives 20 tags which are given by 5% of the users, the size of the
    index would be approximately 1 terabyte, assuming 10 bytes per index
    entry."

The arithmetic behind that sentence: every tagging of item *i* with tag *k*
by some user contributes (via that tagger's network) an entry in the
per-(tag, user) lists; the paper approximates the entry count as

    items x tags_per_item x taggers_per_(item,tag)
    = 1e6 x 20 x (5% x 1e5) = 1e11 entries = 1 TB at 10 B/entry.

:func:`paper_scale_estimate` reproduces that model at any scale;
:func:`measured_report` sizes our actual index structures on a generated
workload so the sizing bench can print *analytic paper scale* alongside
*measured scaled-down* numbers and the compression each clustering
strategy buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.indexing.clustered import ClusteredIndex
from repro.indexing.inverted import ENTRY_BYTES, ExactUserIndex, GlobalPopularityIndex
from repro.indexing.scores import TaggingData


@dataclass(frozen=True)
class SizingScenario:
    """Site-size parameters of the analytic model."""

    num_users: int = 100_000
    num_items: int = 1_000_000
    num_tags: int = 1_000
    tags_per_item: float = 20.0
    tagger_fraction: float = 0.05  # fraction of users tagging each (item, tag)
    entry_bytes: int = ENTRY_BYTES


@dataclass(frozen=True)
class SizingEstimate:
    """Analytic output of the paper's model."""

    entries: float
    bytes: float

    @property
    def terabytes(self) -> float:
        """Size in TB (10^12 bytes, the paper's loose unit)."""
        return self.bytes / 1e12

    @property
    def gigabytes(self) -> float:
        """Size in GB (10^9 bytes)."""
        return self.bytes / 1e9


def paper_scale_estimate(scenario: SizingScenario | None = None) -> SizingEstimate:
    """The paper's back-of-envelope entry count for the per-(tag,user) index.

    >>> est = paper_scale_estimate()
    >>> round(est.terabytes, 2)
    1.0
    """
    s = scenario or SizingScenario()
    entries = s.num_items * s.tags_per_item * (s.tagger_fraction * s.num_users)
    return SizingEstimate(entries=entries, bytes=entries * s.entry_bytes)


@dataclass
class MeasuredSizes:
    """Measured entry counts of the concrete index structures."""

    exact_entries: int
    exact_lists: int
    global_entries: int
    clustered: dict[str, tuple[int, int]]  # strategy -> (entries, lists)

    def compression(self, strategy: str) -> float:
        """Exact-index entries divided by a clustered index's entries."""
        entries, _ = self.clustered[strategy]
        if entries == 0:
            return float("inf")
        return self.exact_entries / entries


def measured_report(
    data: TaggingData,
    clusterings: dict[str, "object"],
) -> MeasuredSizes:
    """Build every index once and report measured sizes.

    *clusterings* maps strategy name to a
    :class:`~repro.indexing.clustering.Clustering`.
    """
    exact = ExactUserIndex(data).report()
    global_ = GlobalPopularityIndex(data).report()
    clustered: dict[str, tuple[int, int]] = {}
    for name, clustering in clusterings.items():
        report = ClusteredIndex(data, clustering).report()
        clustered[name] = (report.entries, report.lists)
    return MeasuredSizes(
        exact_entries=exact.entries,
        exact_lists=exact.lists,
        global_entries=global_.entries,
        clustered=clustered,
    )

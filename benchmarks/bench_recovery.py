"""Experiment R1 — restart economics: cold vs. warm time-to-first-result.

A durable site is seeded, trained (representative traffic across all
three social strategies, so the plan cache, the learned cardinality
corrections, and the warm-recipe manifest all have something to say),
checkpointed, and then "killed".  Two restarts compete:

* **cold** (``warm=False``): snapshot + WAL tail only.  The first
  request pays plan compilation and cost-model bootstrap.
* **warm** (default): the persisted recipe manifest replays through the
  planner during ``Session.restore``, so the first request is served
  from the shared plan cache at learned cost.

Measured, best-of-N to shave scheduler noise:

* restore wall-clock for each mode (warm pays its replay here — that is
  the trade, and it is recorded, not hidden);
* time-to-first-result after each restore;
* the tracked ratio ``warm_first_over_cold_first`` — warm first-request
  latency over cold first-request latency.  It grows toward 1.0 when
  warming stops working, which is exactly the regression to catch.

The behavioural claim is asserted in every regime, not just timed: the
warm session's first request must hit the plan cache with zero compiles.

Results merge into ``BENCH_plan.json`` under ``"recovery"``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.api import SearchRequest, Session
from repro.management import DataManager, read_manifest
from repro.workloads import WorkloadConfig, build_site

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

RESULTS: dict = {}

SEED = 23
STRATEGIES = ("friends", "similar_users", "item_based")


@pytest.fixture(scope="module")
def durable_site(tmp_path_factory, quick):
    """Build, train, and checkpoint a site; return (dir, probe requests)."""
    users, items = (40, 80) if quick else (200, 400)
    generated = build_site(
        WorkloadConfig(num_users=users, num_items=items, seed=SEED)
    )
    site = tmp_path_factory.mktemp("durable_site")

    dm = DataManager(shards=4)
    dm.load_graph(generated.graph)
    dm.enable_wal(site / "wal")
    session = Session(dm)

    probes = [
        SearchRequest(
            user_id=uid,
            text=category,
            strategy=strategy,
            page_size=10,
        )
        for uid in generated.user_ids[:4]
        for category, strategy in zip(generated.categories, STRATEGIES)
    ]
    for request in probes:  # trains feedback + fills the plan cache
        session.run(request)
    session.save(site)
    return site, probes


def _timed_restart(site: Path, probe: SearchRequest, *, warm: bool):
    """One restart: (restore_s, first_request_s, session, response)."""
    t0 = time.perf_counter()
    session = Session.restore(site, warm=warm)
    t1 = time.perf_counter()
    response = session.run(probe)
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1, session, response


def test_cold_vs_warm_restart(durable_site, report, quick):
    site, probes = durable_site
    probe = probes[0]
    rounds = 2 if quick else 5

    cold_restore, cold_first = [], []
    warm_restore, warm_first = [], []
    for _ in range(rounds):
        restore_s, first_s, cold, cold_response = _timed_restart(
            site, probe, warm=False
        )
        cold_restore.append(restore_s)
        cold_first.append(first_s)

        restore_s, first_s, warm, warm_response = _timed_restart(
            site, probe, warm=True
        )
        warm_restore.append(restore_s)
        warm_first.append(first_s)

        # behavioural acceptance, independent of wall-clock: the warm
        # restart reaches learned-cost serving on its *first* request
        assert warm_response.ok and cold_response.ok
        assert warm_response.items == cold_response.items
        assert warm.stats.plan_cache_hits >= 1
        assert warm.stats.plan_compiles == 0
        assert cold.stats.plan_compiles >= 1

    best = min  # best-of-N: least-noisy estimate of intrinsic cost
    ratio = best(warm_first) / best(cold_first)
    RESULTS["recovery"] = {
        "rounds": rounds,
        "cold_restore_s": best(cold_restore),
        "warm_restore_s": best(warm_restore),
        "cold_first_request_s": best(cold_first),
        "warm_first_request_s": best(warm_first),
        "warm_first_over_cold_first": ratio,
        "warm_recipes_replayed": len(
            read_manifest(site)["extra"]["session"]["warm_recipes"]
        ),
    }
    report(
        "",
        "=== Restart economics: cold vs. warm time-to-first-result ===",
        f"  restore:        cold {best(cold_restore) * 1e3:8.2f} ms   "
        f"warm {best(warm_restore) * 1e3:8.2f} ms (includes recipe replay)",
        f"  first request:  cold {best(cold_first) * 1e3:8.2f} ms   "
        f"warm {best(warm_first) * 1e3:8.2f} ms",
        f"  warm/cold first-request ratio: {ratio:.3f}x",
    )
    if not quick:
        # warming must actually buy something on the first request
        assert ratio < 1.0


def test_emit_bench_json(report, quick):
    """Merge the recovery section into BENCH_plan.json (runs last here)."""
    merged: dict = {}
    if OUTPUT.exists():
        merged = json.loads(OUTPUT.read_text())
    merged.update(RESULTS)
    merged["quick"] = bool(quick)
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")
    report("", f"BENCH_plan.json recovery section written: {OUTPUT}")
    assert "recovery" in merged
    assert merged["recovery"]["cold_first_request_s"] > 0

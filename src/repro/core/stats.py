"""Graph statistics and cardinality estimation for the logical optimizer.

The paper's stated motivation for an algebra is that ad-hoc graph code
"leaves the system with few opportunities for reuse, customization and
optimization".  A cost-based optimizer needs cardinality estimates; this
module provides the simple statistics the Data Manager maintains (node/link
counts and per-type histograms) and heuristic selectivity estimation for
the operators.

Estimates are deliberately coarse — the goal is plan *ordering*, not exact
prediction — and every constant is documented so the ablation bench can
show where the model is wrong.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

from typing import Hashable, Sequence

from repro.core.conditions import AttrCompare, AttrEquals, Condition, HasType
from repro.core.graph import SocialContentGraph
from repro.core.text import term_variants, tokenize

#: Selectivity assumed for a structural predicate we know nothing about.
DEFAULT_PREDICATE_SELECTIVITY = 0.5
#: Selectivity of a keyword scope (matching at least one term).
KEYWORD_SELECTIVITY = 0.3
#: Fraction of probe-side links expected to survive a semi-join.
SEMIJOIN_SELECTIVITY = 0.5


class CardinalityFeedback:
    """Execution-observed correction factors for the cost model.

    EXPLAIN already measures estimated vs. actual cardinality per
    operator; this is the loop that closes it: the planner reports each
    selection's (estimate, actual) after execution, keyed per keyword term
    and per type predicate, and future estimates multiply in the learned
    factor.  Corrections are exponentially smoothed (so one anomalous
    query cannot wreck the model) and hard-capped at *max_correction* in
    both directions (so the model can be wrong, but never unboundedly).

    Thread-safe: sessions observe from whatever thread executed the plan.
    """

    def __init__(self, max_correction: float = 8.0, smoothing: float = 0.5):
        if max_correction < 1.0:
            raise ValueError(
                f"max_correction must be >= 1, got {max_correction!r}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing!r}")
        self.max_correction = max_correction
        self.smoothing = smoothing
        self._factors: dict[Hashable, float] = {}
        self._observations = 0
        self._lock = threading.Lock()

    def _clamp(self, factor: float) -> float:
        return max(1.0 / self.max_correction, min(self.max_correction, factor))

    def observe(self, key: Hashable, estimated: float, actual: float) -> None:
        """Record one estimated-vs-actual pair for *key*.

        The implied correction is ``actual / estimated`` relative to the
        factor already applied (the estimate the planner produced had the
        old factor baked in), smoothed into the stored factor.
        """
        if estimated <= 0.0 and actual <= 0.0:
            return  # nothing measurable on either side
        with self._lock:
            old = self._factors.get(key, 1.0)
            implied = self._clamp(
                old * (max(actual, 0.5) / max(estimated, 0.5))
            )
            blended = old + self.smoothing * (implied - old)
            self._factors[key] = self._clamp(blended)
            self._observations += 1

    def factor(self, key: Hashable) -> float:
        """The multiplicative correction learned for *key* (1.0 = none)."""
        return self._factors.get(key, 1.0)

    @property
    def observations(self) -> int:
        """Number of (estimate, actual) pairs fed back so far."""
        return self._observations

    def snapshot(self) -> dict[Hashable, float]:
        """Copy of the current correction table (diagnostics, tests)."""
        with self._lock:
            return dict(self._factors)

    def clear(self) -> None:
        with self._lock:
            self._factors.clear()

    # -- persistence --------------------------------------------------------

    def export_state(self) -> dict:
        """The learned corrections as a JSON-ready document.

        Keys are flat tuples of JSON scalars (``("term", t)``,
        ``("type", name, of_links)``, …), encoded as lists; a key holding
        a non-JSON value (possible for exotic ``attr_key`` values) is
        skipped rather than failing the whole export — losing one learned
        factor costs a few cold estimates, losing the snapshot costs the
        site.  The inverse is :meth:`load_state`.
        """
        with self._lock:
            factors = dict(self._factors)
            observations = self._observations
        entries = []
        for key, factor in sorted(factors.items(), key=repr):
            if isinstance(key, tuple) and all(
                isinstance(part, (str, int, float, bool)) for part in key
            ):
                entries.append([list(key), factor])
        return {
            "max_correction": self.max_correction,
            "smoothing": self.smoothing,
            "observations": observations,
            "factors": entries,
        }

    def load_state(self, state: dict) -> int:
        """Restore a table exported by :meth:`export_state`.

        Factors are re-clamped under *this* instance's ``max_correction``
        (the persisted table may come from a laxer configuration) and
        replace any current entries key by key.  Returns the number of
        factors restored; the observation count carries over so a
        restarted site reports how much evidence its model rests on.
        """
        loaded = 0
        with self._lock:
            for entry in state.get("factors", ()):
                key_parts, factor = entry
                self._factors[tuple(key_parts)] = self._clamp(float(factor))
                loaded += 1
            self._observations += int(state.get("observations", 0))
        return loaded

    @staticmethod
    def term_key(term: str) -> tuple:
        """Correction key for one keyword term's selectivity."""
        return ("term", term)

    @staticmethod
    def type_key(type_name: str, of_links: bool) -> tuple:
        """Correction key for one type predicate's selectivity."""
        return ("type", type_name, bool(of_links))

    @staticmethod
    def attr_key(att: str, value: Hashable) -> tuple:
        """Correction key for one attribute-value posting estimate."""
        return ("attr", att, value)

    @staticmethod
    def basis_key() -> tuple:
        """Correction key for the expected connection-basis size.

        Feeds the social *strategy* picker and the probe-vs-endorsement
        access choice: both read the raw connection-degree histograms,
        and this correction folds observed basis sizes back in.
        """
        return ("social", "basis")

    @staticmethod
    def endorse_key() -> tuple:
        """Correction key for the expected endorsement reach."""
        return ("social", "endorse")


@dataclass
class GraphStats:
    """Summary statistics over one social content graph."""

    num_nodes: int = 0
    num_links: int = 0
    node_types: Counter = field(default_factory=Counter)
    link_types: Counter = field(default_factory=Counter)
    #: per-term document frequency over node texts (distinct tokens per
    #: node), collected only under ``with_terms=True`` — it costs a
    #: tokenisation pass, and only keyword-selectivity consumers (the
    #: physical compiler's scan-vs-index cost model) need it.
    term_doc_freq: Counter = field(default_factory=Counter)
    #: number of node documents the term histogram was collected over
    term_population: int = 0
    #: out-degree histograms of the §4 overlays: degree -> number of nodes
    #: with that many outgoing ``connect`` / ``act`` links.  Zero-degree
    #: nodes are not stored (derive them from the type histogram); the
    #: social-stage cost model reads expected basis sizes and endorsement
    #: reach off these.
    connect_degree_hist: Counter = field(default_factory=Counter)
    act_degree_hist: Counter = field(default_factory=Counter)
    #: per-value counts of the *indexed* attributes (``attr → value →
    #: nodes carrying it``), collected only for the attributes named in
    #: ``of(..., indexed_attrs=...)`` — the attribute-index access path's
    #: posting-size estimate.
    attr_value_counts: dict = field(default_factory=dict)
    #: execution-observed correction factors (attached by the planner;
    #: ``None`` keeps estimates purely histogram-driven)
    feedback: CardinalityFeedback | None = None

    @classmethod
    def of(cls, graph: SocialContentGraph, with_terms: bool = False,
           indexed_attrs: Sequence[str] = ()) -> "GraphStats":
        """Collect statistics from a graph in one pass."""
        stats = cls(num_nodes=graph.num_nodes, num_links=graph.num_links)
        attr_counts: dict[str, Counter] = {
            att: Counter() for att in indexed_attrs
        }
        for node in graph.nodes():
            for t in node.types:
                stats.node_types[t] += 1
            for att, counter in attr_counts.items():
                for value in node.values(att):
                    counter[value] += 1
            if with_terms:
                for token in set(tokenize(node.text())):
                    stats.term_doc_freq[token] += 1
        stats.attr_value_counts = attr_counts
        if with_terms:
            stats.term_population = graph.num_nodes
        connect_out: Counter = Counter()
        act_out: Counter = Counter()
        for link in graph.links():
            for t in link.types:
                stats.link_types[t] += 1
            if "connect" in link.types:
                connect_out[link.src] += 1
            if "act" in link.types:
                act_out[link.src] += 1
        for degree in connect_out.values():
            stats.connect_degree_hist[degree] += 1
        for degree in act_out.values():
            stats.act_degree_hist[degree] += 1
        return stats

    # -- social-stage expectations -------------------------------------------

    def users_with_connections(self) -> int:
        """Number of nodes with at least one outgoing ``connect`` link."""
        return sum(self.connect_degree_hist.values())

    def active_users(self) -> int:
        """Number of nodes with at least one outgoing ``act`` link."""
        return sum(self.act_degree_hist.values())

    def expected_basis_size(self) -> float:
        """Expected friend-basis size of a random user.

        Total outgoing ``connect`` links over the user population (falling
        back to the connected population when the graph types no users) —
        the mean of the connection-degree histogram including its implicit
        zero bucket.  Execution-observed basis sizes fold back in through
        the :meth:`CardinalityFeedback.basis_key` correction, so the
        strategy picker and the social access-path choice sharpen with
        every served query instead of reading raw histograms forever.
        """
        total = sum(d * c for d, c in self.connect_degree_hist.items())
        population = max(
            self.node_types.get("user", 0), self.users_with_connections(), 1
        )
        expected = total / population
        if self.feedback is not None:
            expected *= self.feedback.factor(CardinalityFeedback.basis_key())
        return expected

    def avg_act_degree(self) -> float:
        """Mean activity out-degree of an *active* user.

        Conditional on acting at all: a basis member was selected because
        they are connected, and connected users who never act contribute
        nothing to either physical path, so the per-member probe work is
        priced off the active population.
        """
        total = sum(d * c for d, c in self.act_degree_hist.items())
        return total / max(self.active_users(), 1)

    def expected_endorsements(self) -> float:
        """Expected endorsement-probe reach: basis size × activity degree.

        An upper bound on the distinct items a friend basis endorses (the
        posting count of a network-index list); callers cap it by the
        candidate population.  Carries the observed-reach correction
        (:meth:`CardinalityFeedback.endorse_key`) the planner feeds back
        from executed social stages.
        """
        reach = self.expected_basis_size() * self.avg_act_degree()
        if self.feedback is not None:
            reach *= self.feedback.factor(CardinalityFeedback.endorse_key())
        return reach

    def attr_value_count(self, att: str, value: Hashable) -> float:
        """Estimated posting size of one indexed attribute value.

        Reads the per-value histogram collected for registered
        attributes, corrected by any execution-observed factor for the
        pair; unknown attributes estimate half the population (nothing is
        known — the scan should win).
        """
        counter = self.attr_value_counts.get(att)
        if counter is None:
            estimate = self.num_nodes * DEFAULT_PREDICATE_SELECTIVITY
        else:
            estimate = float(counter.get(value, 0))
        if self.feedback is not None:
            estimate *= self.feedback.factor(
                CardinalityFeedback.attr_key(att, value)
            )
        return estimate

    # -- selectivity ---------------------------------------------------------

    def _type_fraction(self, type_name: str, of_links: bool) -> float:
        histogram = self.link_types if of_links else self.node_types
        total = self.num_links if of_links else self.num_nodes
        if total == 0:
            return 0.0
        fraction = histogram.get(type_name, 0) / total
        if self.feedback is not None:
            fraction *= self.feedback.factor(
                CardinalityFeedback.type_key(type_name, of_links)
            )
        return min(1.0, fraction)

    def keyword_match_fraction(self, keywords: Sequence[str]) -> float:
        """Estimated fraction of nodes matching ≥ 1 keyword (variant-aware).

        Uses the term histogram when collected (``of(..., with_terms=True)``):
        each term's document frequency is summed over its singular/plural
        variants, and terms combine under the independence assumption —
        ``1 - Π(1 - dfᵢ/N)``.  Without term statistics, falls back to the
        flat :data:`KEYWORD_SELECTIVITY` constant.
        """
        if not keywords:
            return 1.0
        if not self.term_doc_freq or self.term_population <= 0:
            fraction = KEYWORD_SELECTIVITY
            if self.feedback is not None:
                for term in keywords:
                    fraction *= self.feedback.factor(
                        CardinalityFeedback.term_key(term)
                    )
            return max(0.0, min(1.0, fraction))
        population = self.term_population
        miss = 1.0
        for term in keywords:
            df = sum(
                self.term_doc_freq.get(variant, 0)
                for variant in dict.fromkeys(term_variants(term))
            )
            df_fraction = min(df, population) / population
            if self.feedback is not None:
                df_fraction = min(
                    1.0,
                    df_fraction
                    * self.feedback.factor(CardinalityFeedback.term_key(term)),
                )
            miss *= 1.0 - df_fraction
        return max(0.0, min(1.0, 1.0 - miss))

    def condition_selectivity(self, condition: Condition, of_links: bool) -> float:
        """Estimated fraction of elements satisfying *condition*.

        Type-equality predicates use the type histogram; other predicates
        fall back to :data:`DEFAULT_PREDICATE_SELECTIVITY`; keyword scopes
        multiply in the keyword match fraction (term-histogram-driven when
        collected, :data:`KEYWORD_SELECTIVITY` otherwise).  Predicates are
        assumed independent (the usual System-R simplification).
        """
        selectivity = 1.0
        for predicate in condition.predicates:
            if isinstance(predicate, HasType):
                selectivity *= self._type_fraction(predicate.type_name, of_links)
            elif isinstance(predicate, AttrEquals) and predicate.att == "type":
                for required in predicate.required:
                    selectivity *= self._type_fraction(str(required), of_links)
            elif isinstance(predicate, AttrEquals) and predicate.att == "id":
                total = self.num_links if of_links else self.num_nodes
                selectivity *= 1.0 / max(total, 1)
            elif isinstance(predicate, AttrCompare) and predicate.att == "id":
                # id != x keeps nearly everything; other id ranges ~half.
                selectivity *= 1.0 if predicate.op == "!=" else 0.5
            else:
                selectivity *= DEFAULT_PREDICATE_SELECTIVITY
        if condition.has_keywords:
            selectivity *= self.keyword_match_fraction(condition.keywords)
        return max(0.0, min(1.0, selectivity))


@dataclass(frozen=True)
class Card:
    """Estimated cardinality of an operator's output."""

    nodes: float
    links: float

    def cost(self) -> float:
        """Scalar cost proxy: elements materialised."""
        return self.nodes + self.links

    def __repr__(self) -> str:
        return f"~{self.nodes:.0f}n/{self.links:.0f}l"

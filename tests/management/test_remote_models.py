"""Tests for remote-site simulation, integration, models, and sync."""

from __future__ import annotations

import pytest

from repro.core import Node
from repro.errors import ManagementError, PermissionDeniedError
from repro.management import (
    ALL_SCOPES,
    ActivityCategory,
    ActivityManager,
    ContentIntegrator,
    DataManager,
    GraphStore,
    RemoteSocialSite,
    Scenario,
    SCOPE_CONNECTIONS,
    SCOPE_PROFILE,
    run_all_models,
    run_closed_cartel,
    run_decentralized,
    run_open_cartel,
    uniform_profiles,
    SyncScheduler,
)


@pytest.fixture
def site():
    s = RemoteSocialSite("facebook-sim")
    for uid in range(1, 6):
        s.register_user(uid, f"user{uid}", interests=("travel",))
    s.connect(1, 2)
    s.connect(1, 3)
    s.connect(4, 5)
    return s


class TestRemoteSite:
    def test_permission_enforced(self, site):
        with pytest.raises(PermissionDeniedError):
            site.get_profile(1, "travel-app")
        assert site.calls.denials == 1

    def test_grant_and_read(self, site):
        site.grant(1, "travel-app", {SCOPE_PROFILE, SCOPE_CONNECTIONS})
        profile = site.get_profile(1, "travel-app")
        assert profile.name == "user1"
        assert site.get_connections(1, "travel-app") == {2, 3}
        assert site.calls.reads == 2

    def test_scoped_grants(self, site):
        site.grant(1, "app", {SCOPE_PROFILE})
        with pytest.raises(PermissionDeniedError):
            site.get_connections(1, "app")

    def test_revoke(self, site):
        site.grant(1, "app", {SCOPE_PROFILE})
        site.revoke(1, "app")
        with pytest.raises(PermissionDeniedError):
            site.get_profile(1, "app")

    def test_unknown_scope_rejected(self, site):
        with pytest.raises(ManagementError):
            site.grant(1, "app", {"mind-reading"})

    def test_activity_stream_incremental(self, site):
        site.grant(1, "app", set(ALL_SCOPES))
        site.record_activity(1, "tag", "item:a")
        site.record_activity(1, "visit", "item:b")
        first = site.get_activities(1, "app")
        assert [a.verb for a in first] == ["tag", "visit"]
        newer = site.get_activities(1, "app", since=first[-1].sequence)
        assert newer == []


class TestIntegrator:
    def test_import_user_with_provenance(self, site):
        store = GraphStore()
        integrator = ContentIntegrator(store, client_name="app")
        site.grant(1, "app", set(ALL_SCOPES))
        report = integrator.import_user(site, 1)
        assert report.users == 1 and report.connections == 2
        assert store.origin_of("node", 1) == "facebook-sim"
        assert store.node(1).value("source") == "facebook-sim"
        assert store.has_link("ext:facebook-sim:1->2")

    def test_denied_import_counts(self, site):
        store = GraphStore()
        integrator = ContentIntegrator(store, client_name="app")
        report = integrator.import_user(site, 1)
        assert report.denied == 1 and report.users == 0

    def test_activity_sync_high_water_mark(self, site):
        store = GraphStore()
        integrator = ContentIntegrator(store, client_name="app")
        site.grant(1, "app", set(ALL_SCOPES))
        site.record_activity(1, "tag", "item:x")
        r1 = integrator.import_user(site, 1, with_activities=True)
        assert r1.activities == 1
        r2 = integrator.import_user(site, 1, with_activities=True)
        assert r2.activities == 0  # nothing new
        site.record_activity(1, "tag", "item:y")
        assert integrator.staleness(site, 1) == 1

    def test_push_connection_writeback(self, site):
        store = GraphStore()
        integrator = ContentIntegrator(store, client_name="app")
        site.grant(1, "app", set(ALL_SCOPES))
        assert integrator.push_connection(site, 1, 4)
        assert 4 in site.get_connections(1, "app")

    def test_push_without_write_scope(self, site):
        store = GraphStore()
        integrator = ContentIntegrator(store, client_name="app")
        site.grant(1, "app", {SCOPE_PROFILE})
        assert not integrator.push_connection(site, 1, 4)


@pytest.fixture
def scenario():
    return Scenario(
        users=list(range(1, 21)),
        friendships=[(i, i + 1) for i in range(1, 20)],
        content_sites=("travel", "news", "photos"),
    )


class TestManagementModels:
    def test_decentralized_duplicates(self, scenario):
        out = run_decentralized(scenario)
        # profiles re-created on every one of the 3 sites
        assert out.profiles_created == 3 * 20
        assert out.duplicate_connections == 2 * 19
        assert out.content_site_can_analyze

    def test_closed_cartel_single_profile_no_analysis(self, scenario):
        out = run_closed_cartel(scenario)
        assert out.profiles_created == 20
        assert out.duplicate_connections == 0
        assert not out.content_site_can_analyze
        assert out.interaction_point == "social site"

    def test_open_cartel_best_of_both(self, scenario):
        out = run_open_cartel(scenario)
        assert out.profiles_created == 20
        assert out.duplicate_connections == 0
        assert out.content_site_can_analyze
        assert out.interaction_point == "content site"
        assert out.api_reads > 0  # the integration is real, not asserted

    def test_table2_capability_rows(self, scenario):
        rows = {o.model: o for o in run_all_models(scenario)}
        # Table 2, content-site row: control over social graph
        assert rows["decentralized"].content_site_controls_social == "yes"
        assert rows["closed_cartel"].content_site_controls_social == "no"
        assert rows["open_cartel"].content_site_controls_social == "limited"
        # Table 2, social-site row: control over activities
        assert rows["closed_cartel"].social_site_controls_activities == "yes"
        assert rows["open_cartel"].social_site_controls_activities == "limited"


class TestActivityManagerAndSync:
    def test_categorization_thresholds(self):
        manager = ActivityManager(heavy_threshold=10, medium_threshold=4,
                                  light_threshold=1)
        assert manager.categorize(15) == ActivityCategory.HEAVY
        assert manager.categorize(5) == ActivityCategory.MEDIUM
        assert manager.categorize(2) == ActivityCategory.LIGHT
        assert manager.categorize(0) == ActivityCategory.DORMANT

    def test_analyze_counts_activities(self, tiny_travel_graph):
        manager = ActivityManager()
        profiles = manager.analyze(tiny_travel_graph)
        assert profiles[102].activities == 3  # Ann's visits
        assert profiles[101].connections >= 2

    def test_heavier_users_refresh_more_often(self, tiny_travel_graph):
        manager = ActivityManager(heavy_threshold=3, medium_threshold=2,
                                  light_threshold=1)
        profiles = manager.analyze(tiny_travel_graph)
        heavy = profiles[102]  # 3 visits
        assert profiles[101].refresh_interval >= heavy.refresh_interval

    def test_activity_driven_beats_uniform_under_budget(self):
        """The paper's claim: activity-aware sync keeps data fresher for
        the same API budget.  Heavy users generate most new activity; the
        activity-driven policy refreshes them more often."""

        def build_world():
            site = RemoteSocialSite("fb")
            dm = DataManager()
            for u in range(1, 21):
                site.register_user(u, f"u{u}")
                site.grant(u, "socialscope", set(ALL_SCOPES))
            dm.attach_remote(site)
            return site, dm

        def run(policy_profiles, site, dm, ticks=12, budget=4):
            integ = dm.integrator
            sched = SyncScheduler(site, integ, policy_profiles)
            for tick in range(ticks):
                # heavy users (1-5) create 2 activities per tick; others
                # almost none.
                for u in range(1, 6):
                    site.record_activity(u, "tag", f"i:{u}:{tick}:a")
                    site.record_activity(u, "tag", f"i:{u}:{tick}:b")
                if tick % 6 == 0:
                    for u in range(6, 21):
                        site.record_activity(u, "visit", f"i:{u}:{tick}")
                sched.run_tick(tick, budget=budget)
            return sched.metrics

        from repro.management import UserActivityProfile

        site_a, dm_a = build_world()
        aware = {
            u: UserActivityProfile(user_id=u,
                                   refresh_interval=1 if u <= 5 else 6)
            for u in range(1, 21)
        }
        m_aware = run(aware, site_a, dm_a)

        site_b, dm_b = build_world()
        uniform = uniform_profiles(list(range(1, 21)), interval=3)
        m_uniform = run(uniform, site_b, dm_b)

        assert m_aware.mean_staleness < m_uniform.mean_staleness

"""Experiment S1 — the session API: warm vs. cold serving, index vs. scan.

Two questions the api_redesign answers quantitatively:

1. what does a warm :class:`~repro.api.Session` save over tearing the
   facade down per query (the old `SocialScope(...)` -per-call pattern)?
2. what does index-backed candidate generation save over the full-scan
   semantic stage, at identical results?

Tables print via the ``report`` fixture, timings via pytest-benchmark.
"""

from __future__ import annotations

import time

import pytest

from repro.api import SearchRequest, Session
from repro.socialscope import SocialScope
from repro.workloads import ALEXIA, JOHN, SELMA

QUERY_MIX = [
    SearchRequest(user_id=JOHN, text="Denver attractions"),
    SearchRequest(user_id=SELMA, text="Barcelona family trip with babies"),
    SearchRequest(user_id=ALEXIA, text="history"),
    SearchRequest(user_id=JOHN, text="museum"),
    SearchRequest(user_id=JOHN),  # recommendation
]


@pytest.fixture(scope="module")
def session(travel_site):
    return Session.from_graph(travel_site.graph)


def _run_mix_cold(travel_site):
    """The pre-session pattern: a fresh stack for every query."""
    for request in QUERY_MIX:
        scope = SocialScope.from_graph(travel_site.graph)
        scope.search(request.user_id, request.text)


def _run_mix_warm(session):
    for request in QUERY_MIX:
        session.run(request)


def test_cold_facade_vs_warm_session(travel_site, session, report, benchmark,
                                     quick):
    _run_mix_warm(session)  # prime the lazy state out of the timing

    start = time.perf_counter()
    _run_mix_cold(travel_site)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    _run_mix_warm(session)
    warm = time.perf_counter() - start

    benchmark(_run_mix_warm, session)
    speedup = cold / warm if warm > 0 else float("inf")
    report(
        "",
        "=== Session API: cold facade vs warm session "
        f"({len(QUERY_MIX)}-query mix) ===",
        f"  cold (new stack per query):  {cold * 1e3:8.1f} ms",
        f"  warm (one session):          {warm * 1e3:8.1f} ms",
        f"  speedup:                     {speedup:8.1f}x   "
        f"(tf-idf builds: {session.stats.tfidf_builds}, "
        f"index builds: {session.stats.index_builds})",
    )
    if not quick:
        assert warm < cold


def test_index_vs_scan_discovery(session, report, benchmark, quick):
    keyword_queries = [r for r in QUERY_MIX if r.text]
    indexed = [session.run(r) for r in keyword_queries]
    scanned = [session.run(r.replace(use_index=False))
               for r in keyword_queries]
    # identical top-k item sets: the parity guarantee
    assert [r.items for r in indexed] == [r.items for r in scanned]

    def run_indexed():
        for request in keyword_queries:
            session.run(request)

    def run_scanned():
        for request in keyword_queries:
            session.run(request.replace(use_index=False))

    start = time.perf_counter()
    run_scanned()
    scan_time = time.perf_counter() - start
    start = time.perf_counter()
    run_indexed()
    index_time = time.perf_counter() - start

    # Isolate the candidate stage itself (the part the index replaces).
    from repro.discovery import parse_query

    queries = [parse_query(r.user_id, r.text) for r in keyword_queries]
    semantic = session.discoverer.semantic
    index = session.semantic_index
    rounds = 20
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            semantic.candidates(query)
    stage_scan = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            index.candidates(query.keywords)
    stage_index = time.perf_counter() - start

    benchmark(run_indexed)
    index_report = index.report()
    report(
        "",
        "=== Candidate generation: semantic index vs full scan ===",
        f"  end-to-end scan  ({len(keyword_queries)} queries): "
        f"{scan_time * 1e3:8.1f} ms",
        f"  end-to-end index ({len(keyword_queries)} queries): "
        f"{index_time * 1e3:8.1f} ms",
        f"  candidate stage only, scan:  {stage_scan / rounds * 1e3:8.2f} ms"
        f"  ({rounds} rounds)",
        f"  candidate stage only, index: {stage_index / rounds * 1e3:8.2f} ms"
        f"  (speedup {stage_scan / stage_index:5.1f}x)",
        f"  index size: {index_report.lists} lists, "
        f"{index_report.entries} entries (~{index_report.bytes} B)",
        "  (identical result pages on both paths — asserted)",
    )
    if not quick:
        assert stage_index < stage_scan


def test_batch_throughput(session, report, benchmark):
    batch = QUERY_MIX * 4

    def run_batch():
        session.run_many(batch)

    benchmark(run_batch)
    report(
        "",
        f"=== Batch execution: run_many over {len(batch)} requests "
        "(shared warm state) ===",
        f"  session totals: {session.stats.queries} queries, "
        f"{session.stats.batches} batches, "
        f"{session.stats.index_queries} index-backed, "
        f"{session.stats.scan_queries} scan",
    )


@pytest.mark.parametrize("page_size", [5, 10])
def test_pagination_latency(session, benchmark, page_size):
    """Later pages re-rank but reuse all warm per-session state."""

    def walk_pages():
        list(session.query(ALEXIA).text("history")
             .page_size(page_size).pages(max_pages=3))

    benchmark(walk_pages)

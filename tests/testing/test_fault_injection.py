"""The fault-injection subsystem: registry semantics and real fault sites.

Two layers under test.  The *registry* (``repro.core.faults`` +
``repro.testing.faults``): arming is explicit, typo-proof, budgeted, and
reversible — a production process that never imports ``repro.testing``
can never fire a handler.  The *sites*: a fault armed at a real seam
(WAL fsync, snapshot bytes) produces the failure the durability layer
claims to survive, and the typed error actually surfaces.
"""

from __future__ import annotations

import pytest

import factories
from repro.core import faults as core_faults
from repro.errors import PersistenceError
from repro.management.persist import snapshot_graph
from repro.management.wal import OP_NODE, WalWriter
from repro.testing import (
    FaultPhase,
    FaultSchedule,
    arm,
    armed_faults,
    disarm_all,
    file_corruptor,
    raising,
    sleeping,
)


@pytest.fixture(autouse=True)
def _always_disarm():
    """No test may leak armed faults into its neighbours."""
    disarm_all()
    yield
    disarm_all()


class TestRegistry:
    def test_unarmed_fault_point_is_a_no_op(self):
        assert core_faults.armed() == ()
        core_faults.fault_point("wal.fsync", path="/nowhere")  # no raise

    def test_arming_an_unknown_name_is_a_typo(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            arm({"wal.fsycn": raising(lambda: OSError("boom"))})

    def test_armed_handler_fires_with_site_context(self):
        seen: list[tuple[str, dict]] = []
        arm({"wal.fsync": lambda name, **info: seen.append((name, info))})
        core_faults.fault_point("wal.fsync", path="/segment")
        assert seen == [("wal.fsync", {"path": "/segment"})]

    def test_other_sites_stay_silent(self):
        arm({"wal.fsync": raising(lambda: OSError("boom"))})
        core_faults.fault_point("persist.snapshot", path="/x")  # unarmed

    def test_context_manager_disarms_on_exit(self):
        with armed_faults({"serve.batch": sleeping(0.0)}):
            assert core_faults.armed() == ("serve.batch",)
        assert core_faults.armed() == ()

    def test_budgeted_handler_fires_exactly_n_times(self):
        arm({"wal.fsync": raising(lambda: OSError("boom"), times=2)})
        for _ in range(2):
            with pytest.raises(OSError):
                core_faults.fault_point("wal.fsync")
        core_faults.fault_point("wal.fsync")  # budget exhausted: no-op

    def test_disjoint_arms_compose(self):
        arm({"wal.fsync": sleeping(0.0)})
        arm({"serve.batch": sleeping(0.0)})
        assert core_faults.armed() == ("serve.batch", "wal.fsync")


class TestSchedule:
    def test_phases_arm_and_disarm_on_index(self):
        schedule = FaultSchedule([
            FaultPhase(start=10, stop=20, handlers={
                "wal.fsync": sleeping(0.0),
            }),
            FaultPhase(start=15, stop=30, handlers={
                "serve.batch": sleeping(0.0),
            }),
        ])
        schedule.poll(0)
        assert schedule.active == ()
        schedule.poll(10)
        assert schedule.active == ("wal.fsync",)
        schedule.poll(15)
        assert schedule.active == ("serve.batch", "wal.fsync")
        schedule.poll(20)
        assert schedule.active == ("serve.batch",)
        schedule.poll(30)
        assert schedule.active == ()

    def test_finish_disarms_everything(self):
        schedule = FaultSchedule([
            FaultPhase(start=0, stop=100, handlers={
                "wal.fsync": sleeping(0.0),
            }),
        ])
        schedule.poll(0)
        assert core_faults.armed() == ("wal.fsync",)
        schedule.finish()
        assert core_faults.armed() == ()


class TestRealSites:
    def test_wal_fsync_fault_surfaces_the_os_error(self, tmp_path):
        writer = WalWriter(tmp_path, fsync_every_append=True)
        writer.append(OP_NODE, {"id": "u1"})
        arm({"wal.fsync": raising(lambda: OSError("injected EIO"), times=1)})
        with pytest.raises(OSError, match="injected EIO"):
            writer.append(OP_NODE, {"id": "u2"})
        # budget spent: the writer works again (same durability contract)
        writer.append(OP_NODE, {"id": "u3"})
        writer.close()

    def test_corrupted_snapshot_is_refused_at_recovery(self, tmp_path):
        from repro.api import Session

        session = Session.from_graph(factories.tiny_travel_graph())
        # corrupt the first durable file written (a shard, before the
        # manifest): the bytes flip AFTER the CRC is taken, so the
        # read-side verify is what must catch it
        arm({"persist.snapshot": file_corruptor(times=1)})
        session.save(tmp_path)
        disarm_all()
        with pytest.raises(PersistenceError):
            snapshot_graph(tmp_path)

    def test_clean_snapshot_round_trips(self, tmp_path):
        from repro.api import Session

        graph = factories.tiny_travel_graph()
        session = Session.from_graph(graph)
        session.save(tmp_path)
        recovered = snapshot_graph(tmp_path)
        assert set(recovered.node_ids()) == set(graph.node_ids())

"""The plan package of the restricted-imports fixture."""

"""Pooled execution: worker pools (threads *and* processes) + scheduler.

A physical plan is a DAG of side-effect-free operators (the
:class:`~repro.plan.physical.PhysicalOp` / ``ExecContext`` contract:
operators read their inputs and the context's providers, and write only
their own memo/profile slots).  That makes independent sub-plans — union
branches, the two sides of the social stage, per-shard scan tasks —
safely schedulable on a worker pool.

Four pieces live here:

* :class:`WorkerPool` — a lazily-started ``ThreadPoolExecutor`` wrapper
  with task accounting.  One process-wide pool is shared by default
  (:func:`shared_worker_pool`): executor threads are a per-process
  resource exactly like the shared plan cache, and serving stacks should
  not each spin up their own.
* :class:`ProcessShardPool` — the true-multicore backend: spawned worker
  processes each hold their shards' :class:`ColumnarShardView` resident,
  with the position indexes (type buckets, term postings, link buckets)
  attached zero-copy from a ``multiprocessing.shared_memory`` slab.
  Only picklable :class:`~repro.plan.columnar.ScanProgram` descriptors
  travel to workers and compact position sets travel back, so on GIL
  builds the per-row work actually runs on other cores.
* :class:`ProcessBackend` — the per-execution adapter scatter operators
  call: lazily ships the current slab version on first use and routes
  each shard's scan to its resident worker.
* :func:`execute_pooled` — a dataflow scheduler: every operator becomes a
  task once all of its children have finished; *expandable* operators
  (the sharded scan) fan out into one task per shard plus a finalizer.
  Nothing ever blocks inside a worker waiting for another task, so the
  schedule is deadlock-free at any pool size.

Sequential execution (``PhysicalOp.execute``) remains the default for
small plans — the compiler's cost threshold decides, because pool
handoff latency swamps sub-millisecond operators.

This module is the *only* place in the tree allowed to touch
``multiprocessing`` (archcheck rule L004): process lifecycle, pipe
protocol and shared-memory ownership stay in one reviewable file.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.faults import fault_point
from repro.core.partition import SLAB_ITEMSIZE, pack_sections, unpack_sections
from repro.core.resilience import OPEN, CircuitBreaker
from repro.plan.columnar import (
    ColumnarShardView,
    ScanProgram,
    run_scan_program,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.graph import SocialContentGraph
    from repro.plan.physical import ExecContext, PhysicalOp

try:
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always bakes numpy in
    _np = None

#: Default pool width: bounded so a serving box is not oversubscribed by
#: plan execution alone (request-level parallelism exists too).
DEFAULT_MAX_WORKERS = max(2, min(8, os.cpu_count() or 2))

#: Default process-worker count: one per core up to the thread-pool
#: bound; a single-core box still gets one worker (the parity and
#: protocol machinery must work there even though it cannot win).
DEFAULT_PROCESS_WORKERS = max(1, min(8, os.cpu_count() or 1))

#: Seconds a coordinator waits on a worker pipe before declaring the
#: worker poisoned (and degrading the execution to threads).
PROCESS_REPLY_TIMEOUT_S = float(os.environ.get("REPRO_PROCESS_TIMEOUT_S", 60))

#: how long a tripped process pool stays open before the breaker lets a
#: recovery probe through (chaos/bench runs shrink this to demonstrate
#: self-healing; the generous default keeps degraded serving stable)
POOL_BREAKER_COOLDOWN_S = float(
    os.environ.get("REPRO_POOL_BREAKER_COOLDOWN_S", 5.0)
)


class ProcessPoolError(RuntimeError):
    """A process worker failed (died, timed out, or errored).

    Scatter operators catch exactly this and degrade the execution to
    the in-process path — a poisoned worker must never fail a query.
    """


class WorkerPool:
    """A lazily-started thread pool with task accounting.

    The underlying executor is created on first use (importing the plan
    package must not spawn threads) and reused for every plan afterwards;
    ``tasks_run`` counts scheduled operator tasks, which the benchmarks
    and the EXPLAIN header read.

    Fork-safe: the pool stamps its creating PID and re-validates on
    every use.  An ``os.fork`` (Linux's default ``multiprocessing``
    start method) clones the pool object into the child but *not* its
    executor threads — submitting to the inherited executor would queue
    work no thread will ever run, and the inherited lock may be held by
    a thread that does not exist in the child.  Detecting the PID change
    replaces both with fresh ones before they can deadlock.
    """

    def __init__(self, max_workers: int | None = None,
                 name: str = "plan-worker"):
        self.max_workers = (
            max_workers if max_workers is not None else DEFAULT_MAX_WORKERS
        )
        if self.max_workers <= 0:
            raise ValueError(
                f"max_workers must be positive, got {self.max_workers!r}"
            )
        self._name = name
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self.tasks_run = 0

    def _revalidate(self) -> None:
        """Replace fork-inherited executor state with fresh objects.

        Must swap ``_lock`` *before* acquiring anything: the inherited
        lock may have been held mid-``submit`` at fork time by a parent
        thread that does not exist here, so acquiring it would block
        forever.  Single-threaded in the child at this point (fork
        clones only the calling thread), so the swap is safe — and the
        fresh, uncontended lock then guards the state reset.
        """
        if self._pid != os.getpid():
            self._lock = threading.Lock()
            with self._lock:
                self._executor = None
                self._pid = os.getpid()

    @property
    def executor(self) -> ThreadPoolExecutor:
        self._revalidate()
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix=self._name,
                    )
        return self._executor

    def submit(self, fn: Callable, *args: object, **kwargs: object) -> Future:
        self._revalidate()
        with self._lock:
            self.tasks_run += 1
        return self.executor.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._revalidate()
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:
        started = self._executor is not None
        return (
            f"WorkerPool(max_workers={self.max_workers}, "
            f"started={started}, tasks_run={self.tasks_run})"
        )


# -- process backend ----------------------------------------------------------


def _attach_segment(name: str) -> Any:
    """Attach to an existing shared-memory segment, without tracking.

    The *coordinator* owns unlinking; workers only map.  Python ≥ 3.13
    has ``track=False`` for exactly this.  On earlier interpreters the
    attach spuriously re-registers the name — harmless here, because
    spawned workers share the parent's resource-tracker process and its
    per-type ledger is a *set*: the re-registration is idempotent and
    the coordinator's eventual ``unlink`` balances it.  (An explicit
    worker-side unregister would instead over-drain the shared ledger
    and make the tracker raise ``KeyError`` on the coordinator's turn.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on interpreter minor
        return shared_memory.SharedMemory(name=name)


def _close_segment(segment: Any) -> None:
    """Unmap a worker-resident segment once its views are dropped.

    The position indexes are zero-copy views over the segment's buffer,
    so the mmap cannot close while any survive; a ``gc.collect`` frees
    the just-dropped view dict's arrays first.  If an export somehow
    still pins the buffer, leaking one mapping beats crashing the
    worker — the coordinator's unlink reclaims the backing file either
    way.
    """
    if segment is None:
        return
    import gc

    gc.collect()
    try:
        segment.close()
    except BufferError:  # pragma: no cover - defensive
        pass


def _rebuild_views(payload: dict, buffer: Any) -> dict[int, ColumnarShardView]:
    """Worker-side: shard payloads + slab buffer → resident views.

    Node and link records come from the pickled payload (object graphs
    cannot live in a byte slab); every position index — type buckets,
    term postings, link-type buckets — is a zero-copy view over the
    shared slab, so repeated scans never rebuild or copy them.
    """
    wrap = (lambda mv: _np.asarray(mv)) if _np is not None else None
    views: dict[int, ColumnarShardView] = {}
    for shard, entry in payload["shards"].items():
        view = ColumnarShardView(entry["nodes"], entry["links"])
        sections = unpack_sections(entry["directory"], buffer, wrap=wrap)
        view.adopt_precomputed(
            type_buckets=sections.get("type_buckets"),
            term_postings=sections.get("term_postings"),
            link_type_buckets=sections.get("link_type_buckets"),
        )
        views[shard] = view
    return views


def _process_worker_main(conn: Any) -> None:
    """The worker loop: hold shard views resident, serve shipped scans.

    Protocol (coordinator → worker):

    * ``("slabs", version, payload_bytes, segment_name)`` — drop any
      resident views, attach the named slab segment (``None`` = inline
      buffer in the payload), rebuild this worker's shard views, ack
      with ``("ok", pid)``.
    * ``("scan", version, shard, program_bytes)`` — run the program over
      the resident view; reply ``("ok", positions, scan_s, pid)``.  A
      version mismatch is an error: the coordinator always ships before
      scanning, so a mismatch means a protocol bug, not a race.
    * ``("stop",)`` — exit.

    Any per-message failure is reported as ``("err", repr)`` and the
    loop continues — one bad program must not kill the resident views.
    """
    views: dict[int, ColumnarShardView] = {}
    version: Any = None
    segment: Any = None
    pid = os.getpid()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "slabs":
                _, new_version, payload_bytes, segment_name = message
                payload = pickle.loads(payload_bytes)
                views = {}
                old_segment, segment = segment, None
                _close_segment(old_segment)
                if segment_name is not None:
                    segment = _attach_segment(segment_name)
                    buffer = segment.buf
                else:
                    buffer = payload["slab"]
                views = _rebuild_views(payload, buffer)
                version = new_version
                conn.send(("ok", pid))
            elif kind == "scan":
                _, want_version, shard, program_bytes = message
                if want_version != version:
                    raise ProcessPoolError(
                        f"scan for slab version {want_version!r} but "
                        f"worker holds {version!r}"
                    )
                program: ScanProgram = pickle.loads(program_bytes)
                start = time.perf_counter()
                rows = run_scan_program(views[shard], program)
                scan_s = time.perf_counter() - start
                conn.send(("ok", rows, scan_s, pid))
            else:
                raise ProcessPoolError(f"unknown message kind {kind!r}")
        except BaseException as error:
            try:
                conn.send(("err", repr(error)))
            except (BrokenPipeError, OSError):
                break
    views = {}
    _close_segment(segment)
    conn.close()


class _ProcessWorker:
    """Coordinator-side handle: one spawned process + its pipe + lock."""

    __slots__ = ("process", "conn", "lock")

    def __init__(self, process: Any, conn: Any):
        self.process = process
        self.conn = conn
        #: serialises pipe round-trips — shard subtasks on the thread
        #: pool may target the same worker concurrently
        self.lock = threading.Lock()

    def request(self, message: tuple, timeout: float) -> tuple:
        """One send/recv round-trip; raises ProcessPoolError on failure."""
        fault_point("parallel.worker_request", worker=self)
        with self.lock:
            try:
                self.conn.send(message)
                if not self.conn.poll(timeout):
                    raise ProcessPoolError(
                        f"worker pid={self.process.pid} did not reply "
                        f"within {timeout:.0f}s"
                    )
                reply = self.conn.recv()
            except ProcessPoolError:
                raise
            except (EOFError, OSError, BrokenPipeError) as error:
                raise ProcessPoolError(
                    f"worker pid={self.process.pid} pipe failed: {error!r}"
                ) from error
        if reply[0] == "err":
            raise ProcessPoolError(
                f"worker pid={self.process.pid} errored: {reply[1]}"
            )
        return reply


class ProcessShardPool:
    """Spawned worker processes holding shard views in shared memory.

    The true-multicore backend behind ``parallelism="processes"``: each
    worker owns the shards that hash to it (``shard % num_workers``) and
    keeps their columnar views *resident* across executions, so a scan
    ships only a :class:`~repro.plan.columnar.ScanProgram` and receives
    only surviving row positions.  Shard slabs — every position index of
    every shard, packed int64 — live in one shared-memory segment per
    version: workers attach, never copy.

    **Versioning**: :meth:`ensure_version` stamps each shipped slab with
    the planner's ``(generation, mutation_epoch)`` token.  A graph write
    changes the token, so the next execution re-ships fresh views and
    the old segment is unlinked — a worker can never scan pre-mutation
    columns (the invalidation contract the in-process paths get from
    lazy view re-cutting).

    **Start method**: always ``spawn``.  Fork would clone the
    coordinator's heap (locks, pools, cached views) into workers; spawn
    keeps workers minimal and makes the picklability contract explicit.

    **Failure**: any worker error trips the pool's circuit breaker
    *open*; executions degrade to the in-process path (see the degrade
    ladder in ``docs/ARCHITECTURE.md``).  After ``breaker_cooldown_s``
    the breaker goes half-open and the planner sends one probe
    execution through; a successful probe re-ships fresh views (dead
    workers are reaped and respawned first) and re-closes the circuit —
    the pool self-heals without a manual :meth:`reset`.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        breaker_cooldown_s: float | None = None,
    ):
        self.num_workers = (
            num_workers if num_workers is not None else DEFAULT_PROCESS_WORKERS
        )
        if self.num_workers <= 0:
            raise ValueError(
                f"num_workers must be positive, got {self.num_workers!r}"
            )
        self._workers: list[_ProcessWorker] = []
        self._lock = threading.Lock()
        self._version: Any = None
        self._segment: Any = None
        #: the ladder's processes→threads step: open = skip the backend.
        #: Worker faults are structural (a dead process stays dead), so
        #: failures force the circuit open rather than being rate-graded
        self.breaker = CircuitBreaker(
            "process_pool",
            cooldown_s=(
                breaker_cooldown_s
                if breaker_cooldown_s is not None
                else POOL_BREAKER_COOLDOWN_S
            ),
        )
        #: scans served by workers (the bench/EXPLAIN accounting)
        self.scans_run = 0
        #: slab ships performed (one per adopted version)
        self.ships_run = 0

    @property
    def broken(self) -> bool:
        """True while the circuit is open (cooldown not yet elapsed)."""
        return self.breaker.state == OPEN

    # -- lifecycle ------------------------------------------------------------

    def _ensure_workers_locked(self) -> None:
        if self._workers:
            return
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        try:
            for _ in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_process_worker_main, args=(child_conn,),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append(_ProcessWorker(process, parent_conn))
        except Exception as error:
            # e.g. spawn refused while the main module is still importing
            # (an unguarded script __main__) — degrade, don't crash
            raise ProcessPoolError(
                f"could not spawn workers: {error!r}"
            ) from error

    def shutdown(self) -> None:
        """Stop workers and unlink the resident segment."""
        with self._lock:
            workers, self._workers = self._workers, []
            segment, self._segment = self._segment, None
            self._version = None
        self._teardown(workers, segment)

    @staticmethod
    def _teardown(workers: list[_ProcessWorker], segment: Any) -> None:
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            worker.conn.close()
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.kill()
                worker.process.join(timeout=5)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass

    def _reap_dead_locked(self) -> bool:
        """Tear down the worker set if any process died; True if reaped.

        Caller holds ``_lock``.  The recovery probe path: a half-open
        ship finds the corpses, clears the resident version, and the
        normal ship flow respawns a fresh set.
        """
        if not self._workers:
            return False
        if all(w.process.is_alive() for w in self._workers):
            return False
        workers, self._workers = self._workers, []
        segment, self._segment = self._segment, None
        self._version = None
        self._teardown(workers, segment)
        return True

    def reset(self) -> None:
        """Recover immediately: fresh workers on next use, circuit closed."""
        self.shutdown()
        self.breaker.reset()

    # -- slab shipping --------------------------------------------------------

    def _pack_views(
        self, views: Sequence[ColumnarShardView]
    ) -> tuple[list[dict], bytearray]:
        """Pack every view's position indexes into one flat slab.

        Returns per-shard directories (offsets into the shared slab) and
        the slab bytes.  Term postings ship only when the coordinator
        view already built them — an unbuilt posting table means no
        keyword query has run this generation, and workers build their
        own lazily if one arrives.
        """
        directories: list[dict] = []
        chunks: list[bytearray] = []
        base = 0
        for view in views:
            groups: dict[str, Any] = {
                "type_buckets": view.type_buckets(),
                "link_type_buckets": view.link_type_buckets(),
            }
            if view._term_postings is not None:
                groups["term_postings"] = view.term_postings()
            directory, chunk = pack_sections(groups)
            directories.append({
                group: {
                    key: (offset + base, count)
                    for key, (offset, count) in sections.items()
                }
                for group, sections in directory.items()
            })
            chunks.append(chunk)
            base += len(chunk) // SLAB_ITEMSIZE
        slab = bytearray()
        for chunk in chunks:
            slab.extend(chunk)
        return directories, slab

    def ensure_version(
        self, token: Any, views: Sequence[ColumnarShardView]
    ) -> float:
        """Make *views* resident in every worker under *token*.

        Returns the shipping wall-time (0.0 when the version is already
        resident — the common case on every execution after the first of
        a generation).  Old segments are unlinked only after every
        worker has acked the new version, so no in-flight scan can lose
        its mapping.
        """
        with self._lock:
            if self.breaker.state == OPEN:
                raise ProcessPoolError("process pool circuit open")
            reaped = self._reap_dead_locked()
            if self._version == token and self._workers and not reaped:
                return 0.0
            start = time.perf_counter()
            segment = None
            try:
                fault_point("parallel.ship_slabs", token=token)
                self._ensure_workers_locked()
                directories, slab = self._pack_views(views)
                segment_name = None
                if len(slab) > 0:
                    from multiprocessing import shared_memory

                    segment = shared_memory.SharedMemory(
                        create=True, size=max(len(slab), 1)
                    )
                    segment.buf[: len(slab)] = slab
                    segment_name = segment.name
                for index, worker in enumerate(self._workers):
                    shards = {
                        shard: {
                            "nodes": view.nodes,
                            "links": view.links,
                            "directory": directories[shard],
                        }
                        for shard, view in enumerate(views)
                        if shard % self.num_workers == index
                    }
                    payload: dict[str, Any] = {"shards": shards}
                    if segment_name is None:
                        payload["slab"] = bytes(slab)
                    worker.request(
                        (
                            "slabs",
                            token,
                            pickle.dumps(
                                payload, protocol=pickle.HIGHEST_PROTOCOL
                            ),
                            segment_name,
                        ),
                        PROCESS_REPLY_TIMEOUT_S,
                    )
            except Exception as error:
                # any ship failure — spawn refusal, an unpicklable record
                # attribute, a dead pipe — trips the circuit; callers
                # degrade to the in-process path until the cooldown
                self.breaker.force_open()
                if segment is not None:
                    segment.close()
                    segment.unlink()
                if isinstance(error, ProcessPoolError):
                    raise
                raise ProcessPoolError(
                    f"slab ship failed: {error!r}"
                ) from error
            old_segment, self._segment = self._segment, segment
            self._version = token
            self.ships_run += 1
            self.breaker.record_success()
            if old_segment is not None:
                old_segment.close()
                try:
                    old_segment.unlink()
                except FileNotFoundError:  # pragma: no cover - defensive
                    pass
            return time.perf_counter() - start

    # -- scans ----------------------------------------------------------------

    def scan(
        self, shard: int, program: ScanProgram
    ) -> tuple[list[int], float, int]:
        """Run *program* on the worker holding *shard*.

        Returns ``(positions, worker_scan_seconds, worker_pid)``.  Any
        failure trips the circuit open and raises
        :class:`ProcessPoolError` — the caller degrades to threads.
        """
        if self.breaker.state == OPEN:
            raise ProcessPoolError("process pool circuit open")
        with self._lock:
            if not self._workers:
                raise ProcessPoolError("no slab version shipped yet")
            worker = self._workers[shard % self.num_workers]
            version = self._version
        try:
            reply = worker.request(
                (
                    "scan",
                    version,
                    shard,
                    pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL),
                ),
                PROCESS_REPLY_TIMEOUT_S,
            )
        except ProcessPoolError:
            self.breaker.force_open()
            raise
        with self._lock:
            self.scans_run += 1
        self.breaker.record_success()
        _, rows, scan_s, pid = reply
        return rows, scan_s, pid

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (the CI smoke asserts these ≠ main)."""
        with self._lock:
            return [w.process.pid for w in self._workers if w.process.pid]

    def __repr__(self) -> str:
        return (
            f"ProcessShardPool(num_workers={self.num_workers}, "
            f"started={bool(self._workers)}, broken={self.broken}, "
            f"scans_run={self.scans_run})"
        )


class ProcessBackend:
    """Per-execution adapter binding a pool to one slab version.

    Scatter operators see one method: :meth:`scan`.  The first scan of
    an execution ships the planner's current views under its
    ``(generation, mutation_epoch)`` token (a no-op when resident);
    shipping cost is amortised evenly over the execution's shards so the
    EXPLAIN ship/scan split sums to the true wall cost.
    """

    def __init__(self, pool: ProcessShardPool, token: Any,
                 views: Sequence[ColumnarShardView]):
        self.pool = pool
        self.token = token
        self.views = views
        self._ship_s: float | None = None
        self._lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self.pool.num_workers

    def scan(
        self, shard: int, program: ScanProgram
    ) -> tuple[list[int], float, float, int]:
        """Ship-if-needed, then scan: ``(rows, ship_s, scan_s, pid)``."""
        with self._lock:
            if self._ship_s is None:
                self._ship_s = self.pool.ensure_version(self.token, self.views)
        rows, scan_s, pid = self.pool.scan(shard, program)
        ship_share = self._ship_s / max(len(self.views), 1)
        return rows, ship_share, scan_s, pid


_shared_pool: WorkerPool | None = None
_shared_pool_lock = threading.Lock()


def shared_worker_pool() -> WorkerPool:
    """The process-wide pool plan execution defaults to."""
    global _shared_pool
    if _shared_pool is None:
        with _shared_pool_lock:
            if _shared_pool is None:
                _shared_pool = WorkerPool()
    return _shared_pool


def execute_pooled(
    root: "PhysicalOp", ctx: "ExecContext", pool: WorkerPool
) -> "SocialContentGraph":
    """Run a physical DAG on *pool*, operators firing as inputs complete.

    Produces exactly the graphs (and operator profiles) sequential
    execution would — the parity suite holds the two equal — but
    wall-clock is bounded by the critical path instead of the operator
    sum.  Scheduling state lives entirely in this call frame; the context
    is only written through the operators' own profiling slots, plus
    ``ctx.workers`` recording which pool thread ran each operator.
    """
    ops: dict[int, "PhysicalOp"] = {}
    postorder: list["PhysicalOp"] = []

    def collect(op: "PhysicalOp") -> None:
        if id(op) in ops:
            return
        ops[id(op)] = op
        for child in op.children:
            collect(child)
        postorder.append(op)

    collect(root)

    dependents: dict[int, list["PhysicalOp"]] = {key: [] for key in ops}
    pending: dict[int, int] = {}
    for op in postorder:
        unique_children = {id(child) for child in op.children}
        pending[id(op)] = len(unique_children)
        for child_key in unique_children:
            dependents[child_key].append(op)

    state_lock = threading.Lock()
    done = threading.Event()
    failures: list[BaseException] = []
    #: per-expanded-op remaining subtask count and collected parts
    fanout: dict[int, list] = {}

    def fail(error: BaseException) -> None:
        with state_lock:
            failures.append(error)
        done.set()

    def op_finished(op: "PhysicalOp") -> None:
        if op is root:
            done.set()
            return
        ready: list["PhysicalOp"] = []
        with state_lock:
            for parent in dependents[id(op)]:
                pending[id(parent)] -= 1
                if pending[id(parent)] == 0:
                    ready.append(parent)
        for parent in ready:
            schedule(parent)

    def run_plain(op: "PhysicalOp") -> None:
        try:
            inputs = [ctx.memo[id(child)] for child in op.children]
            op.run_profiled(ctx, inputs)
        except BaseException as error:  # surfaced to the caller
            fail(error)
            return
        op_finished(op)

    def run_subtask(op: "PhysicalOp", index: int, task: Callable) -> None:
        try:
            part = task()
        except BaseException as error:
            fail(error)
            return
        finalize = False
        with state_lock:
            slots = fanout[id(op)]
            slots[0] -= 1
            slots[1][index] = part
            finalize = slots[0] == 0
        if finalize:
            run_finalize(op)

    def run_finalize(op: "PhysicalOp") -> None:
        try:
            inputs = [ctx.memo[id(child)] for child in op.children]
            parts = fanout[id(op)][1]
            op.finish_subtasks(ctx, inputs, parts)
        except BaseException as error:
            fail(error)
            return
        op_finished(op)

    def schedule(op: "PhysicalOp") -> None:
        if failures:
            return
        if (
            op.memo_key is not None
            and ctx.result_cache is not None
            and op.memo_key in ctx.result_cache
        ):
            # the sub-plan memo already holds this result: don't fan out,
            # let run_profiled serve (and profile) the memo hit
            pool.submit(run_plain, op)
            return
        inputs = [ctx.memo[id(child)] for child in op.children]
        try:
            tasks = op.subtasks(ctx, inputs)
        except BaseException as error:
            fail(error)
            return
        if not tasks:
            pool.submit(run_plain, op)
            return
        with state_lock:
            fanout[id(op)] = [len(tasks), [None] * len(tasks)]
        for index, task in enumerate(tasks):
            pool.submit(run_subtask, op, index, task)

    initially_ready = [op for op in postorder if pending[id(op)] == 0]
    for op in initially_ready:
        schedule(op)
    done.wait()
    if failures:
        raise failures[0]
    return ctx.memo[id(root)]

"""The SocialScope social content algebra (paper §§4-5).

This subpackage is the paper's primary contribution: a logical algebra whose
operators take social content graphs in and produce social content graphs
out, closing the loop for declarative analysis and discovery pipelines.

Quick map (paper → code):

=========================  ==========================================
Definition 1 / 2           :func:`select_nodes` / :func:`select_links`
Definition 3               :func:`union`, :func:`intersection`, :func:`minus`
Definition 4 + Lemma 1     :func:`link_minus`, :func:`link_minus_via_semijoin`
Definition 5 (class CF)    :func:`compose` (+ :mod:`repro.core.composition` helpers)
Definition 6               :func:`semi_join`, :func:`anti_semi_join`
Definitions 7-8 (SAF/NAF)  :mod:`repro.core.aggfuncs`
Definitions 9-10           :func:`aggregate_nodes`, :func:`aggregate_links`
Figure 2 patterns          :mod:`repro.core.patterns`
Examples 4-5               :mod:`repro.core.recipes`
Expression plans           :mod:`repro.core.expr`, :mod:`repro.core.optimizer`
=========================  ==========================================
"""

from repro.core.aggfuncs import (
    AttrMap,
    ConstAgg,
    First,
    Max,
    Min,
    Naf,
    NumericAgg,
    One,
    Prod,
    SetAgg,
    Sum,
    Zero,
    Attr,
    average,
    count,
    total,
)
from repro.core.aggregation import aggregate_links, aggregate_nodes
from repro.core.attrs import SCORE_ATTR, TYPE_ATTR
from repro.core.catalog import DEFAULT_CATALOG, TypeCatalog
from repro.core.composition import (
    CarryScore,
    CompositionContext,
    CopyAttrs,
    JaccardOnNodeSets,
    compose,
)
from repro.core.conditions import (
    And,
    AttrCompare,
    AttrEquals,
    Condition,
    HasAttr,
    HasType,
    Lambda,
    Not,
    Or,
    Predicate,
    TruePredicate,
    as_condition,
)
from repro.core.expr import input_graph, iter_plan_nodes, literal, plan_key, same_expr
from repro.core.graph import Id, Link, Node, SocialContentGraph, graph_from_edges
from repro.core.optimizer import decompose_pattern_aggregation, optimize
from repro.core.patterns import (
    PathLinkAvg,
    PathLinkSum,
    PathCount,
    PathMatch,
    PathPattern,
    Step,
    aggregate_pattern,
    figure2_pattern,
    find_paths,
)
from repro.core.recipes import (
    example4_search,
    example5_collaborative_filtering,
    figure2_collaborative_filtering,
    recommendations_from,
)
from repro.core.scoring import (
    AttributeScorer,
    CombinedScorer,
    ConstantScorer,
    DefaultKeywordScorer,
    TfIdfScorer,
)
from repro.core.selection import select_links, select_nodes
from repro.core.serialize import (
    dump_json,
    dump_jsonl,
    graph_from_dict,
    graph_to_dict,
    load_json,
    load_jsonl,
)
from repro.core.semijoin import anti_semi_join, semi_join
from repro.core.setops import (
    intersection,
    link_minus,
    link_minus_via_semijoin,
    minus,
    symmetric_difference,
    union,
)
from repro.core.stats import GraphStats

__all__ = [
    # graph model
    "Node", "Link", "SocialContentGraph", "Id", "graph_from_edges",
    "TYPE_ATTR", "SCORE_ATTR", "TypeCatalog", "DEFAULT_CATALOG",
    # conditions & scoring
    "Condition", "Predicate", "TruePredicate", "AttrEquals", "AttrCompare",
    "HasAttr", "HasType", "Lambda", "And", "Or", "Not", "as_condition",
    "DefaultKeywordScorer", "TfIdfScorer", "ConstantScorer",
    "AttributeScorer", "CombinedScorer",
    # operators
    "select_nodes", "select_links",
    "union", "intersection", "minus", "link_minus",
    "link_minus_via_semijoin", "symmetric_difference",
    "semi_join", "anti_semi_join", "compose",
    "aggregate_nodes", "aggregate_links",
    # composition functions
    "CompositionContext", "CopyAttrs", "JaccardOnNodeSets", "CarryScore",
    # aggregation functions
    "SetAgg", "Naf", "Zero", "One", "Attr", "Sum", "Prod", "NumericAgg",
    "count", "total", "average", "Min", "Max", "First", "ConstAgg", "AttrMap",
    # patterns
    "PathPattern", "Step", "PathMatch", "find_paths", "aggregate_pattern",
    "PathLinkAvg", "PathLinkSum", "PathCount", "figure2_pattern",
    # recipes
    "example4_search", "example5_collaborative_filtering",
    "figure2_collaborative_filtering", "recommendations_from",
    # plans
    "input_graph", "literal", "optimize", "decompose_pattern_aggregation",
    "plan_key", "same_expr", "iter_plan_nodes",
    "GraphStats",
    # serialization
    "graph_to_dict", "graph_from_dict",
    "dump_json", "load_json", "dump_jsonl", "load_jsonl",
]

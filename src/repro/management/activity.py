"""The Activity Manager: categorizing users by their activity (paper §3/§6).

    "Data Manager needs to make decisions on when and how to refresh parts
    of the social graph efficiently.  The Activity Manager helps in that
    regard by categorizing users based on their activities."

and from §6.2's further discussion:

    "a user who is highly connected may require more frequent
    synchronization of his network from social sites."

:class:`ActivityManager` assigns each user an activity category from their
recent activity count and a connectivity level from their degree, and turns
the two into a refresh interval (smaller = refresh more often) consumed by
:class:`repro.management.sync.SyncScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core import Id, SocialContentGraph


class ActivityCategory(str, Enum):
    """Coarse user activity bands."""

    HEAVY = "heavy"
    MEDIUM = "medium"
    LIGHT = "light"
    DORMANT = "dormant"


#: Default refresh interval (in scheduler ticks) per activity category.
DEFAULT_INTERVALS: dict[ActivityCategory, int] = {
    ActivityCategory.HEAVY: 1,
    ActivityCategory.MEDIUM: 4,
    ActivityCategory.LIGHT: 12,
    ActivityCategory.DORMANT: 48,
}

#: Connectivity multiplier: highly connected users sync even more often.
CONNECTIVITY_BOOST = 0.5  # interval x 0.5 when in the top connectivity band


@dataclass
class UserActivityProfile:
    """Per-user numbers the categorization is based on."""

    user_id: Id
    activities: int = 0
    connections: int = 0
    category: ActivityCategory = ActivityCategory.DORMANT
    refresh_interval: int = DEFAULT_INTERVALS[ActivityCategory.DORMANT]


class ActivityManager:
    """Categorizes users and derives refresh intervals."""

    def __init__(
        self,
        heavy_threshold: int = 10,
        medium_threshold: int = 4,
        light_threshold: int = 1,
        intervals: dict[ActivityCategory, int] | None = None,
        connectivity_quantile: float = 0.9,
    ):
        self.heavy_threshold = heavy_threshold
        self.medium_threshold = medium_threshold
        self.light_threshold = light_threshold
        self.intervals = dict(intervals or DEFAULT_INTERVALS)
        self.connectivity_quantile = connectivity_quantile
        self.profiles: dict[Id, UserActivityProfile] = {}

    def categorize(self, activities: int) -> ActivityCategory:
        """Map an activity count to a category."""
        if activities >= self.heavy_threshold:
            return ActivityCategory.HEAVY
        if activities >= self.medium_threshold:
            return ActivityCategory.MEDIUM
        if activities >= self.light_threshold:
            return ActivityCategory.LIGHT
        return ActivityCategory.DORMANT

    def analyze(self, graph: SocialContentGraph) -> dict[Id, UserActivityProfile]:
        """Profile every user node of *graph*.

        Activity = outgoing ``act`` links; connectivity = ``connect``
        degree (both directions).  The top ``1 - connectivity_quantile``
        fraction of users by connectivity get their interval halved.
        """
        profiles: dict[Id, UserActivityProfile] = {}
        for node in graph.nodes_of_type("user"):
            profiles[node.id] = UserActivityProfile(user_id=node.id)
        for link in graph.links():
            if link.has_type("act") and link.src in profiles:
                profiles[link.src].activities += 1
            elif link.has_type("connect"):
                if link.src in profiles:
                    profiles[link.src].connections += 1
                if link.tgt in profiles:
                    profiles[link.tgt].connections += 1

        degrees = sorted(p.connections for p in profiles.values())
        if degrees:
            cut_index = min(
                len(degrees) - 1,
                int(self.connectivity_quantile * len(degrees)),
            )
            connectivity_cut = degrees[cut_index]
        else:
            connectivity_cut = 0

        for profile in profiles.values():
            profile.category = self.categorize(profile.activities)
            interval = self.intervals[profile.category]
            if degrees and profile.connections >= connectivity_cut > 0:
                interval = max(1, int(interval * CONNECTIVITY_BOOST))
            profile.refresh_interval = interval
        self.profiles = profiles
        return profiles

    def category_histogram(self) -> dict[str, int]:
        """Category -> user count (after :meth:`analyze`)."""
        histogram: dict[str, int] = {}
        for profile in self.profiles.values():
            histogram[profile.category.value] = (
                histogram.get(profile.category.value, 0) + 1
            )
        return histogram

"""Admission control: per-tenant spend budgets and a global depth cap.

A social content site serves many logical *tenants* (users, applications,
crawl partners) whose offered load is wildly skewed — the measured Digg
distributions in PAPERS.md are power laws, so a handful of heavy tenants
generate most of the traffic.  Admission control keeps that skew from
starving everyone else:

* **per-tenant spend budgets** — each tenant holds a token bucket
  (``capacity`` tokens, refilled at ``refill_per_s``); every admitted
  request spends ``request_cost`` tokens.  A tenant that exhausts its
  budget is *shed* with a typed :class:`Overloaded` outcome carrying a
  ``retry_after_s`` hint, while other tenants' budgets are untouched —
  per-tenant isolation is the whole point;
* **a global depth cap** — the gateway bounds total in-flight requests
  (queued in batch buffers plus executing); past ``max_depth`` every
  tenant sheds, because unbounded queueing just converts overload into
  latency and memory growth;
* **priorities** — each tenant carries a priority class (lower = more
  urgent) that the gateway's dispatcher uses to order ready batches, so
  paying/interactive traffic drains before background crawlers under
  contention.

The controller is deliberately clock-injectable (``clock`` defaults to
``time.monotonic``): tests drive budgets with a fake clock and assert
exact shed/refill behavior without sleeping.

All mutable state is guarded by one lock — the gateway calls ``admit``
from the event loop while storm tests hammer it from raw threads, and the
racetrack lockset detector watches exactly this discipline.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping

#: Shed reasons carried by :class:`Overloaded`.
TENANT_BUDGET = "tenant_budget"
GLOBAL_DEPTH = "global_depth"


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission contract: budget shape and priority class."""

    #: burst size — tokens the bucket holds when full
    capacity: float = 32.0
    #: sustained admission rate, tokens per second
    refill_per_s: float = 64.0
    #: dispatch priority (lower drains first under contention)
    priority: int = 10
    #: end-to-end deadline for this tenant's requests, seconds from
    #: submit; ``None`` falls back to the gateway's default (which may
    #: itself be ``None`` — no deadline, the pre-resilience behavior)
    deadline_s: float | None = None


@dataclass(frozen=True)
class AdmissionPolicy:
    """The gateway-wide admission configuration."""

    default: TenantPolicy = field(default_factory=TenantPolicy)
    #: per-tenant overrides of the default contract
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    #: hard cap on requests in flight across all tenants (queued in batch
    #: buffers + executing); 0 disables global admission entirely
    max_depth: int = 256
    #: tokens one admitted request spends
    request_cost: float = 1.0
    #: base retry hint on a depth shed — drain time of a full queue, not
    #: a budget refill; jittered per shed so a storm of rejected callers
    #: does not come back in one synchronized wave
    depth_retry_s: float = 0.05

    def for_tenant(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default)


@dataclass(frozen=True)
class Overloaded:
    """The typed shed outcome: *why* a request was turned away.

    Returned (not raised) by the gateway so a batch of concurrent callers
    can pattern-match outcomes uniformly; ``retry_after_s`` is the
    earliest time the same request could plausibly be admitted (budget
    refill for ``tenant_budget``, "soon" for ``global_depth``).
    """

    tenant: str
    reason: str  # TENANT_BUDGET | GLOBAL_DEPTH
    retry_after_s: float = 0.0

    def __post_init__(self) -> None:
        # A zero hint told every shed caller to retry *immediately* —
        # the PR-8 retry-storm fix made the controller emit positive
        # hints, and this guard keeps any new call site from quietly
        # reintroducing the storm.  (The field keeps its 0.0 default so
        # an unset hint fails loudly instead of passing silently.)
        if not self.retry_after_s > 0.0:
            raise ValueError(
                "Overloaded.retry_after_s must be a positive retry hint, "
                f"got {self.retry_after_s!r}"
            )

    @property
    def ok(self) -> bool:
        """False — the outcome discriminator shared with RequestFailure."""
        return False


@dataclass(frozen=True)
class DeadlineExceeded:
    """The typed deadline-expiry outcome — ``Overloaded``'s sibling.

    Returned (never raised, never a stuck future) by the gateway when a
    request's end-to-end deadline expires, whether it was still queued
    in a batch buffer, waiting on an executor slot, mid-plan-execution
    (the cooperative ``ExecContext`` check fired), or stranded by a
    bounded shutdown drain.  ``stage`` says where the clock ran out and
    ``elapsed_s`` is the honest submit→expiry wall time.
    """

    tenant: str
    #: where the deadline fired: ``queued`` | ``executing`` |
    #: ``shutdown``, or the plan-side stage (operator / shard label)
    stage: str
    #: seconds from submit to expiry (>= the configured deadline for
    #: timer-driven expiry; can exceed it when a wedged slot was only
    #: noticed at resolution time)
    elapsed_s: float
    #: the deadline that was in force, seconds
    deadline_s: float

    @property
    def ok(self) -> bool:
        """False — the outcome discriminator shared with RequestFailure."""
        return False


@dataclass(frozen=True)
class Admitted:
    """An admission ticket: the spend to release when the request ends."""

    tenant: str
    cost: float
    priority: int


@dataclass(frozen=True)
class AdmissionStats:
    """Counters one controller accumulated (snapshot)."""

    admitted: int
    shed_budget: int
    shed_depth: int
    depth: int
    per_tenant_admitted: Mapping[str, int]
    per_tenant_shed: Mapping[str, int]

    @property
    def shed(self) -> int:
        return self.shed_budget + self.shed_depth

    @property
    def shed_rate(self) -> float:
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0


class _TokenBucket:
    """One tenant's spend budget.  Not thread-safe on its own: the
    controller serialises every touch under its lock (a bucket never
    leaks out of the controller)."""

    def __init__(self, policy: TenantPolicy, now: float):
        self.capacity = max(0.0, policy.capacity)
        self.refill_per_s = max(0.0, policy.refill_per_s)
        self.tokens = self.capacity
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        if self.refill_per_s > 0.0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.refill_per_s
            )

    def try_spend(self, cost: float, now: float) -> bool:
        self._refill(now)
        if self.tokens + 1e-12 < cost:
            return False
        self.tokens -= cost
        return True

    def retry_after(self, cost: float, now: float) -> float:
        """Seconds until *cost* tokens will be available (0 if now)."""
        self._refill(now)
        missing = cost - self.tokens
        if missing <= 0.0:
            return 0.0
        if self.refill_per_s <= 0.0:
            return float("inf")
        return missing / self.refill_per_s


class AdmissionController:
    """Budgeted admission over many tenants plus the global depth cap."""

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, _TokenBucket] = {}
        self._depth = 0
        self._admitted = 0
        self._shed_budget = 0
        self._shed_depth = 0
        self._tenant_admitted: dict[str, int] = {}
        self._tenant_shed: dict[str, int] = {}

    # -- admission ------------------------------------------------------------

    def admit(self, tenant: str) -> Admitted | Overloaded:
        """Admit one request for *tenant*, or shed with a typed reason.

        Depth is checked first: under global overload the budget is not
        even consulted (and not spent), so a tenant's tokens survive a
        site-wide spike for when capacity returns.
        """
        cost = self.policy.request_cost
        tenant_policy = self.policy.for_tenant(tenant)
        now = self._clock()
        with self._lock:
            if self.policy.max_depth and self._depth >= self.policy.max_depth:
                self._shed_depth += 1
                self._tenant_shed[tenant] = (
                    self._tenant_shed.get(tenant, 0) + 1
                )
                return Overloaded(
                    tenant=tenant,
                    reason=GLOBAL_DEPTH,
                    retry_after_s=self._depth_retry(tenant),
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = _TokenBucket(tenant_policy, now)
                self._buckets[tenant] = bucket
            if not bucket.try_spend(cost, now):
                self._shed_budget += 1
                self._tenant_shed[tenant] = (
                    self._tenant_shed.get(tenant, 0) + 1
                )
                return Overloaded(
                    tenant=tenant,
                    reason=TENANT_BUDGET,
                    retry_after_s=bucket.retry_after(cost, now),
                )
            self._depth += 1
            self._admitted += 1
            self._tenant_admitted[tenant] = (
                self._tenant_admitted.get(tenant, 0) + 1
            )
            return Admitted(
                tenant=tenant, cost=cost, priority=tenant_policy.priority
            )

    def _depth_retry(self, tenant: str) -> float:
        """A positive, spread-out retry hint for one depth shed.

        ``retry_after_s=0.0`` told every shed caller to retry
        *immediately* — a storm of rejections became a synchronized
        retry wave that hit the still-full queue again.  The hint is the
        policy's base drain estimate plus up to 100% deterministic
        jitter keyed on the tenant and the shed ordinal, so concurrent
        victims spread over [base, 2*base) without the controller
        holding an RNG (which would also make storm tests flaky).
        Caller holds the lock (``_shed_depth`` is the ordinal).
        """
        base = max(self.policy.depth_retry_s, 1e-3)
        salt = zlib.crc32(tenant.encode("utf-8")) + self._shed_depth
        return base * (1.0 + (salt % 1024) / 1024.0)

    def release(self, ticket: Admitted) -> None:
        """Return an admitted request's depth slot (request finished)."""
        with self._lock:
            self._depth = max(0, self._depth - 1)

    # -- introspection --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently in flight (admitted, not yet released)."""
        with self._lock:
            return self._depth

    def available_tokens(self, tenant: str) -> float:
        """The tenant's current budget (capacity for unseen tenants)."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                return self.policy.for_tenant(tenant).capacity
            bucket._refill(now)
            return bucket.tokens

    def stats(self) -> AdmissionStats:
        with self._lock:
            return AdmissionStats(
                admitted=self._admitted,
                shed_budget=self._shed_budget,
                shed_depth=self._shed_depth,
                depth=self._depth,
                per_tenant_admitted=dict(self._tenant_admitted),
                per_tenant_shed=dict(self._tenant_shed),
            )


__all__ = [
    "TENANT_BUDGET",
    "GLOBAL_DEPTH",
    "TenantPolicy",
    "AdmissionPolicy",
    "Overloaded",
    "DeadlineExceeded",
    "Admitted",
    "AdmissionStats",
    "AdmissionController",
]

"""Unit tests for ∪, ∩, \\ and \\· (paper Definitions 3-4, Lemma 1)."""

from __future__ import annotations

import pytest

from repro.core import (
    Link,
    Node,
    SocialContentGraph,
    graph_from_edges,
    intersection,
    link_minus,
    link_minus_via_semijoin,
    minus,
    symmetric_difference,
    union,
)


def g_of(*edges):
    return graph_from_edges(list(edges))


class TestUnion:
    def test_basic(self):
        u = union(g_of(("a", "b")), g_of(("b", "c")))
        assert u.node_ids() == {"a", "b", "c"}
        assert u.link_ids() == {"a->b", "b->c"}

    def test_consolidates_shared_ids(self):
        g1 = SocialContentGraph()
        g1.add_node(Node(1, type="user", tags="x"))
        g2 = SocialContentGraph()
        g2.add_node(Node(1, type="traveler", tags="y"))
        u = union(g1, g2)
        assert set(u.node(1).types) == {"user", "traveler"}
        assert set(u.node(1).values("tags")) == {"x", "y"}

    def test_with_empty(self):
        g = g_of(("a", "b"))
        assert union(g, SocialContentGraph()).same_as(g)
        assert union(SocialContentGraph(), g).same_as(g)


class TestIntersection:
    def test_basic(self):
        i = intersection(g_of(("a", "b"), ("b", "c")), g_of(("a", "b"), ("c", "d")))
        assert i.node_ids() == {"a", "b", "c"}
        assert i.link_ids() == {"a->b"}

    def test_disjoint(self):
        i = intersection(g_of(("a", "b")), g_of(("x", "y")))
        assert i.is_empty()

    def test_self_intersection_is_identity(self):
        g = g_of(("a", "b"), ("b", "c"))
        assert intersection(g, g).same_as(g)


class TestNodeDrivenMinus:
    def test_paper_example(self, paper_minus_graphs):
        # G1 = {(a,b),(a,c),(b,c)}, G2 = {(a,b)}:
        # "G1 \ G2 is a null graph containing only node c and no links."
        g1, g2 = paper_minus_graphs
        result = minus(g1, g2)
        assert result.node_ids() == {"c"}
        assert result.num_links == 0
        assert result.is_null_graph()

    def test_minus_empty_is_identity(self):
        g = g_of(("a", "b"))
        assert minus(g, SocialContentGraph()).same_as(g)

    def test_self_minus_is_empty(self):
        g = g_of(("a", "b"))
        assert minus(g, g).is_empty()

    def test_link_only_overlap(self):
        # shared link id, but G2 also shares its endpoint nodes, so the link
        # and its endpoints disappear.
        g1 = g_of(("a", "b"), ("c", "d"))
        g2 = g_of(("a", "b"))
        result = minus(g1, g2)
        assert result.node_ids() == {"c", "d"}
        assert result.link_ids() == {"c->d"}


class TestLinkDrivenMinus:
    def test_paper_example(self, paper_minus_graphs):
        # "G1 \· G2 contains all the three nodes a, b, c and the links
        #  (a, c) and (b, c)."
        g1, g2 = paper_minus_graphs
        result = link_minus(g1, g2)
        assert result.node_ids() == {"a", "b", "c"}
        assert result.link_ids() == {"a->c", "b->c"}

    def test_nodes_are_exactly_those_induced(self):
        g1 = g_of(("a", "b"), ("c", "d"))
        g2 = g_of(("c", "d"))
        result = link_minus(g1, g2)
        assert result.node_ids() == {"a", "b"}

    def test_lemma1_on_paper_example(self, paper_minus_graphs):
        g1, g2 = paper_minus_graphs
        assert link_minus_via_semijoin(g1, g2).same_as(link_minus(g1, g2))

    def test_lemma1_with_shared_endpoint_multilinks(self):
        # Two distinct link ids over the same endpoints: only id matching
        # keeps them apart — this is why the lemma needs the id-aware join.
        g1 = SocialContentGraph()
        for n in ("a", "b"):
            g1.add_node(Node(n, type="item"))
        g1.add_link(Link("l1", "a", "b", type="x"))
        g1.add_link(Link("l2", "a", "b", type="y"))
        g2 = SocialContentGraph()
        for n in ("a", "b"):
            g2.add_node(Node(n, type="item"))
        g2.add_link(Link("l1", "a", "b", type="x"))
        direct = link_minus(g1, g2)
        rewritten = link_minus_via_semijoin(g1, g2)
        assert direct.link_ids() == {"l2"}
        assert rewritten.same_as(direct)


class TestSymmetricDifference:
    def test_basic(self):
        g1 = g_of(("a", "b"), ("c", "d"))
        g2 = g_of(("c", "d"), ("e", "f"))
        result = symmetric_difference(g1, g2)
        assert result.node_ids() == {"a", "b", "e", "f"}
        assert result.link_ids() == {"a->b", "e->f"}

"""Closed-loop load harness: Zipf/power-law traffic against the gateway.

The measured traffic of real social content sites is heavy-tailed twice
over (PAPERS.md): *what* is asked follows a power law — a small set of
hot queries dominates (Lerman's social-browsing observation) — and *who*
asks follows one too — a few heavy users generate most activity (the
Digg voting study).  This harness replays exactly that regime:

* a **query mix**: ``num_query_shapes`` keyword shapes drawn from the
  workload site's category vocabulary, sampled Zipf(``query_zipf``);
* a **tenant mix**: ``num_tenants`` logical tenants bound to site users,
  sampled Zipf(``tenant_zipf``) — rank 1 is the heavy tenant;
* a **closed loop**: ``concurrency`` clients each keep exactly one
  request in flight (submit → await → next), which is the load shape
  under which dynamic batching pays — hot (tenant × query) pairs overlap
  in flight and coalesce.

Everything is drawn from one ``random.Random(seed)`` so a run's request
*stream* is exactly reproducible; wall-clock interleaving of course is
not, which is why the report carries distributions (p50/p95/p99), not
single numbers.

``python -m repro.serve.loadgen --quick`` is the CI smoke entry point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api import SearchRequest, Session, SessionConfig
from repro.core import Id
from repro.management import DataManager
from repro.serve.admission import (
    AdmissionPolicy,
    DeadlineExceeded,
    Overloaded,
    TenantPolicy,
)
from repro.serve.gateway import GatewayConfig, GatewayStats, ServeGateway
from repro.serve.metrics import latency_summary, peak_rss_mb


@dataclass(frozen=True)
class LoadMixConfig:
    """Shape of the synthetic traffic (see module docstring)."""

    num_tenants: int = 24
    #: power-law exponent of tenant activity (Digg-style skew)
    tenant_zipf: float = 1.2
    num_query_shapes: int = 30
    #: power-law exponent of query popularity (hot-query skew)
    query_zipf: float = 1.1
    #: share of pure-social recommendation requests (empty text)
    recommendation_share: float = 0.1
    #: result budget every generated request carries
    k: int = 10
    seed: int = 17


def _zipf_weights(n: int, exponent: float) -> list[float]:
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


class LoadMix:
    """A seeded sampler of (tenant, request) pairs over one site."""

    def __init__(
        self,
        tenants: Sequence[tuple[str, Id]],
        query_texts: Sequence[str],
        config: LoadMixConfig | None = None,
    ):
        if not tenants:
            raise ValueError("a load mix needs at least one tenant")
        if not query_texts:
            raise ValueError("a load mix needs at least one query shape")
        self.config = config if config is not None else LoadMixConfig()
        self.tenants = list(tenants)
        self.query_texts = list(query_texts)
        self._rng = random.Random(self.config.seed)
        self._tenant_weights = _zipf_weights(
            len(self.tenants), self.config.tenant_zipf
        )
        self._query_weights = _zipf_weights(
            len(self.query_texts), self.config.query_zipf
        )

    @classmethod
    def for_site(
        cls,
        user_ids: Sequence[Id],
        categories: Sequence[str],
        config: LoadMixConfig | None = None,
    ) -> "LoadMix":
        """Build the mix from a generated site's users and vocabulary.

        Query shapes are category singletons and pairs — the keyword
        vocabulary items actually carry — so every shape has non-trivial
        matches; tenants bind to distinct site users (heavy tenants
        first).
        """
        config = config if config is not None else LoadMixConfig()
        rng = random.Random(config.seed)
        vocabulary = [str(c) for c in categories]
        if not vocabulary:
            raise ValueError("site has no category vocabulary")
        shapes: list[str] = []
        seen: set[str] = set()
        while len(shapes) < config.num_query_shapes:
            if rng.random() < 0.5 or len(vocabulary) < 2:
                text = rng.choice(vocabulary)
            else:
                a, b = rng.sample(vocabulary, 2)
                text = f"{a} {b}"
            if text in seen:
                # vocabulary is finite: the pool may saturate early
                if len(seen) >= len(vocabulary) * (len(vocabulary) + 1):
                    break
                continue
            seen.add(text)
            shapes.append(text)
        n_tenants = min(config.num_tenants, len(user_ids))
        users = rng.sample(list(user_ids), n_tenants)
        tenants = [(f"t{i:02d}", user) for i, user in enumerate(users)]
        return cls(tenants, shapes, config)

    def sample(self) -> tuple[str, SearchRequest]:
        """Draw one (tenant, request) pair from the mix."""
        rng = self._rng
        tenant, user_id = rng.choices(
            self.tenants, weights=self._tenant_weights, k=1
        )[0]
        if rng.random() < self.config.recommendation_share:
            text = ""
        else:
            text = rng.choices(
                self.query_texts, weights=self._query_weights, k=1
            )[0]
        return tenant, SearchRequest(
            user_id=user_id, text=text, k=self.config.k
        )

    def stream(self, n: int) -> list[tuple[str, SearchRequest]]:
        """The next *n* samples as a concrete (replayable) list."""
        return [self.sample() for _ in range(n)]


#: A generous default admission policy for load runs: budgets shape the
#: skew instead of shedding most of it, so batching is measurable; the
#: overload tests construct tight policies explicitly.
DEFAULT_LOAD_ADMISSION = AdmissionPolicy(
    default=TenantPolicy(capacity=64.0, refill_per_s=512.0),
    max_depth=512,
)


@dataclass(frozen=True)
class HarnessConfig:
    """Closed-loop drive shape: concurrency, volume, gateway tunables."""

    concurrency: int = 32
    total_requests: int = 384
    gateway: GatewayConfig = field(
        default_factory=lambda: GatewayConfig(admission=DEFAULT_LOAD_ADMISSION)
    )


@dataclass(frozen=True)
class LoadReport:
    """Everything one closed-loop run measured."""

    requests: int
    completed: int
    failed: int
    shed: int
    duration_s: float
    throughput_rps: float
    latency_ms: dict[str, float]
    batches: int
    mean_batch_size: float
    max_batch_size: int
    batch_size_histogram: dict[int, int]
    #: busiest plan keys: label, requests, batches, mean batch size
    hot_keys: list[dict[str, Any]]
    #: mean batch size of the single busiest plan key
    hot_key_mean_batch_size: float
    shed_rate: float
    peak_rss_mb: float
    plan_cache: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            },
            "hot_keys": list(self.hot_keys),
            "hot_key_mean_batch_size": self.hot_key_mean_batch_size,
            "shed_rate": self.shed_rate,
            "peak_rss_mb": self.peak_rss_mb,
            "plan_cache": dict(self.plan_cache),
        }

    def render(self) -> str:
        lines = [
            "=== serve load report ===",
            f"  requests:    {self.requests} "
            f"(completed {self.completed}, failed {self.failed}, "
            f"shed {self.shed})",
            f"  duration:    {self.duration_s * 1e3:8.1f} ms   "
            f"throughput {self.throughput_rps:8.1f} req/s",
            f"  latency ms:  p50 {self.latency_ms['p50']:7.2f}   "
            f"p95 {self.latency_ms['p95']:7.2f}   "
            f"p99 {self.latency_ms['p99']:7.2f}",
            f"  batching:    {self.batches} batches, mean size "
            f"{self.mean_batch_size:.2f}, max {self.max_batch_size}",
            f"  hot key:     mean batch {self.hot_key_mean_batch_size:.2f}",
            f"  shed rate:   {self.shed_rate:6.1%}",
            f"  peak RSS:    {self.peak_rss_mb:8.1f} MiB",
            f"  plan cache:  hits {self.plan_cache.get('hits')}, "
            f"compiles {self.plan_cache.get('compiles')}",
        ]
        return "\n".join(lines)


async def drive(
    gateway: ServeGateway,
    stream: Sequence[tuple[str, SearchRequest]],
    concurrency: int,
) -> tuple[list[float], int, int, int, float]:
    """Drive a started gateway closed-loop over *stream*.

    Returns (per-request latencies ms for completed requests, completed,
    failed, shed, duration seconds).  Exposed separately from
    :func:`run_closed_loop` so tests and benches can drive a gateway they
    configured themselves.
    """
    latencies: list[float] = []
    completed = 0
    failed = 0
    shed = 0
    position = 0

    async def client() -> None:
        nonlocal position, completed, failed, shed
        while position < len(stream):
            index = position
            position += 1
            tenant, request = stream[index]
            t0 = time.perf_counter()
            outcome = await gateway.submit(tenant, request)
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            if isinstance(outcome, (Overloaded, DeadlineExceeded)):
                # both are typed sheds: the gateway turned the request
                # away (budget/depth) or its deadline ran out — neither
                # is a serving *failure*
                shed += 1
            elif outcome.ok:
                completed += 1
                latencies.append(elapsed_ms)
            else:
                failed += 1

    start = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(max(1, concurrency))))
    duration = time.perf_counter() - start
    return latencies, completed, failed, shed, duration


def run_closed_loop(
    session: Session,
    mix: LoadMix,
    config: HarnessConfig | None = None,
) -> LoadReport:
    """One complete closed-loop run: drive, measure, report."""
    config = config if config is not None else HarnessConfig()
    stream = mix.stream(config.total_requests)

    async def _run() -> tuple[
        list[float], int, int, int, float, GatewayStats, dict[str, Any]
    ]:
        gateway = ServeGateway(session, config.gateway)
        async with gateway:
            results = await drive(gateway, stream, config.concurrency)
            stats = gateway.stats()
            cache = gateway.plan_cache_stats()
        return (*results, stats, cache)

    latencies, completed, failed, shed, duration, stats, cache = (
        asyncio.run(_run())
    )
    hot = stats.hot_keys(5)
    histogram = dict(stats.batch_size_histogram)
    return LoadReport(
        requests=len(stream),
        completed=completed,
        failed=failed,
        shed=shed,
        duration_s=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        latency_ms=latency_summary(latencies),
        batches=stats.batches,
        mean_batch_size=stats.mean_batch_size,
        max_batch_size=max(histogram) if histogram else 0,
        batch_size_histogram=histogram,
        hot_keys=[
            {
                "label": ks.label,
                "requests": ks.requests,
                "batches": ks.batches,
                "mean_batch_size": ks.mean_batch_size,
            }
            for ks in hot
        ],
        hot_key_mean_batch_size=hot[0].mean_batch_size if hot else 0.0,
        shed_rate=stats.admission.shed_rate,
        peak_rss_mb=peak_rss_mb(),
        plan_cache=dict(cache),
    )


def run_sequential_baseline(
    data_manager: DataManager,
    stream: Sequence[tuple[str, SearchRequest]],
    session_config: SessionConfig | None = None,
) -> dict[str, float]:
    """The naive serving model: one fresh Session per request, in series.

    This is the architecture the gateway replaces — every request pays
    layer wiring and statistics collection again, and nothing batches.
    The shared data manager keeps storage loading out of the comparison;
    everything session-scoped is honestly per-request.
    """
    start = time.perf_counter()
    for _, request in stream:
        session = Session(data_manager, session_config)
        session.run(request)
    duration = time.perf_counter() - start
    return {
        "requests": float(len(stream)),
        "duration_s": duration,
        "throughput_rps": len(stream) / duration if duration > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# CLI: the CI serve-smoke entry point
# ---------------------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load harness for the serving gateway"
    )
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: tiny site, few requests")
    parser.add_argument("--requests", type=int, default=None,
                        help="total requests to drive (overrides mode)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="concurrent in-flight clients")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--parallelism", default=None,
                        choices=("auto", "never", "force", "threads",
                                 "processes"),
                        help="pin the session's plan-executor mode "
                             "(default: leave the session on auto)")
    parser.add_argument("--shards", type=int, default=None,
                        help="partition the site graph into N shards "
                             "(enables scattered scans)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    args = parser.parse_args(argv)

    from repro.workloads import WorkloadConfig, build_site

    if args.quick:
        site_config = WorkloadConfig(
            num_users=80, num_items=160, seed=args.seed
        )
        total = args.requests if args.requests is not None else 96
        concurrency = (
            args.concurrency if args.concurrency is not None else 16
        )
    else:
        site_config = WorkloadConfig(
            num_users=400, num_items=800, seed=args.seed
        )
        total = args.requests if args.requests is not None else 384
        concurrency = (
            args.concurrency if args.concurrency is not None else 32
        )
    site = build_site(site_config)
    session_config = None
    if args.shards is not None and args.shards > 1:
        session_config = SessionConfig(shards=args.shards)
    session = Session.from_graph(site.graph, session_config)
    mix = LoadMix.for_site(
        site.user_ids, site.categories, LoadMixConfig(seed=args.seed)
    )
    gateway_config = GatewayConfig(
        admission=DEFAULT_LOAD_ADMISSION, parallelism=args.parallelism
    )
    config = HarnessConfig(
        concurrency=concurrency, total_requests=total, gateway=gateway_config
    )
    try:
        report = run_closed_loop(session, mix, config)
    finally:
        session.close()  # shut process workers down, unlink slabs
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    # smoke invariant: the drive actually served (not everything shed)
    if report.completed == 0:
        print("serve-smoke: no request completed")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "LoadMixConfig",
    "LoadMix",
    "HarnessConfig",
    "LoadReport",
    "DEFAULT_LOAD_ADMISSION",
    "drive",
    "run_closed_loop",
    "run_sequential_baseline",
    "main",
]

"""Tests for the collapsed-Gibbs LDA implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fit_lda


@pytest.fixture(scope="module")
def two_theme_corpus():
    """Two cleanly separated vocabularies (sports vs art)."""
    sports = ["ball", "bat", "base", "pitch", "glove"]
    art = ["paint", "brush", "canvas", "gallery", "sketch"]
    docs = []
    rng = np.random.default_rng(0)
    for _ in range(30):
        docs.append(list(rng.choice(sports, size=12)))
    for _ in range(30):
        docs.append(list(rng.choice(art, size=12)))
    return docs, sports, art


class TestLda:
    def test_shapes_and_normalisation(self, two_theme_corpus):
        docs, _, _ = two_theme_corpus
        model = fit_lda(docs, n_topics=2, n_iterations=60, seed=1)
        assert model.doc_topic.shape == (60, 2)
        assert model.topic_word.shape[0] == 2
        assert np.allclose(model.doc_topic.sum(axis=1), 1.0)
        assert np.allclose(model.topic_word.sum(axis=1), 1.0)

    def test_separates_themes(self, two_theme_corpus):
        docs, sports, art = two_theme_corpus
        model = fit_lda(docs, n_topics=2, alpha=0.1, n_iterations=120, seed=1)
        sports_topics = {model.dominant_topic(d) for d in range(30)}
        art_topics = {model.dominant_topic(d) for d in range(30, 60)}
        # Each theme collapses to one topic, and they differ.
        assert len(sports_topics) == 1 and len(art_topics) == 1
        assert sports_topics != art_topics

    def test_top_words_match_theme(self, two_theme_corpus):
        docs, sports, art = two_theme_corpus
        model = fit_lda(docs, n_topics=2, alpha=0.1, n_iterations=120, seed=1)
        sports_topic = model.dominant_topic(0)
        top = set(model.top_words(sports_topic, k=5))
        assert top == set(sports)

    def test_deterministic_given_seed(self, two_theme_corpus):
        docs, _, _ = two_theme_corpus
        a = fit_lda(docs, n_topics=2, n_iterations=30, seed=9)
        b = fit_lda(docs, n_topics=2, n_iterations=30, seed=9)
        assert np.array_equal(a.doc_topic, b.doc_topic)
        assert np.array_equal(a.topic_word, b.topic_word)

    def test_likelihood_improves(self, two_theme_corpus):
        docs, _, _ = two_theme_corpus
        model = fit_lda(docs, n_topics=2, alpha=0.1, n_iterations=60, seed=2,
                        track_likelihood=True)
        assert len(model.log_likelihoods) >= 2
        assert model.log_likelihoods[-1] > model.log_likelihoods[0]

    def test_empty_documents_allowed(self):
        model = fit_lda([["a", "b"], [], ["b", "c"]], n_topics=2,
                        n_iterations=10, seed=0)
        assert np.allclose(model.doc_topic[1], 0.5)

    def test_doc_topics_above(self, two_theme_corpus):
        docs, _, _ = two_theme_corpus
        model = fit_lda(docs, n_topics=2, alpha=0.1, n_iterations=60, seed=1)
        strong = model.doc_topics_above(0, 0.5)
        assert len(strong) == 1

    def test_invalid_topics(self):
        with pytest.raises(ValueError):
            fit_lda([["a"]], n_topics=0)

"""Topic derivation: LDA over item text → topic nodes + ``belong`` links.

"The Content Analyzer derives new nodes (e.g., topics) and links ... through
various analyses (e.g., Latent Dirichlet Allocation)" (paper §3/§5).  Here
the items of a social content graph become LDA documents (their keywords
plus every tag users attached to them); the fitted topics become ``topic``
nodes; items link to their strong topics and users inherit topic affinity
from their activities (Example 2's "identify topics within the data and
users with expertise on the topics").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.lda import LdaModel, fit_lda
from repro.core import Id, Link, Node, SocialContentGraph
from repro.core.text import tokenize


@dataclass
class TopicDerivation:
    """The result of a topic-derivation run."""

    graph: SocialContentGraph  # topic nodes + belong links (+ endpoints)
    model: LdaModel
    item_order: list[Id]

    def topic_id(self, topic: int) -> str:
        """Graph node id of a topic index."""
        return f"topic:{topic}"


def item_documents(
    graph: SocialContentGraph, item_type: str = "item"
) -> tuple[list[Id], list[list[str]]]:
    """Build one bag-of-words document per item.

    A document is the item's own ``keywords``/``name``/``category`` tokens
    plus the tags of every tagging action on it — the social signal is what
    distinguishes SocialScope topics from plain content clustering.
    """
    tags_by_item: dict[Id, list[str]] = {}
    for link in graph.links():
        if link.has_type("tag"):
            tags_by_item.setdefault(link.tgt, []).extend(
                str(v) for v in link.values("tags")
            )
    items: list[Id] = []
    documents: list[list[str]] = []
    for node in sorted(graph.nodes_of_type(item_type), key=lambda n: repr(n.id)):
        tokens: list[str] = []
        for att in ("keywords", "name", "category"):
            for value in node.values(att):
                if isinstance(value, str):
                    tokens.extend(tokenize(value))
        for tag in tags_by_item.get(node.id, ()):
            tokens.extend(tokenize(tag))
        items.append(node.id)
        documents.append(tokens)
    return items, documents


def derive_topics(
    graph: SocialContentGraph,
    n_topics: int = 8,
    membership_threshold: float = 0.25,
    user_affinity_threshold: float = 0.3,
    n_iterations: int = 100,
    seed: int = 0,
) -> TopicDerivation:
    """Run LDA and materialise topics into a derived graph.

    Output graph contents:

    * one ``topic`` node per topic, carrying its top terms as ``keywords``;
    * ``belong, topic_of`` links item → topic for every item whose θ mass
      on that topic is ≥ *membership_threshold*;
    * ``belong, interested_in`` links user → topic where the activity-
      weighted average of the user's items' θ is ≥ *user_affinity_threshold*.

    All derived elements carry ``derived_by='lda'``.
    """
    items, documents = item_documents(graph)
    model = fit_lda(documents, n_topics=n_topics, n_iterations=n_iterations,
                    seed=seed)
    out = SocialContentGraph(catalog=graph.catalog)
    item_index = {item: i for i, item in enumerate(items)}

    for topic in range(model.n_topics):
        terms = model.top_words(topic, k=6)
        out.add_node(Node(f"topic:{topic}", type="topic",
                          name=f"topic-{topic}", keywords=" ".join(terms),
                          derived_by="lda"))

    for item, row_index in item_index.items():
        memberships = model.doc_topics_above(row_index, membership_threshold)
        if not memberships:
            continue
        if not out.has_node(item):
            out.add_node(graph.node(item))
        for topic, prob in memberships:
            out.add_link(Link(f"tb:{item}:{topic}", item, f"topic:{topic}",
                              type="belong, topic_of", prob=round(prob, 6),
                              derived_by="lda"))

    # User topic affinity: average θ of acted-on items.
    user_rows: dict[Id, list[int]] = {}
    for link in graph.links():
        if link.has_type("act") and link.tgt in item_index:
            user_rows.setdefault(link.src, []).append(item_index[link.tgt])
    for user, rows in sorted(user_rows.items(), key=lambda kv: repr(kv[0])):
        mean = model.doc_topic[rows].mean(axis=0)
        for topic, prob in enumerate(mean):
            if prob < user_affinity_threshold:
                continue
            if not out.has_node(user):
                out.add_node(graph.node(user))
            out.add_link(Link(f"ub:{user}:{topic}", user, f"topic:{topic}",
                              type="belong, interested_in",
                              prob=round(float(prob), 6), derived_by="lda"))
    return TopicDerivation(graph=out, model=model, item_order=items)

"""Tests for the empty-propagation optimizer rules."""

from __future__ import annotations

import pytest

from repro.core import SocialContentGraph, input_graph, literal, optimize
from repro.core.expr import LiteralE
from repro.core.optimizer import propagate_empty


@pytest.fixture
def empty():
    return literal(SocialContentGraph())


class TestPropagateEmpty:
    def test_union_with_empty(self, empty, tiny_travel_graph):
        G = input_graph("G")
        assert propagate_empty(G.union(empty)) is G
        assert propagate_empty(empty.union(G)) is G

    def test_intersection_with_empty_folds(self, empty):
        G = input_graph("G")
        folded = propagate_empty(G.intersect(empty))
        assert isinstance(folded, LiteralE) and folded.graph.is_empty()

    def test_minus_rules(self, empty):
        G = input_graph("G")
        assert propagate_empty(G.minus(empty)) is G
        folded = propagate_empty(empty.minus(G))
        assert isinstance(folded, LiteralE)

    def test_link_minus_right_empty_not_folded(self, empty):
        # G \· ∅ keeps only link-induced nodes; folding to G would be wrong.
        G = input_graph("G")
        assert propagate_empty(G.link_minus(empty)) is None
        folded = propagate_empty(empty.link_minus(G))
        assert isinstance(folded, LiteralE)

    def test_semijoin_and_compose_fold(self, empty):
        G = input_graph("G")
        for plan in (
            G.semi_join(empty, ("src", "src")),
            empty.semi_join(G, ("src", "src")),
            G.compose_with(empty, ("tgt", "src"), lambda a, b: {}),
            empty.compose_with(G, ("tgt", "src"), lambda a, b: {}),
        ):
            folded = propagate_empty(plan)
            assert isinstance(folded, LiteralE) and folded.graph.is_empty()

    def test_non_empty_literal_untouched(self, tiny_travel_graph):
        G = input_graph("G")
        lit = literal(tiny_travel_graph)
        assert propagate_empty(G.union(lit)) is None

    def test_semantics_preserved_through_optimize(self, tiny_travel_graph, empty):
        G = input_graph("G")
        plan = G.select_links({"type": "visit"}).union(empty).intersect(
            G.select_links({"type": "visit"}).union(empty)
        )
        optimized, report = optimize(plan)
        assert "propagate_empty" in report.applied
        env = {"G": tiny_travel_graph}
        assert optimized.evaluate(env).same_as(plan.evaluate(env))

    def test_whole_branch_collapses(self, empty):
        G = input_graph("G")
        plan = G.union(empty.semi_join(G, ("src", "src")))
        optimized, report = optimize(plan)
        # ∅ ⋉ G folds to ∅, then G ∪ ∅ folds to G.
        assert optimized is G
        assert report.applied.count("propagate_empty") >= 2

"""Selecting the *right* social connections for a query (Selma's problem).

    "Selma's example illustrates the importance of analyzing the social
    connections of users and choosing the right subset of the connections
    as the basis for discovering socially-relevant results.  ...  Even if
    Selma does not have any friend with young babies, Y!Travel should
    still be able identify a group of 'experts' on the topic."

:class:`ConnectionSelector` scores each friend's *topical fit* to the query
(overlap between the friend's activity vocabulary and the query terms) and
returns the qualified subset; when too few friends qualify, it signals the
expert fallback, and :func:`find_experts` supplies topic experts from the
whole user population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id, SocialContentGraph
from repro.core.text import tokenize


def _activity_vocabulary(graph: SocialContentGraph, user: Id) -> set[str]:
    """Terms describing what a user acts on: item keywords/categories and
    the user's own tags."""
    vocabulary: set[str] = set()
    for link in graph.out_links(user):
        if not link.has_type("act"):
            continue
        for value in link.values("tags"):
            vocabulary.update(tokenize(str(value)))
        item = graph.node(link.tgt)
        for att in ("category", "keywords", "city"):
            for value in item.values(att):
                if isinstance(value, str):
                    vocabulary.update(tokenize(value))
    return vocabulary


@dataclass
class ConnectionSelection:
    """The chosen social basis for a query."""

    friends: list[Id]
    fit: dict[Id, float] = field(default_factory=dict)
    used_expert_fallback: bool = False
    experts: list[Id] = field(default_factory=list)

    @property
    def basis(self) -> list[Id]:
        """The users whose activities drive social relevance."""
        return self.experts if self.used_expert_fallback else self.friends


class ConnectionSelector:
    """Chooses the friend subset (or experts) relevant to a query."""

    def __init__(
        self,
        graph: SocialContentGraph,
        min_fit: float = 0.15,
        min_qualified: int = 2,
        max_experts: int = 10,
    ):
        self.graph = graph
        self.min_fit = min_fit
        self.min_qualified = min_qualified
        self.max_experts = max_experts

    def friends_of(self, user: Id) -> list[Id]:
        """Direct connections of a user."""
        return sorted(
            {l.tgt for l in self.graph.out_links(user) if l.has_type("connect")},
            key=repr,
        )

    def topical_fit(self, user: Id, query_terms: set[str]) -> float:
        """Fraction of query terms present in the user's activity vocabulary."""
        if not query_terms:
            return 1.0
        vocabulary = _activity_vocabulary(self.graph, user)
        return len(query_terms & vocabulary) / len(query_terms)

    def select(self, user: Id, keywords: tuple[str, ...]) -> ConnectionSelection:
        """Pick the friend subset fit for the query, or fall back to experts.

        A friend qualifies when its topical fit ≥ ``min_fit``.  If fewer
        than ``min_qualified`` friends qualify, the selection switches to
        topic experts (Example 2's requirement).
        """
        query_terms = set(keywords)
        friends = self.friends_of(user)
        fit = {f: self.topical_fit(f, query_terms) for f in friends}
        qualified = [f for f in friends if fit[f] >= self.min_fit]
        if len(qualified) >= self.min_qualified or not query_terms:
            return ConnectionSelection(friends=qualified or friends, fit=fit)
        experts = find_experts(self.graph, query_terms, exclude={user},
                               limit=self.max_experts)
        return ConnectionSelection(
            friends=qualified,
            fit=fit,
            used_expert_fallback=True,
            experts=experts,
        )


def find_experts(
    graph: SocialContentGraph,
    query_terms: set[str],
    exclude: set[Id] = frozenset(),
    limit: int = 10,
) -> list[Id]:
    """Users with the most activity on items matching the query terms.

    "identify a group of 'experts' on the topic" — expertise here is simply
    activity volume on matching items, the measurable proxy the synthetic
    workloads support.
    """
    counts: dict[Id, int] = {}
    for link in graph.links():
        if not link.has_type("act") or link.src in exclude:
            continue
        item = graph.node(link.tgt)
        item_terms = set(tokenize(item.text()))
        for value in link.values("tags"):
            item_terms.update(tokenize(str(value)))
        if query_terms & item_terms:
            counts[link.src] = counts.get(link.src, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [user for user, _ in ranked[:limit]]

"""Generic social-content-site workload generator.

The paper evaluates its ideas against proprietary Yahoo! Travel /
del.icio.us-style data we cannot access, so (per the reproduction's
substitution rule) we synthesise graphs with the structural properties the
paper leans on:

* **small-world social networks** — the paper cites Watts-Strogatz [29] and
  Newman [27] as the models of the underlying social graphs; we generate
  friendships with :func:`networkx.watts_strogatz_graph` (optionally
  Barabási-Albert for heavy-tailed degree);
* **Zipfian item popularity** — activity concentrates on few popular items,
  the regime that makes §6.2's index-size math bite;
* **interest-aligned activity** — users carry interest vectors over
  categories and favour items of matching categories, which gives the
  Content Analyzer real structure (topics, similar users) to discover.

All generation is deterministic given the config's ``seed``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import networkx as nx

from repro.core import Link, Node, SocialContentGraph

#: Default category vocabulary; travel-flavoured but generic enough for any
#: content site.
DEFAULT_CATEGORIES = (
    "baseball", "museum", "family", "music", "history",
    "food", "outdoors", "nightlife", "shopping", "art",
)


@dataclass
class WorkloadConfig:
    """Knobs for the generic generator.

    ``activity_rate`` is the mean number of activities per user; activities
    are split between ``visit``, ``tag`` and ``rate`` in the given mix.
    """

    num_users: int = 200
    num_items: int = 400
    categories: tuple[str, ...] = DEFAULT_CATEGORIES
    interests_per_user: int = 3
    # social network shape
    network_model: str = "watts_strogatz"  # or "barabasi_albert"
    mean_degree: int = 8
    rewire_prob: float = 0.1
    # activity shape
    activity_rate: float = 12.0
    zipf_exponent: float = 1.1
    interest_affinity: float = 0.75  # prob. an activity targets an interest
    activity_mix: tuple[tuple[str, float], ...] = (
        ("visit", 0.5), ("tag", 0.3), ("rate", 0.2),
    )
    tags_per_action: int = 2
    seed: int = 7


@dataclass
class GeneratedSite:
    """The generator's output: the graph plus handy id registries."""

    graph: SocialContentGraph
    user_ids: list[int] = field(default_factory=list)
    item_ids: list[str] = field(default_factory=list)
    categories: tuple[str, ...] = ()

    @property
    def num_activities(self) -> int:
        """Number of ``act`` links in the generated graph."""
        return sum(1 for l in self.graph.links() if l.has_type("act"))


def _zipf_weights(n: int, exponent: float) -> list[float]:
    """Unnormalised Zipf weights for ranks 1..n."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def _social_network(config: WorkloadConfig) -> nx.Graph:
    """Undirected friendship topology per the configured model."""
    k = max(2, min(config.mean_degree, config.num_users - 1))
    if k % 2:
        k -= 1  # watts_strogatz requires even k
    if config.network_model == "watts_strogatz":
        return nx.watts_strogatz_graph(
            config.num_users, max(2, k), config.rewire_prob, seed=config.seed
        )
    if config.network_model == "barabasi_albert":
        m = max(1, k // 2)
        return nx.barabasi_albert_graph(config.num_users, m, seed=config.seed)
    raise ValueError(f"unknown network model {config.network_model!r}")


def build_site(config: WorkloadConfig | None = None) -> GeneratedSite:
    """Generate a full social content graph.

    Node conventions (consistent across all workloads in this package):

    * users: integer ids, ``type='user'``, attributes ``name``,
      ``interests`` (multi-valued categories);
    * items: string ids ``i<k>``, ``type='item'``, attributes ``name``,
      ``category`` (1-2 values), ``keywords``;
    * friendships: two directed ``connect, friend`` links per undirected
      edge (the paper's links are directed; friendship is symmetric);
    * activities: ``act, visit`` / ``act, tag`` (with ``tags``) /
      ``act, rate`` (with ``rating``) links user → item.
    """
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    graph = SocialContentGraph()

    # -- users ----------------------------------------------------------------
    user_ids = list(range(1, config.num_users + 1))
    user_interests: dict[int, list[str]] = {}
    for uid in user_ids:
        interests = rng.sample(
            config.categories,
            k=min(config.interests_per_user, len(config.categories)),
        )
        user_interests[uid] = interests
        graph.add_node(
            Node(uid, type="user", name=f"user{uid}", interests=interests)
        )

    # -- social network ---------------------------------------------------------
    topology = _social_network(config)
    for edge_index, (a, b) in enumerate(sorted(topology.edges())):
        u, v = user_ids[a], user_ids[b]
        graph.add_link(Link(f"fr:{u}->{v}", u, v, type="connect, friend"))
        graph.add_link(Link(f"fr:{v}->{u}", v, u, type="connect, friend"))

    # -- items -------------------------------------------------------------------
    item_ids = [f"i{k}" for k in range(1, config.num_items + 1)]
    items_by_category: dict[str, list[str]] = {c: [] for c in config.categories}
    for item_id in item_ids:
        n_cats = 1 if rng.random() < 0.7 else 2
        cats = rng.sample(config.categories, k=n_cats)
        keywords = " ".join(cats + [f"place{item_id}"])
        graph.add_node(
            Node(item_id, type="item", name=f"item-{item_id}",
                 category=cats, keywords=keywords)
        )
        for c in cats:
            items_by_category[c].append(item_id)

    # -- activities ----------------------------------------------------------------
    popularity = _zipf_weights(len(item_ids), config.zipf_exponent)
    act_types = [t for t, _ in config.activity_mix]
    act_weights = [w for _, w in config.activity_mix]
    link_seq = 0
    for uid in user_ids:
        n_acts = max(0, round(rng.expovariate(1.0 / config.activity_rate)))
        seen: set[tuple[str, str]] = set()
        for _ in range(n_acts):
            if rng.random() < config.interest_affinity:
                category = rng.choice(user_interests[uid])
                pool = items_by_category[category]
                if not pool:
                    continue
                ranks = _zipf_weights(len(pool), config.zipf_exponent)
                item = rng.choices(pool, weights=ranks, k=1)[0]
            else:
                item = rng.choices(item_ids, weights=popularity, k=1)[0]
            act = rng.choices(act_types, weights=act_weights, k=1)[0]
            if (act, item) in seen:
                continue
            seen.add((act, item))
            link_seq += 1
            link_id = f"act:{link_seq}"
            if act == "tag":
                item_node = graph.node(item)
                cats = [str(c) for c in item_node.values("category")]
                tags = rng.sample(
                    cats + user_interests[uid],
                    k=min(config.tags_per_action, len(cats) + len(user_interests[uid])),
                )
                graph.add_link(Link(link_id, uid, item, type="act, tag",
                                    tags=tags))
            elif act == "rate":
                rating = round(min(5.0, max(1.0, rng.gauss(3.5, 1.0))), 1)
                graph.add_link(Link(link_id, uid, item, type="act, rate",
                                    rating=rating))
            else:
                graph.add_link(Link(link_id, uid, item, type="act, visit"))

    return GeneratedSite(
        graph=graph,
        user_ids=user_ids,
        item_ids=item_ids,
        categories=config.categories,
    )

"""Tests for the Table 1 query workload generator and lexicon."""

from __future__ import annotations

import pytest

from repro.core.text import tokenize
from repro.workloads import (
    NOISE_SHARE,
    QueryWorkloadGenerator,
    TABLE1_TARGETS,
    table1_counts,
)
from repro.workloads.lexicon import DEFAULT_LEXICON


class TestLexicon:
    def test_phrase_matching_single_token(self):
        assert DEFAULT_LEXICON.contains_phrase(["denver", "hotels"], "locations")

    def test_phrase_matching_multi_token(self):
        tokens = tokenize("best things to do in paris")
        assert DEFAULT_LEXICON.contains_phrase(tokens, "general")

    def test_specific_destination_phrases(self):
        tokens = tokenize("yosemite park camping")
        assert DEFAULT_LEXICON.contains_phrase(tokens, "specific")

    def test_no_false_positive(self):
        assert not DEFAULT_LEXICON.contains_phrase(["horoscope"], "locations")
        assert not DEFAULT_LEXICON.contains_phrase(
            ["things"], "general"
        )  # partial phrase must not match

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            DEFAULT_LEXICON.contains_phrase(["x"], "bogus")


class TestGenerator:
    def test_deterministic(self):
        a = [q.text for q in QueryWorkloadGenerator(seed=1).generate(50)]
        b = [q.text for q in QueryWorkloadGenerator(seed=1).generate(50)]
        assert a == b

    def test_targets_sum_to_one(self):
        assert sum(TABLE1_TARGETS.values()) + NOISE_SHARE == pytest.approx(1.0)

    def test_intent_marginals_close_to_table1(self):
        gen = QueryWorkloadGenerator(seed=7)
        queries = list(gen.generate(20000))
        grid = table1_counts([(q.intent, q.has_location) for q in queries])
        assert grid["with"]["general"] == pytest.approx(0.3236, abs=0.02)
        assert grid["without"]["general"] == pytest.approx(0.2138, abs=0.02)
        assert grid["with"]["categorical"] == pytest.approx(0.2252, abs=0.02)
        assert grid["without"]["categorical"] == pytest.approx(0.0534, abs=0.02)
        assert grid["with"]["specific"] == pytest.approx(0.0837, abs=0.02)
        assert grid["unclassified"] == pytest.approx(NOISE_SHARE, abs=0.02)

    def test_specific_queries_always_have_location(self):
        gen = QueryWorkloadGenerator(seed=3)
        for q in gen.generate(2000):
            if q.intent == "specific":
                assert q.has_location

    def test_general_with_location_mentions_location(self):
        gen = QueryWorkloadGenerator(seed=3)
        for q in gen.generate(500):
            if q.intent == "general" and q.has_location:
                tokens = tokenize(q.text)
                assert DEFAULT_LEXICON.contains_phrase(tokens, "locations")

    def test_noise_avoids_travel_vocabulary(self):
        gen = QueryWorkloadGenerator(seed=3)
        for q in gen.generate(500):
            if q.intent == "noise":
                tokens = tokenize(q.text)
                assert not DEFAULT_LEXICON.contains_phrase(tokens, "general")
                assert not DEFAULT_LEXICON.contains_phrase(tokens, "specific")


class TestTable1Counts:
    def test_empty(self):
        grid = table1_counts([])
        assert grid["unclassified"] == 0.0

    def test_tabulation(self):
        labels = [("general", True)] * 3 + [("categorical", False)] * 2 + [
            ("noise", False)
        ] * 5
        grid = table1_counts(labels)
        assert grid["with"]["general"] == 0.3
        assert grid["without"]["categorical"] == 0.2
        assert grid["unclassified"] == 0.5

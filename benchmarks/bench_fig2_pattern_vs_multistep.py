"""Experiment F2 — Figure 2: graph-pattern CF vs multi-step algebra.

The paper poses the comparison as an open research question ("study the
difference between the two approaches and identify the conditions under
which one ... will be more effective").  This bench answers it for our
evaluator: both formulations are timed on growing travel sites and their
outputs asserted equivalent (the correctness half of the Figure 2 claim).
"""

from __future__ import annotations

import pytest

from repro.core import (
    example5_collaborative_filtering,
    figure2_collaborative_filtering,
    recommendations_from,
)
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site

SIZES = {"small": 60, "medium": 120, "large": 240}


@pytest.fixture(scope="module", params=list(SIZES), ids=list(SIZES))
def sized_site(request):
    users = SIZES[request.param]
    return request.param, build_travel_site(
        TravelSiteConfig(num_background_users=users, seed=42)
    )


def test_equivalence_and_report(sized_site, report, benchmark):
    label, site = sized_site
    multi = benchmark.pedantic(
        example5_collaborative_filtering, args=(site.graph, JOHN),
        kwargs={"sim_threshold": 0.1}, rounds=1, iterations=1,
    )
    pattern = figure2_collaborative_filtering(site.graph, JOHN,
                                              sim_threshold=0.1)
    m = dict(recommendations_from(multi, JOHN))
    p = dict(recommendations_from(pattern, JOHN))
    assert m == pytest.approx(p)
    report(
        f"[fig2/{label}] {site.graph.num_nodes} nodes / "
        f"{site.graph.num_links} links: multi-step and pattern agree on "
        f"{len(m)} recommendations"
    )


def test_multistep_cf(sized_site, benchmark):
    _, site = sized_site
    benchmark(example5_collaborative_filtering, site.graph, JOHN,
              sim_threshold=0.1)


def test_pattern_cf(sized_site, benchmark):
    _, site = sized_site
    benchmark(figure2_collaborative_filtering, site.graph, JOHN,
              sim_threshold=0.1)

"""Test-only package: importing a sibling inside itself is legal."""

from app.testing.faults import arm

__all__ = ["arm"]

"""Social relevance strategies (the recommendation side of discovery).

    "information discovery on social content sites requires the integration
    of two major paradigms: semantic relevance with respect to a query and
    social relevance in the spirit of recommendations." (§2.1)

Every strategy maps (graph, user, candidate items) to per-item social
scores **with provenance** — the endorsing users behind each score — since
§7.2's explanations need exactly that.  Strategies:

* :class:`FriendBasedStrategy` — endorsement counts over a chosen
  connection basis (friends, or experts after the Selma fallback);
* :class:`SimilarUserStrategy` — Example 5's collaborative filtering, run
  through the *algebra recipe* (the paper's point: discovery tasks are
  algebra expressions, not ad-hoc code);
* :class:`ItemBasedStrategy` — content-based: items similar (derived
  ``sim_item`` links) to what the user already acted on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core import Id, SocialContentGraph
from repro.core.recipes import example5_collaborative_filtering, recommendations_from
from repro.discovery.connections import ConnectionSelection


@dataclass
class SocialScores:
    """Per-item social relevance with endorsement provenance."""

    strategy: str
    scores: dict[Id, float] = field(default_factory=dict)
    #: item -> endorsing users (for CF/friends) with their weight
    endorsers: dict[Id, dict[Id, float]] = field(default_factory=dict)
    #: item -> supporting items (for content-based) with their weight
    supporting_items: dict[Id, dict[Id, float]] = field(default_factory=dict)

    def normalized(self) -> dict[Id, float]:
        """Scores scaled into [0, 1] (max-normalised)."""
        top = max(self.scores.values(), default=0.0)
        if top <= 0:
            return {i: 0.0 for i in self.scores}
        return {i: s / top for i, s in self.scores.items()}


class SocialStrategy(Protocol):
    """Protocol all social relevance strategies implement."""

    name: str

    def score(
        self,
        graph: SocialContentGraph,
        user_id: Id,
        candidates: set[Id],
        basis: ConnectionSelection | None = None,
    ) -> SocialScores:
        """Social scores for the candidate items."""
        ...


class FriendBasedStrategy:
    """Count endorsements (activities) by the selected connection basis.

    score(i) = Σ_{u' in basis, u' acted on i} weight(u'), where weight is
    the connection's topical fit (1.0 for experts).  The simplest strategy
    and the one the Y!Travel examples describe first.
    """

    name = "friends"

    def score(
        self,
        graph: SocialContentGraph,
        user_id: Id,
        candidates: set[Id],
        basis: ConnectionSelection | None = None,
    ) -> SocialScores:
        result = SocialScores(strategy=self.name)
        members = basis.basis if basis is not None else []
        weights = {
            m: (basis.fit.get(m, 1.0) if basis and not basis.used_expert_fallback
                else 1.0)
            for m in members
        }
        for member in members:
            weight = max(weights.get(member, 1.0), 0.1)
            for link in graph.out_links(member):
                if not link.has_type("act") or link.tgt not in candidates:
                    continue
                result.scores[link.tgt] = result.scores.get(link.tgt, 0.0) + weight
                result.endorsers.setdefault(link.tgt, {})[member] = weight
        return result


class SimilarUserStrategy:
    """Example 5's collaborative filtering as the scoring engine.

    Runs the nine-step algebra recipe over the activity graph; the ``score``
    attribute on the resulting ``recommend`` links is the social relevance;
    similar users who visited the item are the provenance.
    """

    name = "similar_users"

    def __init__(self, sim_threshold: float = 0.1, act_type: str = "visit"):
        self.sim_threshold = sim_threshold
        self.act_type = act_type

    def score(
        self,
        graph: SocialContentGraph,
        user_id: Id,
        candidates: set[Id],
        basis: ConnectionSelection | None = None,
    ) -> SocialScores:
        result = SocialScores(strategy=self.name)
        # The recipe needs a 'destination'-typed target; we accept any item
        # by parameterising dest_type with the item type.
        cf = example5_collaborative_filtering(
            graph,
            user_id,
            visit_type=self.act_type,
            dest_type="item",
            sim_threshold=self.sim_threshold,
        )
        for item, score in recommendations_from(cf, user_id):
            if item not in candidates:
                continue
            result.scores[item] = score
        # Provenance: similar users (weight = their similarity) who acted.
        my_items = {
            l.tgt for l in graph.out_links(user_id) if l.has_type(self.act_type)
        }
        user_items: dict[Id, set] = {}
        for link in graph.links():
            if link.has_type(self.act_type):
                user_items.setdefault(link.src, set()).add(link.tgt)
        for other, items in user_items.items():
            if other == user_id or not my_items:
                continue
            union_size = len(my_items | items)
            sim = len(my_items & items) / union_size if union_size else 0.0
            if sim <= self.sim_threshold:
                continue
            for item in items & set(result.scores):
                result.endorsers.setdefault(item, {})[other] = sim
        return result


class ItemBasedStrategy:
    """Content-based: recommend items similar to the user's past items.

    Requires derived ``sim_item`` links (run the Content Analyzer's
    ``item_similarity`` first); score(i) = Σ ItemSim(i, i′) over the user's
    past items i′ — the ItemSim of §7.2's content-based explanation.
    """

    name = "item_based"

    def score(
        self,
        graph: SocialContentGraph,
        user_id: Id,
        candidates: set[Id],
        basis: ConnectionSelection | None = None,
    ) -> SocialScores:
        result = SocialScores(strategy=self.name)
        mine = {l.tgt for l in graph.out_links(user_id) if l.has_type("act")}
        for past_item in mine:
            for link in graph.out_links(past_item):
                if not link.has_type("sim_item"):
                    continue
                other = link.tgt
                if other not in candidates or other in mine:
                    continue
                sim = float(link.value("sim", 0.0))
                result.scores[other] = result.scores.get(other, 0.0) + sim
                result.supporting_items.setdefault(other, {})[past_item] = sim
        return result


#: Registry used by the Information Discoverer.  "cf" is the query-API
#: alias for Example 5's collaborative filtering.
DEFAULT_STRATEGIES: dict[str, SocialStrategy] = {
    "friends": FriendBasedStrategy(),
    "similar_users": SimilarUserStrategy(),
    "item_based": ItemBasedStrategy(),
}
DEFAULT_STRATEGIES["cf"] = DEFAULT_STRATEGIES["similar_users"]

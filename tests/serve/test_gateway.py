"""The serving gateway: batching parity, backpressure, fairness, storms.

The non-negotiable contract is **parity**: a response served through the
batching gateway is bit-identical (scores to 1e-9) to the same request
run sequentially through ``Session.run`` — dynamic batching is a
throughput optimisation, never a semantics change.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

import repro.serve.admission as admission_module
from repro.api import (
    RequestFailure,
    SearchRequest,
    SearchResponse,
    Session,
    encode_cursor,
)
from repro.errors import ServeError
from repro.serve import (
    GLOBAL_DEPTH,
    TENANT_BUDGET,
    AdmissionController,
    AdmissionPolicy,
    GatewayConfig,
    Overloaded,
    ServeGateway,
    TenantPolicy,
)
from repro.workloads import ALEXIA, JOHN, TravelSiteConfig, build_travel_site
from tools.archcheck.racetrack import RaceTracker, TracedLock


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture()
def session(travel):
    return Session.from_graph(travel.graph)


#: Generous budgets: these tests exercise batching, not admission.
OPEN_ADMISSION = AdmissionPolicy(
    default=TenantPolicy(capacity=1000.0, refill_per_s=1000.0),
    max_depth=0,
)


def serve_all(
    session: Session,
    submissions: list[tuple[str, SearchRequest]],
    config: GatewayConfig,
):
    """Submit all concurrently on one loop; return (outcomes, stats)."""

    async def _run():
        async with ServeGateway(session, config) as gateway:
            outcomes = await asyncio.gather(*(
                gateway.submit(tenant, request)
                for tenant, request in submissions
            ))
            return outcomes, gateway.stats()

    return asyncio.run(_run())


def assert_response_parity(served: SearchResponse, solo: SearchResponse):
    """Identical rankings, scores within 1e-9, same grouping."""
    assert served.items == solo.items
    served_flat = served.page.flat
    solo_flat = solo.page.flat
    assert [e.item_id for e in served_flat] == [e.item_id for e in solo_flat]
    for a, b in zip(served_flat, solo_flat):
        assert abs(a.score - b.score) <= 1e-9
    assert (
        [(g.label, [e.item_id for e in g.entries]) for g in served.page.groups]
        == [(g.label, [e.item_id for e in g.entries]) for g in solo.page.groups]
    )


class TestBatchingParity:
    def submissions(self) -> list[tuple[str, SearchRequest]]:
        hot = SearchRequest(user_id=JOHN, text="Denver attractions")
        return [
            ("alpha", hot),
            ("alpha", hot.replace(k=5)),           # same key: differs in k
            ("alpha", hot.replace(page_size=3)),   # same key: pagination
            ("beta", SearchRequest(user_id=ALEXIA, text="history")),
            ("beta", SearchRequest(user_id=ALEXIA)),  # recommendation
            ("alpha", hot.replace(explain=True)),  # same key: explain
        ]

    def test_batched_identical_to_sequential(self, session):
        submissions = self.submissions()
        solo = [session.run(request) for _, request in submissions]
        config = GatewayConfig(
            batch_window_s=0.05, admission=OPEN_ADMISSION
        )
        outcomes, stats = serve_all(session, submissions, config)
        assert all(isinstance(o, SearchResponse) for o in outcomes)
        for served, reference in zip(outcomes, solo):
            assert_response_parity(served, reference)
        # and the hot key really was batched, not served one by one
        assert stats.batches < len(submissions)
        assert stats.hot_keys(1)[0].mean_batch_size > 1.0

    def test_same_key_requests_share_one_batch(self, session):
        request = SearchRequest(user_id=JOHN, text="museum")
        submissions = [(f"t{i}", request) for i in range(6)]
        config = GatewayConfig(
            batch_window_s=0.1, admission=OPEN_ADMISSION
        )
        outcomes, stats = serve_all(session, submissions, config)
        assert all(isinstance(o, SearchResponse) for o in outcomes)
        assert stats.batches == 1
        assert stats.batch_size_histogram == {6: 1}
        assert stats.mean_batch_size == pytest.approx(6.0)

    def test_max_batch_flushes_early(self, session):
        request = SearchRequest(user_id=JOHN, text="museum")
        submissions = [(f"t{i}", request) for i in range(5)]
        config = GatewayConfig(
            batch_window_s=10.0, max_batch=2, admission=OPEN_ADMISSION
        )
        outcomes, stats = serve_all(session, submissions, config)
        assert all(isinstance(o, SearchResponse) for o in outcomes)
        # window is effectively infinite: only the size cap flushes, the
        # leftover single flushes at shutdown drain
        assert max(stats.batch_size_histogram) == 2
        assert stats.completed == 5

    def test_distinct_keys_do_not_batch(self, session):
        submissions = [
            ("a", SearchRequest(user_id=JOHN, text="museum")),
            ("a", SearchRequest(user_id=JOHN, text="history")),
            ("a", SearchRequest(user_id=ALEXIA, text="museum")),
        ]
        config = GatewayConfig(
            batch_window_s=0.05, admission=OPEN_ADMISSION
        )
        _, stats = serve_all(session, submissions, config)
        assert stats.batches == 3
        assert set(stats.batch_size_histogram) == {1}


class TestErrorIsolation:
    def test_stale_cursor_fails_alone_in_batch(self, session):
        good = SearchRequest(user_id=JOHN, text="denver")
        bad = good.replace(cursor=encode_cursor(0, 5, epoch=999))
        submissions = [("a", good), ("a", bad), ("b", good)]
        config = GatewayConfig(
            batch_window_s=0.05, admission=OPEN_ADMISSION
        )
        outcomes, stats = serve_all(session, submissions, config)
        assert isinstance(outcomes[0], SearchResponse)
        assert isinstance(outcomes[1], RequestFailure)
        assert outcomes[1].kind == "QueryError"
        assert "stale cursor" in outcomes[1].message
        assert isinstance(outcomes[2], SearchResponse)
        assert stats.failed == 1 and stats.completed == 2

    def test_batch_level_explosion_fails_members_not_gateway(self, session):
        config = GatewayConfig(batch_window_s=0.01, admission=OPEN_ADMISSION)
        request = SearchRequest(user_id=JOHN, text="denver")

        async def _run():
            async with ServeGateway(session, config) as gateway:
                original = session.run_many
                session.run_many = lambda *a, **kw: (_ for _ in ()).throw(
                    RuntimeError("executor blew up")
                )
                try:
                    broken = await gateway.submit("a", request)
                finally:
                    session.run_many = original
                healed = await gateway.submit("a", request)
                return broken, healed

        broken, healed = asyncio.run(_run())
        assert isinstance(broken, RequestFailure)
        assert broken.kind == "RuntimeError"
        assert isinstance(healed, SearchResponse)  # gateway survived


class TestAdmissionBackpressure:
    def test_budget_exhaustion_returns_typed_overloaded(self, session):
        policy = AdmissionPolicy(
            default=TenantPolicy(capacity=2, refill_per_s=0), max_depth=0
        )
        request = SearchRequest(user_id=JOHN, text="denver")
        submissions = [("greedy", request)] * 5
        config = GatewayConfig(batch_window_s=0.02, admission=policy)
        outcomes, stats = serve_all(session, submissions, config)
        served = [o for o in outcomes if isinstance(o, SearchResponse)]
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        assert len(served) == 2 and len(shed) == 3
        assert all(o.reason == TENANT_BUDGET for o in shed)
        assert all(o.tenant == "greedy" for o in shed)
        assert stats.shed == 3 and stats.admission.shed_budget == 3

    def test_global_depth_cap_sheds_synthetic_overload(self, session):
        policy = AdmissionPolicy(
            default=TenantPolicy(capacity=1000, refill_per_s=1000),
            max_depth=2,
        )
        request = SearchRequest(user_id=JOHN, text="denver")
        submissions = [(f"t{i}", request) for i in range(10)]
        config = GatewayConfig(batch_window_s=0.05, admission=policy)
        outcomes, stats = serve_all(session, submissions, config)
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        assert len(shed) == 8
        assert all(o.reason == GLOBAL_DEPTH for o in shed)
        assert stats.admission.shed_depth == 8
        # budgets were NOT spent on depth sheds
        assert stats.admission.admitted == 2

    def test_fairness_heavy_tenant_cannot_starve_light(self, session):
        policy = AdmissionPolicy(
            default=TenantPolicy(capacity=3, refill_per_s=0), max_depth=0
        )
        request = SearchRequest(user_id=JOHN, text="denver")
        submissions = [("heavy", request)] * 12 + [("light", request)] * 3
        config = GatewayConfig(batch_window_s=0.02, admission=policy)
        outcomes, stats = serve_all(session, submissions, config)
        light = outcomes[12:]
        assert all(isinstance(o, SearchResponse) for o in light)
        heavy_shed = [
            o for o in outcomes[:12] if isinstance(o, Overloaded)
        ]
        assert len(heavy_shed) == 9
        per_tenant = stats.admission.per_tenant_admitted
        assert per_tenant == {"heavy": 3, "light": 3}


class TestLifecycle:
    def test_submit_before_start_raises(self, session):
        gateway = ServeGateway(session)

        async def _run():
            await gateway.submit("a", SearchRequest(user_id=JOHN))

        with pytest.raises(ServeError, match="not running"):
            asyncio.run(_run())

    def test_invalid_config_rejected(self, session):
        with pytest.raises(ServeError, match="max_batch"):
            ServeGateway(session, GatewayConfig(max_batch=0))
        with pytest.raises(ServeError, match="max_concurrent_batches"):
            ServeGateway(session, GatewayConfig(max_concurrent_batches=0))

    def test_double_start_raises(self, session):
        async def _run():
            async with ServeGateway(session) as gateway:
                with pytest.raises(ServeError, match="already started"):
                    await gateway.start()

        asyncio.run(_run())

    def test_stop_drains_pending_batches(self, session):
        """Requests still waiting out the window complete at shutdown."""
        request = SearchRequest(user_id=JOHN, text="denver")

        async def _run():
            gateway = ServeGateway(session, GatewayConfig(
                batch_window_s=30.0, admission=OPEN_ADMISSION
            ))
            await gateway.start()
            pending = asyncio.ensure_future(gateway.submit("a", request))
            await asyncio.sleep(0.01)  # let it enter the batch buffer
            await gateway.stop()
            return await pending

        outcome = asyncio.run(_run())
        assert isinstance(outcome, SearchResponse)

    def test_plan_cache_stats_management_endpoint(self, session):
        request = SearchRequest(user_id=JOHN, text="denver")

        async def _run():
            async with ServeGateway(
                session,
                GatewayConfig(batch_window_s=0.01, admission=OPEN_ADMISSION),
            ) as gateway:
                await gateway.submit("a", request)
                return gateway.plan_cache_stats()

        stats = asyncio.run(_run())
        assert stats == session.data_manager.plan_cache_stats()
        assert stats["compiles"] >= 1


class TestStorms:
    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_threaded_submitters_against_one_loop(self, session):
        """Thread/asyncio storm: 8 raw threads funnel submissions into the
        gateway loop via run_coroutine_threadsafe while batches execute on
        the worker pool — the watchdog converts any deadlock into stacks."""
        request = SearchRequest(user_id=JOHN, text="denver")
        per_thread = 12
        results: list[object] = []
        errors: list[BaseException] = []

        async def _serve():
            async with ServeGateway(session, GatewayConfig(
                batch_window_s=0.005,
                max_concurrent_batches=3,
                admission=OPEN_ADMISSION,
            )) as gateway:
                loop = asyncio.get_running_loop()
                started = threading.Event()

                def submitter(tenant: str) -> None:
                    started.wait()
                    try:
                        for _ in range(per_thread):
                            future = asyncio.run_coroutine_threadsafe(
                                gateway.submit(tenant, request), loop
                            )
                            results.append(future.result(timeout=60))
                    except BaseException as error:  # pragma: no cover
                        errors.append(error)

                threads = [
                    threading.Thread(target=submitter, args=(f"t{i}",))
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                started.set()
                while any(t.is_alive() for t in threads):
                    await asyncio.sleep(0.01)
                for thread in threads:
                    thread.join()
                return gateway.stats()

        stats = asyncio.run(_serve())
        assert not errors
        assert len(results) == 8 * per_thread
        assert all(isinstance(r, SearchResponse) for r in results)
        assert stats.completed == 8 * per_thread
        # concurrent same-key submitters actually coalesced
        assert stats.mean_batch_size > 1.0

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_admission_controller_storm_is_race_free(self):
        """Lockset (Eraser) pass over the admission controller under a
        genuine multi-thread admit/release storm: every mutable field must
        stay consistently guarded by the controller lock."""
        tracker = RaceTracker()
        with tracker.trace(admission_module):
            controller = AdmissionController(AdmissionPolicy(
                default=TenantPolicy(capacity=40, refill_per_s=1000),
                max_depth=64,
            ))
            assert isinstance(controller._lock, TracedLock)
            tracker.monitor(controller)
            errors: list[BaseException] = []

            def worker(tenant: str) -> None:
                try:
                    tickets = []
                    for i in range(150):
                        verdict = controller.admit(tenant)
                        if isinstance(verdict, admission_module.Admitted):
                            tickets.append(verdict)
                        if len(tickets) >= 4:
                            controller.release(tickets.pop())
                        controller.available_tokens(tenant)
                    for ticket in tickets:
                        controller.release(ticket)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(f"t{i % 3}",))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        tracker.assert_race_free()
        # the storm really contended on controller internals
        assert any(
            state in ("shared", "shared-modified")
            for state in tracker.field_states().values()
        ), tracker.field_states()

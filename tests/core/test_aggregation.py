"""Unit tests for γN and γL (paper Definitions 9-10)."""

from __future__ import annotations

import pytest

from repro.core import (
    AttrMap,
    ConstAgg,
    First,
    Link,
    Node,
    SetAgg,
    SocialContentGraph,
    aggregate_links,
    aggregate_nodes,
    average,
    count,
)
from repro.errors import AggregationError


class TestNodeAggregation:
    def test_friend_count_example(self, tiny_travel_graph):
        # The paper's fnd_cnt example: count outgoing 'friend' links.
        result = aggregate_nodes(
            tiny_travel_graph, {"type": "friend"}, "src", "fnd_cnt", count()
        )
        assert result.node(101).value("fnd_cnt") == 2
        assert result.node(102).value("fnd_cnt") == 1
        # Nodes with no outgoing friend links get no attribute at all.
        assert result.node(103).value("fnd_cnt") is None
        assert result.node(104).value("fnd_cnt") is None

    def test_output_isomorphic(self, tiny_travel_graph):
        result = aggregate_nodes(
            tiny_travel_graph, {"type": "friend"}, "src", "fnd_cnt", count()
        )
        assert result.node_ids() == tiny_travel_graph.node_ids()
        assert result.link_ids() == tiny_travel_graph.link_ids()

    def test_direction_is_group_by(self, tiny_travel_graph):
        # Group by tgt: how many users visited each destination.
        result = aggregate_nodes(
            tiny_travel_graph, {"type": "visit"}, "tgt", "visitors", count()
        )
        assert result.node("d1").value("visitors") == 4
        assert result.node("d2").value("visitors") == 2
        assert result.node("d4").value("visitors") == 1

    def test_set_aggregation_vst(self, tiny_travel_graph):
        # Example 5 step 2: collect visited destinations as attribute vst.
        result = aggregate_nodes(
            tiny_travel_graph, {"type": "visit"}, "src", "vst", SetAgg("tgt")
        )
        assert set(result.node(101).values("vst")) == {"d1", "d3"}
        assert set(result.node(103).values("vst")) == {"d1", "d2", "d4"}

    def test_input_unchanged(self, tiny_travel_graph):
        before = tiny_travel_graph.copy()
        aggregate_nodes(tiny_travel_graph, {"type": "visit"}, "src", "x", count())
        assert tiny_travel_graph.same_as(before)

    def test_bad_direction_rejected(self, tiny_travel_graph):
        with pytest.raises(AggregationError):
            aggregate_nodes(tiny_travel_graph, None, "middle", "x", count())


@pytest.fixture
def multi_link_graph():
    """u1 -> i1 with three 'rec' links (w=1,2,3) and one 'other' link;
    u2 -> i1 with one 'rec' link (w=10)."""
    g = SocialContentGraph()
    for n, t in [("u1", "user"), ("u2", "user"), ("i1", "item")]:
        g.add_node(Node(n, type=t))
    g.add_link(Link("r1", "u1", "i1", type="rec", w=1.0))
    g.add_link(Link("r2", "u1", "i1", type="rec", w=2.0))
    g.add_link(Link("r3", "u1", "i1", type="rec", w=3.0))
    g.add_link(Link("o1", "u1", "i1", type="other", w=9.0))
    g.add_link(Link("r4", "u2", "i1", type="rec", w=10.0))
    return g


class TestLinkAggregation:
    def test_bundles_replaced_per_src_tgt(self, multi_link_graph):
        result = aggregate_links(multi_link_graph, {"type": "rec"}, "score",
                                 average("w"))
        # u1->i1 bundle of 3 replaced by 1; u2->i1 bundle of 1 replaced by 1.
        agg_links = [l for l in result.links() if l.has_type("agg")]
        assert len(agg_links) == 2
        by_src = {l.src: l for l in agg_links}
        assert by_src["u1"].value("score") == 2.0
        assert by_src["u2"].value("score") == 10.0

    def test_non_matching_links_retained(self, multi_link_graph):
        result = aggregate_links(multi_link_graph, {"type": "rec"}, "score",
                                 average("w"))
        assert result.has_link("o1")
        assert not result.has_link("r1")

    def test_all_nodes_preserved(self, multi_link_graph):
        result = aggregate_links(multi_link_graph, {"type": "rec"}, "score",
                                 average("w"))
        assert result.node_ids() == multi_link_graph.node_ids()

    def test_agg_size_recorded(self, multi_link_graph):
        result = aggregate_links(multi_link_graph, {"type": "rec"}, "n", count())
        sizes = {l.src: l.value("agg_size") for l in result.links()
                 if l.has_type("agg")}
        assert sizes == {"u1": 3, "u2": 1}

    def test_mapping_result_sets_multiple_attrs(self, multi_link_graph):
        # Example 5 step 6: A′ assigns type='match' and retains w.
        result = aggregate_links(
            multi_link_graph,
            {"type": "rec"},
            "type",
            AttrMap(type=ConstAgg("match"), w=First("w")),
        )
        match_links = [l for l in result.links() if l.has_type("match")]
        assert len(match_links) == 2
        u1_link = next(l for l in match_links if l.src == "u1")
        assert u1_link.value("w") == 1.0  # retained from r1

    def test_threshold_condition(self, multi_link_graph):
        # Only w > 1.5 links aggregate; r1 is retained untouched.
        result = aggregate_links(multi_link_graph, {"type": "rec", "w__gt": 1.5},
                                 "score", average("w"))
        assert result.has_link("r1")
        agg = [l for l in result.links() if l.has_type("agg")]
        by_src = {l.src: l for l in agg}
        assert by_src["u1"].value("score") == 2.5  # avg(2, 3)

    def test_deterministic_ids(self, multi_link_graph):
        a = aggregate_links(multi_link_graph, {"type": "rec"}, "s", count())
        b = aggregate_links(multi_link_graph, {"type": "rec"}, "s", count())
        assert a.same_as(b)

    def test_custom_link_type_and_prefix(self, multi_link_graph):
        result = aggregate_links(multi_link_graph, {"type": "rec"}, "s", count(),
                                 link_type="recommend", link_id_prefix="R")
        rec = [l for l in result.links() if l.has_type("recommend")]
        assert len(rec) == 2
        assert all(str(l.id).startswith("R:") for l in rec)

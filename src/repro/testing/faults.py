"""Arming API for the named fault points in :mod:`repro.core.faults`.

Production code declares *where* failures happen (``fault_point(name,
**info)`` calls); this module decides *whether and how* they fire.  It
keeps its own registry and mirrors it into the core hook, so arming and
disarming compose: two tests (or two phases of a chaos schedule) can
arm disjoint fault sets without clobbering each other.

The canned handler factories cover the failure modes the resilience
layer must survive:

* :func:`raising` — the site's natural exception (pickle failure, WAL
  fsync ``OSError``, …);
* :func:`sleeping` — slow shards, hung executor slots;
* :func:`worker_killer` — SIGKILLs the process-pool worker behind a
  pipe request, forcing the reply-timeout path;
* :func:`file_corruptor` — flips bytes in a just-written snapshot so
  the read-side CRC verify fails honestly.

Registered fault-point names (the contract with production modules):

======================  ====================================================
``parallel.worker_request``  before a coordinator→worker pipe request
                             (``worker=`` the ``_ProcessWorker``)
``parallel.ship_slabs``      before pickling/shipping columnar slabs
``physical.scan_shard``      before each per-shard scan subtask
                             (``shard=`` index)
``wal.fsync``                before a WAL file fsync (``path=``)
``persist.snapshot``         after an atomic snapshot write (``path=``)
``serve.batch``              inside a gateway batch's executor slot
                             (``key=`` plan key)
======================  ====================================================
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.core import faults as core_faults
from repro.core.faults import FaultHandler

#: Every name production code is allowed to pass to ``fault_point`` —
#: tests assert arming an unknown name is a typo, not a silent no-op.
KNOWN_FAULT_POINTS = (
    "parallel.worker_request",
    "parallel.ship_slabs",
    "physical.scan_shard",
    "wal.fsync",
    "persist.snapshot",
    "serve.batch",
)

_registry_lock = threading.Lock()
_registry: dict[str, FaultHandler] = {}


def _mirror_locked() -> None:
    core_faults.install(dict(_registry) if _registry else None)


def arm(handlers: Mapping[str, FaultHandler]) -> None:
    """Arm (or re-arm) the given fault points; others stay as they are."""
    for name in handlers:
        if name not in KNOWN_FAULT_POINTS:
            raise ValueError(f"unknown fault point: {name!r}")
    with _registry_lock:
        _registry.update(handlers)
        _mirror_locked()


def disarm(*names: str) -> None:
    """Disarm specific fault points (missing names are fine)."""
    with _registry_lock:
        for name in names:
            _registry.pop(name, None)
        _mirror_locked()


def disarm_all() -> None:
    """Return the process to the zero-cost unarmed state."""
    with _registry_lock:
        _registry.clear()
        _mirror_locked()


@contextmanager
def armed_faults(handlers: Mapping[str, FaultHandler]) -> Iterator[None]:
    """Arm *handlers* for the duration of the block, then disarm them."""
    arm(handlers)
    try:
        yield
    finally:
        disarm(*handlers)


# ---------------------------------------------------------------- handlers


def _budgeted(action: Callable[..., None], times: int | None) -> FaultHandler:
    """Wrap *action* so it fires at most *times* times (None = always)."""
    if times is None:
        return action
    lock = threading.Lock()
    remaining = [times]

    def handler(name: str, **info: Any) -> None:
        with lock:
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
        action(name, **info)

    return handler


def raising(
    make_exc: Callable[[], BaseException], times: int | None = None
) -> FaultHandler:
    """A handler that raises a fresh exception from *make_exc*."""

    def action(name: str, **info: Any) -> None:
        raise make_exc()

    return _budgeted(action, times)


def sleeping(seconds: float, times: int | None = None) -> FaultHandler:
    """A handler that stalls the calling thread (slow shard, hung slot)."""

    def action(name: str, **info: Any) -> None:
        time.sleep(seconds)

    return _budgeted(action, times)


def worker_killer(times: int | None = None) -> FaultHandler:
    """SIGKILL the pool worker about to be asked for work.

    The ``parallel.worker_request`` site passes ``worker=`` (the
    coordinator-side ``_ProcessWorker``); killing its process right
    before the pipe send forces the reply-timeout / EOF path that a
    crashed worker produces in production.
    """

    def action(name: str, **info: Any) -> None:
        worker = info.get("worker")
        process = getattr(worker, "process", None)
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    return _budgeted(action, times)


def file_corruptor(times: int | None = None) -> FaultHandler:
    """Flip the last byte of the file at ``path=`` (CRC must catch it)."""

    def action(name: str, **info: Any) -> None:
        path = Path(info["path"])
        size = path.stat().st_size
        if size == 0:
            return
        with open(path, "r+b") as handle:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
            handle.flush()
            os.fsync(handle.fileno())

    return _budgeted(action, times)


# ---------------------------------------------------------------- schedule


@dataclass
class FaultPhase:
    """Arm *handlers* while the driver's request index is in [start, stop)."""

    start: int
    stop: int
    handlers: dict[str, FaultHandler] = field(default_factory=dict)
    _armed: bool = field(default=False, repr=False)
    _done: bool = field(default=False, repr=False)


class FaultSchedule:
    """Deterministic mid-run arming, keyed on submitted-request index.

    The chaos harness calls :meth:`poll` with its running request
    counter; phases arm and disarm themselves as the counter crosses
    their bounds.  Index-keyed (not wall-clock) so a seeded run arms the
    same faults at the same requests every time.
    """

    def __init__(self, phases: list[FaultPhase]) -> None:
        self.phases = sorted(phases, key=lambda p: (p.start, p.stop))

    def poll(self, index: int) -> None:
        for phase in self.phases:
            if phase._done:
                continue
            if not phase._armed and phase.start <= index < phase.stop:
                arm(phase.handlers)
                phase._armed = True
            elif index >= phase.stop:
                if phase._armed:
                    disarm(*phase.handlers)
                    phase._armed = False
                phase._done = True

    def finish(self) -> None:
        """Disarm everything this schedule armed (call in ``finally``)."""
        for phase in self.phases:
            if phase._armed:
                disarm(*phase.handlers)
                phase._armed = False
            phase._done = True

    @property
    def active(self) -> tuple[str, ...]:
        names: set[str] = set()
        for phase in self.phases:
            if phase._armed:
                names.update(phase.handlers)
        return tuple(sorted(names))

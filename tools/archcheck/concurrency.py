"""Rule family C: lock discipline across the concurrent subsystems.

* **C001** — a ``*_locked``-suffixed method is called without the lock:
  the caller is neither lexically inside a ``with self._lock`` block nor
  itself a ``*_locked`` method.  The suffix is the project's contract
  for "I assume ``self._lock`` is already held".
* **C002** — the extracted lock-order graph has a cycle: somewhere the
  code acquires lock B while holding lock A, and (possibly through other
  functions) lock A while holding lock B.  Also fires on a self-loop —
  re-acquiring a held non-reentrant lock is an instant deadlock.
* **C003** — a lock-guarded attribute is written without the lock.
  Guarded attributes are *inferred*, Eraser-style, from the code itself:
  any ``self.X`` a class ever mutates inside ``with self._lock`` (or
  inside a ``*_locked`` method) is treated as guarded, and every other
  mutation of it outside ``__init__`` must then hold the lock too.
  One unguarded write to a guarded field is exactly the bug that
  corrupts the plan caches under load.

The analysis is intraprocedural per function with a call-graph closure
for lock acquisition: ``self.method()`` resolves through the class (and
its bases in the scanned set), bare-name calls resolve within the
module.  Unresolvable calls (cross-module attribute calls) contribute no
edges — the pass under-approximates rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.archcheck.config import Config
from tools.archcheck.findings import Finding, Module

#: Method names treated as in-place mutations of their receiver.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end",
    "appendleft", "popleft", "sort",
})


@dataclass
class FunctionInfo:
    """Per-function facts pass 1 collects."""

    qualname: str                 #: ``Class.method`` or bare function name
    module: str
    cls: str | None
    is_locked_suffixed: bool
    #: lock node ids this function acquires directly via ``with``
    acquires: set[str] = field(default_factory=set)
    #: callee keys (same-module resolution) for the closure
    calls: set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    name: str
    module: str
    bases: list[str]
    has_own_lock: bool = False     #: ``__init__`` assigns ``self._lock``
    #: attr → guarded (written under lock somewhere) evidence
    guarded_attrs: set[str] = field(default_factory=set)
    #: (attr, path, line, qualname) unguarded writes outside ``__init__``
    unguarded_writes: list[tuple[str, str, int, str]] = field(
        default_factory=list
    )


def _attr_chain(node: ast.expr) -> str | None:
    """Dotted name of an expression (``self._lock`` → ``"self._lock"``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lock_node_of(expr: ast.expr, scope: "_Scope") -> str | None:
    """Stable graph-node id for an acquired lock expression, if it is one.

    ``self._lock`` maps to its *defining* class (a subclass inheriting the
    lock shares the node); module-level ``*_lock`` names map per module;
    function-local ``*_lock`` names map per function (they are real locks
    too — a scheduler's state lock can still participate in an
    inversion).
    """
    chain = _attr_chain(expr)
    if chain is None:
        return None
    if chain == "self._lock" and scope.cls is not None:
        definer = scope.lock_definer(scope.cls)
        return f"{scope.module}.{definer}._lock"
    if "." not in chain and chain.endswith("_lock"):
        if chain in scope.local_names:
            return f"{scope.module}.{scope.qualname}.{chain}"
        return f"{scope.module}.{chain}"
    return None


class _Scope:
    """Resolution context threaded through the visitors."""

    def __init__(self, module: str, cls: str | None, qualname: str,
                 lock_definers: dict[str, str], local_names: set[str]):
        self.module = module
        self.cls = cls
        self.qualname = qualname
        self._lock_definers = lock_definers
        self.local_names = local_names

    def lock_definer(self, cls: str) -> str:
        return self._lock_definers.get(f"{self.module}.{cls}", cls)


def check_concurrency(modules: list[Module], config: Config) -> list[Finding]:
    classes: dict[str, ClassInfo] = {}
    functions: dict[str, FunctionInfo] = {}
    findings: list[Finding] = []

    # ---- pass 0: class table (lock ownership, inheritance) ----------------
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [
                base
                for base in (_attr_chain(b) for b in node.bases)
                if base is not None
            ]
            info = ClassInfo(name=node.name, module=module.name, bases=bases)
            for item in node.body:
                if (isinstance(item, ast.FunctionDef)
                        and item.name == "__init__"):
                    for sub in ast.walk(item):
                        if (
                            isinstance(sub, ast.Assign)
                            and any(
                                _attr_chain(t) == "self._lock"
                                for t in sub.targets
                            )
                        ):
                            info.has_own_lock = True
            classes[f"{module.name}.{node.name}"] = info

    def lock_definer(module: str, cls: str) -> str:
        """Walk bases (same scanned set) to the class assigning _lock."""
        seen: set[str] = set()
        current = f"{module}.{cls}"
        while current in classes and current not in seen:
            seen.add(current)
            info = classes[current]
            if info.has_own_lock:
                return info.name
            next_base = None
            for base in info.bases:
                candidate = f"{module}.{base.split('.')[-1]}"
                if candidate in classes:
                    next_base = candidate
                    break
            if next_base is None:
                return info.name
            current = next_base
        return cls

    lock_definers = {
        key: lock_definer(info.module, info.name)
        for key, info in classes.items()
    }

    def owns_lock(module: str, cls: str) -> bool:
        definer = lock_definers.get(f"{module}.{cls}", cls)
        return classes.get(f"{module}.{definer}", ClassInfo(
            name=definer, module=module, bases=[]
        )).has_own_lock

    # ---- pass 1 + rule visitors per function ------------------------------
    #: (held lock, acquired-or-called) edges, with one example site each
    order_edges: dict[tuple[str, str], tuple[str, int, str]] = {}

    for module in modules:
        for cls_node, fn in _iter_functions(module.tree):
            cls_name = cls_node.name if cls_node is not None else None
            qualname = (
                f"{cls_name}.{fn.name}" if cls_name is not None else fn.name
            )
            local_names = {
                target.id
                for stmt in ast.walk(fn)
                if isinstance(stmt, ast.Assign)
                for target in stmt.targets
                if isinstance(target, ast.Name)
            }
            scope = _Scope(module.name, cls_name, qualname, lock_definers,
                           local_names)
            info = FunctionInfo(
                qualname=qualname,
                module=module.name,
                cls=cls_name,
                is_locked_suffixed=fn.name.endswith("_locked"),
            )
            functions[f"{module.name}.{qualname}"] = info
            in_class_with_lock = (
                cls_name is not None and owns_lock(module.name, cls_name)
            )
            class_guard = (
                f"{module.name}.{scope.lock_definer(cls_name)}._lock"
                if in_class_with_lock else None
            )
            visitor = _FunctionVisitor(
                module=module,
                scope=scope,
                info=info,
                class_guard=class_guard,
                classes=classes,
                findings=findings,
                order_edges=order_edges,
            )
            held: frozenset[str] = frozenset()
            if info.is_locked_suffixed and class_guard is not None:
                held = frozenset({class_guard})
            for stmt in fn.body:
                visitor.visit_stmt(stmt, held)
            if in_class_with_lock:
                _record_attr_writes(
                    module, cls_name, fn, class_guard, classes, visitor
                )

    # ---- C003: guarded attrs written without the lock ---------------------
    for key, info in classes.items():
        guarded = set(info.guarded_attrs)
        # inherited guarding: a subclass mutating a base's guarded field
        # must hold the (shared) lock too
        for other_key, other in classes.items():
            if other_key == key:
                continue
            if other.module == info.module and (
                other.name in info.bases or info.name in other.bases
            ):
                guarded |= other.guarded_attrs
        for attr, path, line, qualname in info.unguarded_writes:
            if attr in guarded:
                findings.append(Finding(
                    rule="C003",
                    path=path,
                    line=line,
                    symbol=qualname,
                    message=(
                        f"write to lock-guarded attribute self.{attr} "
                        f"outside `with self._lock` (class {info.name} "
                        f"guards it elsewhere)"
                    ),
                    detail=attr,
                ))

    # ---- C002: cycles in the lock-order graph -----------------------------
    closure = _transitive_acquires(functions)
    graph: dict[str, set[str]] = {}
    edge_sites: dict[tuple[str, str], tuple[str, int, str]] = {}
    for (held, item), site in order_edges.items():
        if item.startswith("call:"):
            callee = item[len("call:"):]
            for acquired in closure.get(callee, ()):
                graph.setdefault(held, set()).add(acquired)
                edge_sites.setdefault((held, acquired), site)
        else:
            graph.setdefault(held, set()).add(item)
            edge_sites.setdefault((held, item), site)
    findings.extend(_lock_cycles(graph, edge_sites))
    return findings


def _iter_functions(tree: ast.Module):
    """Yield (enclosing class or None, function def) pairs, nested included."""
    def walk(node: ast.AST, cls: ast.ClassDef | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)
    yield from walk(tree, None)


class _FunctionVisitor:
    """Statement walker tracking the set of held locks lexically."""

    def __init__(self, module, scope, info, class_guard, classes, findings,
                 order_edges):
        self.module = module
        self.scope = scope
        self.info = info
        self.class_guard = class_guard
        self.classes = classes
        self.findings = findings
        self.order_edges = order_edges

    def visit_stmt(self, stmt: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            acquired: list[str] = []
            for item in stmt.items:
                lock = _lock_node_of(item.context_expr, self.scope)
                if lock is not None:
                    self.info.acquires.add(lock)
                    for h in held:
                        self._edge(h, lock, stmt.lineno)
                    acquired.append(lock)
                else:
                    self._scan_expr(item.context_expr, held)
            inner = held | frozenset(acquired)
            for sub in stmt.body:
                self.visit_stmt(sub, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs are visited as their own functions by the driver
            return
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.stmt):
                self.visit_stmt(expr, held)
            else:
                self._scan_expr(expr, held)

    # -- expression scanning -------------------------------------------------

    def _scan_expr(self, node: ast.AST, held: frozenset[str]) -> None:
        for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
            chain = _attr_chain(call.func)
            if chain is None:
                continue
            self._check_locked_call(chain, call, held)
            callee = self._resolve_callee(chain)
            if callee is not None:
                self.info.calls.add(callee)
                for h in held:
                    self.order_edges.setdefault(
                        (h, f"call:{callee}"),
                        (self.module.rel_path, call.lineno,
                         self.scope.qualname),
                    )

    def _check_locked_call(self, chain: str, call: ast.Call,
                           held: frozenset[str]) -> None:
        parts = chain.split(".")
        if not parts[-1].endswith("_locked"):
            return
        if parts[0] != "self":
            return  # cross-object *_locked calls are out of contract scope
        guard = self.class_guard
        if guard is not None and guard in held:
            return
        if self.info.is_locked_suffixed:
            return
        self.findings.append(Finding(
            rule="C001",
            path=self.module.rel_path,
            line=call.lineno,
            symbol=self.scope.qualname,
            message=(
                f"call to {chain}() without holding self._lock — "
                f"the *_locked suffix requires the caller to hold it"
            ),
            detail=chain,
        ))

    def _resolve_callee(self, chain: str) -> str | None:
        parts = chain.split(".")
        if parts[0] == "self" and len(parts) == 2 and self.scope.cls:
            method = parts[1]
            current = f"{self.module.name}.{self.scope.cls}"
            seen: set[str] = set()
            while current in self.classes and current not in seen:
                seen.add(current)
                candidate = f"{current}.{method}"
                # optimistic: attribute methods resolve via the scanned MRO
                return candidate
            return None
        if len(parts) == 1:
            return f"{self.module.name}.{parts[0]}"
        return None

    def _edge(self, held: str, acquired: str, line: int) -> None:
        if held == acquired:
            self.findings.append(Finding(
                rule="C002",
                path=self.module.rel_path,
                line=line,
                symbol=self.scope.qualname,
                message=(
                    f"re-acquiring held lock {held} — non-reentrant "
                    f"locks deadlock immediately"
                ),
                detail=f"{held}->{acquired}",
            ))
            return
        self.order_edges.setdefault(
            (held, acquired),
            (self.module.rel_path, line, self.scope.qualname),
        )


def _record_attr_writes(module, cls_name, fn, class_guard, classes, visitor):
    """Per-method guarded/unguarded ``self.X`` mutation evidence (C003)."""
    info = classes[f"{module.name}.{cls_name}"]
    in_init = fn.name == "__init__"

    def mutated_attr(node: ast.AST) -> str | None:
        """The self-attribute a statement mutates, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _written_self_attr(target)
                if attr is not None:
                    return attr
        if isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _written_self_attr(target)
                if attr is not None:
                    return attr
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            chain = _attr_chain(node.value.func)
            if chain is not None:
                parts = chain.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "self"
                    and parts[2] in MUTATING_METHODS
                ):
                    return parts[1]
        return None

    def walk(stmt: ast.stmt, held: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquires_guard = any(
                _lock_node_of(item.context_expr, visitor.scope) == class_guard
                for item in stmt.items
            )
            for sub in stmt.body:
                walk(sub, held or acquires_guard)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        attr = mutated_attr(stmt)
        if attr is not None and not attr.startswith("__"):
            if held or (fn.name.endswith("_locked")):
                info.guarded_attrs.add(attr)
            elif not in_init:
                info.unguarded_writes.append(
                    (attr, module.rel_path, stmt.lineno,
                     f"{cls_name}.{fn.name}")
                )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                walk(child, held)

    held0 = fn.name.endswith("_locked")
    for stmt in fn.body:
        walk(stmt, held0)


def _written_self_attr(target: ast.expr) -> str | None:
    """``self.X``-rooted write target → ``X`` (depth ≤ 2: self.X.Y, self.X[k])."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            attr = _written_self_attr(element)
            if attr is not None:
                return attr
        return None
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        inner = node.value
        if isinstance(inner, ast.Name) and inner.id == "self":
            return node.attr
        if isinstance(inner, ast.Subscript):
            inner = inner.value
        if isinstance(inner, ast.Attribute) and isinstance(
            inner.value, ast.Name
        ) and inner.value.id == "self":
            return inner.attr  # self.X.Y = / self.X[k].Y = → mutates X
    return None


def _transitive_acquires(
    functions: dict[str, FunctionInfo]
) -> dict[str, set[str]]:
    """Fixpoint: every lock a function may acquire through its calls."""
    closure = {key: set(info.acquires) for key, info in functions.items()}
    changed = True
    while changed:
        changed = False
        for key, info in functions.items():
            for callee in info.calls:
                extra = closure.get(callee)
                if extra and not extra <= closure[key]:
                    closure[key] |= extra
                    changed = True
    return closure


def _lock_cycles(
    graph: dict[str, set[str]],
    edge_sites: dict[tuple[str, str], tuple[str, int, str]],
) -> list[Finding]:
    findings: list[Finding] = []
    seen_cycles: set[frozenset[str]] = set()
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    stack: list[str] = []

    def visit(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for target in sorted(graph.get(node, ())):
            if color.get(target, WHITE) == GREY:
                cycle = stack[stack.index(target):]
                key = frozenset(cycle)
                if key in seen_cycles:
                    continue
                seen_cycles.add(key)
                path, line, qualname = edge_sites.get(
                    (node, target), ("<unknown>", 0, "<unknown>")
                )
                findings.append(Finding(
                    rule="C002",
                    path=path,
                    line=line,
                    symbol=qualname,
                    message=(
                        "lock-order inversion: "
                        + " -> ".join(cycle + [target])
                        + " (acquired in both orders somewhere in the "
                        "scanned set)"
                    ),
                    detail="->".join(sorted(key)),
                ))
            elif color.get(target, WHITE) == WHITE:
                visit(target)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            visit(node)
    return findings

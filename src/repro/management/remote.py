"""Simulated remote sites behind an OpenSocial-style API.

The paper's architecture integrates "externally integrated (e.g.,
friendship connection obtained from Facebook)" data through open standards
(OpenID/OpenSocial).  Real remote sites are out of reach offline, so this
module simulates them (DESIGN.md substitution #3): each
:class:`RemoteSocialSite` owns profiles, connections and activity streams,
exposes them through a permissioned API, and *accounts every call* so that
the Table 2 bench can measure — not assert — the behavioural differences
between the three content-management models.

The API surface mirrors OpenSocial's people/activities services:
``get_profile``, ``get_connections``, ``get_activities``,
``post_activity``, ``push_connection``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core import Id
from repro.errors import ManagementError, PermissionDeniedError

#: Permission scopes a user may grant a client site (OAuth-style).
SCOPE_PROFILE = "profile"
SCOPE_CONNECTIONS = "connections"
SCOPE_ACTIVITIES = "activities"
SCOPE_WRITE = "write"
ALL_SCOPES = frozenset({SCOPE_PROFILE, SCOPE_CONNECTIONS, SCOPE_ACTIVITIES,
                        SCOPE_WRITE})


@dataclass
class Profile:
    """A user's social profile on one site."""

    user_id: Id
    name: str
    interests: tuple[str, ...] = ()
    attributes: dict = field(default_factory=dict)


@dataclass
class Activity:
    """One activity-stream entry (e.g. 'tagged item X')."""

    user_id: Id
    verb: str
    item_id: Id
    payload: dict = field(default_factory=dict)
    sequence: int = 0


@dataclass
class CallLog:
    """Per-site API accounting (reads/writes/denials)."""

    reads: int = 0
    writes: int = 0
    denials: int = 0

    @property
    def total(self) -> int:
        """All API calls, including denied ones."""
        return self.reads + self.writes + self.denials


class RemoteSocialSite:
    """A simulated social site (Facebook / Y!IM / Flickr stand-in)."""

    def __init__(self, name: str):
        self.name = name
        self._profiles: dict[Id, Profile] = {}
        self._connections: dict[Id, set[Id]] = {}
        self._activities: list[Activity] = []
        self._grants: dict[tuple[Id, str], set[str]] = {}
        self.calls = CallLog()
        self._sequence = 0

    # -------------------------------------------------------------- site data
    def register_user(self, user_id: Id, name: str,
                      interests: tuple[str, ...] = ()) -> Profile:
        """Create a profile (the user signing up on this site)."""
        profile = Profile(user_id=user_id, name=name, interests=interests)
        self._profiles[user_id] = profile
        self._connections.setdefault(user_id, set())
        return profile

    def connect(self, a: Id, b: Id) -> None:
        """Create a mutual connection between two registered users."""
        for user in (a, b):
            if user not in self._profiles:
                raise ManagementError(
                    f"{self.name}: user {user!r} has no profile here"
                )
        self._connections[a].add(b)
        self._connections[b].add(a)

    def record_activity(self, user_id: Id, verb: str, item_id: Id,
                        **payload) -> Activity:
        """Append to the user's activity stream (site-internal write)."""
        self._sequence += 1
        activity = Activity(user_id=user_id, verb=verb, item_id=item_id,
                            payload=payload, sequence=self._sequence)
        self._activities.append(activity)
        return activity

    @property
    def num_users(self) -> int:
        """Registered profile count."""
        return len(self._profiles)

    def has_profile(self, user_id: Id) -> bool:
        """True when the user holds a profile on this site."""
        return user_id in self._profiles

    # ------------------------------------------------------------ permissions
    def grant(self, user_id: Id, client: str, scopes: set[str]) -> None:
        """User grants *client* access to the given scopes (OAuth consent)."""
        unknown = scopes - ALL_SCOPES
        if unknown:
            raise ManagementError(f"unknown scopes: {unknown}")
        self._grants.setdefault((user_id, client), set()).update(scopes)

    def revoke(self, user_id: Id, client: str) -> None:
        """Drop all grants of a user to a client."""
        self._grants.pop((user_id, client), None)

    def _check(self, user_id: Id, client: str, scope: str) -> None:
        if scope not in self._grants.get((user_id, client), set()):
            self.calls.denials += 1
            raise PermissionDeniedError(self.name, user_id, scope)

    # ------------------------------------------------------------------- API
    def get_profile(self, user_id: Id, client: str) -> Profile:
        """OpenSocial people.get for one user."""
        self._check(user_id, client, SCOPE_PROFILE)
        self.calls.reads += 1
        profile = self._profiles.get(user_id)
        if profile is None:
            raise ManagementError(f"{self.name}: no profile for {user_id!r}")
        return profile

    def get_connections(self, user_id: Id, client: str) -> set[Id]:
        """OpenSocial people.get with the @friends group."""
        self._check(user_id, client, SCOPE_CONNECTIONS)
        self.calls.reads += 1
        return set(self._connections.get(user_id, set()))

    def get_activities(self, user_id: Id, client: str,
                       since: int = 0) -> list[Activity]:
        """OpenSocial activities.get, optionally incremental (since seq)."""
        self._check(user_id, client, SCOPE_ACTIVITIES)
        self.calls.reads += 1
        return [a for a in self._activities
                if a.user_id == user_id and a.sequence > since]

    def post_activity(self, user_id: Id, client: str, verb: str,
                      item_id: Id, **payload) -> Activity:
        """OpenSocial activities.create on behalf of the user."""
        self._check(user_id, client, SCOPE_WRITE)
        self.calls.writes += 1
        return self.record_activity(user_id, verb, item_id, **payload)

    def push_connection(self, user_id: Id, other: Id, client: str) -> None:
        """Propagate a connection established on the content site back here
        (the Open Cartel model's write-back path)."""
        self._check(user_id, client, SCOPE_WRITE)
        self.calls.writes += 1
        if other not in self._profiles:
            self.register_user(other, f"user{other}")
        self.connect(user_id, other)

    # ----------------------------------------------------------------- admin
    def iter_users(self) -> Iterator[Id]:
        """All registered user ids (site-internal, not via the API)."""
        return iter(sorted(self._profiles, key=repr))

"""Gateway-side resilience: hedge pacing and breaker visibility.

The plan layer owns the degradation ladder's breakers
(processes→threads on the :class:`~repro.plan.parallel.ProcessShardPool`,
threads→sequential and attr-index→scan on the
:class:`~repro.plan.planner.QueryPlanner`); this module holds the pieces
the *gateway* adds on top:

* :class:`HedgeTracker` — an online latency profile of batch executions
  deciding when a pool slot has been held suspiciously long.  A batch
  whose execution exceeds the tracked quantile (times a multiplier) gets
  a hedged re-dispatch on a separate thread: batch execution is
  deterministic and read-only, so first-completion-wins is safe, and a
  wedged slot costs one duplicated batch instead of a wedged request.
* :func:`breaker_snapshot` — one mapping of every breaker the serving
  session carries, for ``GatewayStats`` (state transitions are already
  visible per-execution in EXPLAIN's ``resilience:`` header).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.core.resilience import BreakerStats
from repro.serve.metrics import percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import Session


class HedgeTracker:
    """Online quantile of batch-execution latencies → the hedge delay.

    Keeps the last *max_samples* execution times (loop-thread only, no
    lock); :meth:`hedge_delay` is ``None`` until *min_samples* have been
    observed — hedging on no evidence would just double early load —
    and then ``quantile × multiplier``, floored at *min_delay_s* so
    micro-batches don't hedge on scheduler noise.
    """

    def __init__(
        self,
        quantile: float = 0.95,
        multiplier: float = 2.0,
        min_samples: int = 16,
        max_samples: int = 256,
        min_delay_s: float = 0.010,
    ) -> None:
        self.quantile = quantile
        self.multiplier = multiplier
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.min_delay_s = min_delay_s
        self._samples: list[float] = []
        self._next = 0
        self.hedges = 0

    def observe(self, elapsed_s: float) -> None:
        """Record one batch execution's wall time (ring-buffered)."""
        if len(self._samples) < self.max_samples:
            self._samples.append(elapsed_s)
        else:
            self._samples[self._next] = elapsed_s
            self._next = (self._next + 1) % self.max_samples

    def hedge_delay(self) -> float | None:
        """Seconds to wait before hedging, or ``None`` (not enough data)."""
        if len(self._samples) < self.min_samples:
            return None
        cut = percentile(sorted(self._samples), self.quantile * 100.0)
        return max(cut * self.multiplier, self.min_delay_s)


def breaker_snapshot(session: "Session") -> Mapping[str, BreakerStats]:
    """Every breaker the serving session carries, by name.

    Reads the planner's ladder breakers and — only if one was ever
    spawned — the process pool's; never *creates* a pool just to report
    on it.
    """
    planner = session.planner
    snapshot: dict[str, BreakerStats] = {
        planner.pool_breaker.name: planner.pool_breaker.stats(),
        planner.attr_breaker.name: planner.attr_breaker.stats(),
    }
    process_pool = planner._process_pool
    if process_pool is not None:
        snapshot[process_pool.breaker.name] = process_pool.breaker.stats()
    return snapshot


__all__ = ["HedgeTracker", "breaker_snapshot"]

"""The SocialScope facade: the three-layer architecture of Figure 1.

    Content Management  —  integrating, maintaining and physically
                           accessing the content and social data;
    Information Discovery — analyzing content to derive interesting new
                           information, and interpreting and processing
                           the user's information need;
    Information Presentation — exploring the discovered information and
                           helping users better understand it.

:class:`SocialScope` wires a :class:`~repro.management.DataManager`
(bottom), a :class:`~repro.analysis.ContentAnalyzer` +
:class:`~repro.discovery.InformationDiscoverer` (middle), and an
:class:`~repro.presentation.InformationOrganizer` (top) into the
two calls an application actually makes::

    scope = SocialScope.from_graph(graph)
    page = scope.search(user_id, "Denver attractions")     # query
    page = scope.recommend(user_id)                        # empty query

Remote sites attach through the management layer (`attach_remote`), and
offline analyses run through `analyze`, after which discovery sees the
enriched graph automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import ContentAnalyzer
from repro.core import Id, SocialContentGraph
from repro.discovery import (
    DiscoveryConfig,
    InformationDiscoverer,
    MeaningfulSocialGraph,
)
from repro.management import DataManager, RemoteSocialSite
from repro.presentation import (
    HierarchicalPresenter,
    InformationOrganizer,
    OrganizerConfig,
    ResultPage,
)


@dataclass
class SocialScopeConfig:
    """End-to-end configuration of the stack."""

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    organizer: OrganizerConfig = field(default_factory=OrganizerConfig)
    #: analyses to run automatically on construction (names from the
    #: ContentAnalyzer registry); empty = none.
    auto_analyses: tuple[str, ...] = ()


class SocialScope:
    """The assembled system."""

    def __init__(self, data_manager: DataManager,
                 config: SocialScopeConfig | None = None):
        self.config = config or SocialScopeConfig()
        self.data_manager = data_manager
        self.analyzer = ContentAnalyzer(self.data_manager.graph())
        for name in self.config.auto_analyses:
            self.analyze(name)
        self._rebuild_upper_layers()

    # ------------------------------------------------------------ construction
    @classmethod
    def from_graph(
        cls,
        graph: SocialContentGraph,
        config: SocialScopeConfig | None = None,
    ) -> "SocialScope":
        """Build the stack around an existing logical graph."""
        dm = DataManager()
        dm.load_graph(graph)
        return cls(dm, config)

    def _rebuild_upper_layers(self) -> None:
        graph = self.analyzer.graph
        self.discoverer = InformationDiscoverer(
            graph, config=self.config.discovery
        )
        self.organizer = InformationOrganizer(
            graph, config=self.config.organizer
        )

    # ---------------------------------------------------------------- content
    @property
    def graph(self) -> SocialContentGraph:
        """The current (possibly analysis-enriched) social content graph."""
        return self.analyzer.graph

    def attach_remote(self, site: RemoteSocialSite,
                      with_activities: bool = False) -> None:
        """Pull a remote site's social data in (Open Cartel integration)."""
        self.data_manager.attach_remote(site, with_activities=with_activities)
        self.analyzer.graph = self.data_manager.graph()
        self._rebuild_upper_layers()

    def analyze(self, name: str) -> None:
        """Run one Content Analyzer analysis and refresh discovery.

        The enriched graph lives in the analyzer; the Data Manager keeps
        the raw records (re-deriving is cheap and derivations are marked
        with ``derived_by``, so nothing is lost by not persisting them).
        """
        self.analyzer.run(name)
        self._rebuild_upper_layers()

    # -------------------------------------------------------------- discovery
    def discover(self, user_id: Id, text: str = "", structural=None,
                 strategy: str | None = None, k: int | None = None
                 ) -> MeaningfulSocialGraph:
        """Query → MSG (stop before presentation)."""
        return self.discoverer.discover(
            user_id, text, structural=structural, strategy=strategy, k=k
        )

    # ------------------------------------------------------------ presentation
    def search(self, user_id: Id, query: str, structural=None,
               strategy: str | None = None, k: int | None = None) -> ResultPage:
        """The full pipeline: query → MSG → organized result page."""
        msg = self.discover(user_id, query, structural=structural,
                            strategy=strategy, k=k)
        return self.organizer.organize(msg)

    def recommend(self, user_id: Id, k: int | None = None) -> ResultPage:
        """Empty-query mode: social relevance only (§4)."""
        return self.search(user_id, "", k=k)

    def explore(self, user_id: Id, query: str) -> HierarchicalPresenter:
        """Zoomable hierarchical presentation of a query's results."""
        msg = self.discover(user_id, query)
        return self.organizer.hierarchy(msg)

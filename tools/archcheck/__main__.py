"""CLI: ``python -m tools.archcheck src/``.

Exit codes: 0 clean (baselined findings allowed), 1 active findings or
stale baseline entries, 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.archcheck.runner import RULE_FAMILIES, run_check


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.archcheck",
        description="Architecture linter: layering, lock discipline, "
                    "determinism, and input purity.",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="source roots to scan (e.g. src/)",
    )
    parser.add_argument(
        "--rules", default=",".join(RULE_FAMILIES),
        help="comma-separated rule families to run "
             f"(default: all of {', '.join(RULE_FAMILIES)})",
    )
    parser.add_argument(
        "--baseline", default="tools/archcheck/baseline.json",
        help="baseline suppression file, repo-relative "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; report every finding as active",
    )
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    unknown = [r for r in rules if r not in RULE_FAMILIES]
    if unknown:
        print(
            f"archcheck: unknown rule families {unknown}; "
            f"known: {sorted(RULE_FAMILIES)}",
            file=sys.stderr,
        )
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"archcheck: no such path: {missing}", file=sys.stderr)
        return 2

    try:
        report = run_check(
            args.paths,
            repo_root=Path.cwd(),
            rules=rules,
            baseline=None if args.no_baseline else args.baseline,
        )
    except ValueError as exc:  # malformed baseline
        print(f"archcheck: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

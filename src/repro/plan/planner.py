"""The query planner: compile-and-execute service over one live graph.

One :class:`QueryPlanner` is owned by each
:class:`~repro.discovery.discoverer.InformationDiscoverer` (and therefore
by each :class:`~repro.api.session.Session`).  It holds the three pieces
compilation needs and serving must keep coherent:

* **statistics** — :class:`~repro.core.stats.GraphStats` with the term
  histogram, collected lazily once per graph generation;
* **the plan cache** — compiled plans keyed structurally and stamped with
  the generation, so any graph change (Data-Manager write, analysis,
  remote attach) invalidates every cached plan at once;
* **the index binding** — where the semantic inverted index lives and
  which population it covers, attached by the session.

``semantic_candidates`` is the serving entry point: it builds the σN plan
for a parsed query's scope condition and runs it through the compiler,
which is how both ``Session.run`` and
``InformationDiscoverer.discover_query`` execute every query.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping

from repro.core.expr import (
    CombineScoresE,
    ConnectionBasisE,
    Expr,
    SocialScoreE,
    input_graph,
    plan_key,
)
from repro.core.graph import SocialContentGraph
from repro.core.stats import GraphStats
from repro.plan.cache import PlanCache
from repro.plan.compiler import CostModel, IndexBinding, compile_plan
from repro.plan.physical import PhysicalPlan, PlanExecution

#: Name under which the planner binds its live graph in plan environments.
BASE_GRAPH = "G"


class QueryPlanner:
    """Compiles logical plans against a live graph, with a plan cache."""

    def __init__(
        self,
        graph: SocialContentGraph,
        cost_model: CostModel | None = None,
        cache_size: int = 256,
    ):
        self.graph = graph
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.cache = PlanCache(cache_size)
        #: bumped on every refresh/attach — the cache's generation stamp
        self.generation = 0
        self._stats: GraphStats | None = None
        self._index: IndexBinding | None = None
        #: lazily built §6.2 endorsement indexes, keyed by variant and
        #: stamped with the generation they were built under
        self._network_indexes: dict[str, Any] = {}
        self._network_generation = -1
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def refresh(self, graph: SocialContentGraph) -> None:
        """Point at a (possibly new) graph; drops stats and stales all plans.

        Nothing is recomputed here — statistics rebuild lazily on the next
        compile, and stale cache entries die on lookup, so back-to-back
        refreshes cost nothing (the session's dirty-flag discipline).
        """
        with self._lock:
            self.graph = graph
            self._stats = None
            self.generation += 1

    def attach_index(
        self,
        item_type: str,
        provider: Callable[[], Any],
        scorer_provider: Callable[[], Any] | None = None,
    ) -> None:
        """Declare a semantic index over *item_type* nodes of the graph.

        *provider* materialises the index lazily (called only when a plan
        actually takes the index path); *scorer_provider* exposes the
        scorer shared with the scan path for the parity check.  Attaching
        changes what plans compile to, so it bumps the generation.
        """
        with self._lock:
            self._index = IndexBinding(
                item_type=item_type,
                provider=provider,
                scorer_provider=scorer_provider,
            )
            self.generation += 1

    @property
    def index_binding(self) -> IndexBinding | None:
        return self._index

    def network_index(self, variant: str) -> Any:
        """The §6.2 endorsement index of the live graph (lazy, cached).

        ``variant`` is ``"exact"`` (per-user lists) or ``"clustered"``
        (per-cluster upper-bound lists).  Indexes rebuild lazily after any
        generation bump, so a cached physical plan re-executing after a
        refresh can never read stale postings.
        """
        with self._lock:
            if self._network_generation != self.generation:
                self._network_indexes.clear()
                self._network_generation = self.generation
            index = self._network_indexes.get(variant)
            if index is None:
                from repro.indexing.endorsement import (
                    clustered_endorsement_index,
                    exact_endorsement_index,
                )

                if variant == "clustered":
                    index = clustered_endorsement_index(self.graph)
                else:
                    index = exact_endorsement_index(self.graph)
                self._network_indexes[variant] = index
        return index

    @property
    def stats(self) -> GraphStats:
        """Term-aware statistics of the current graph (lazy, per generation)."""
        if self._stats is None:
            with self._lock:
                if self._stats is None:
                    self._stats = GraphStats.of(self.graph, with_terms=True)
        return self._stats

    # -- compilation ----------------------------------------------------------

    def compile(self, expr: Expr, access: str = "auto") -> tuple[PhysicalPlan, bool]:
        """The compiled plan for *expr*, and whether the cache served it."""
        structural_key = plan_key(expr)
        key = (structural_key, access)
        generation = self.generation
        cached = self.cache.get(key, generation)
        if cached is not None:
            return cached, True
        plan = compile_plan(
            expr,
            self.stats,
            index=self._index,
            access=access,
            cost_model=self.cost_model,
            key=structural_key,
        )
        self.cache.put(key, generation, plan)
        return plan, False

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        expr: Expr,
        env: Mapping[str, SocialContentGraph] | None = None,
        access: str = "auto",
    ) -> PlanExecution:
        """Compile (or fetch) and run a plan against the live graph."""
        plan, cache_hit = self.compile(expr, access)
        provider = self._index.provider if self._index is not None else None
        execution = plan.execute(
            env if env is not None else {BASE_GRAPH: self.graph},
            index_provider=provider,
            network_provider=self.network_index,
        )
        execution.cache_hit = cache_hit
        return execution

    def semantic_candidates(
        self,
        query,
        item_type: str = "item",
        scorer: Any = None,
        access: str = "auto",
    ) -> PlanExecution:
        """Execute the σN⟨C,S⟩ scoping plan of a parsed query.

        This is the compiled replacement for the hand-written
        ``SemanticRelevance.candidates`` pipeline: the same condition, the
        same scorer, but routed through optimize → lower → (cost-chosen)
        scan or index → profiled execution.
        """
        condition = query.scope_condition(default_type=item_type)
        expr = input_graph(BASE_GRAPH).select_nodes(
            condition, scorer if condition.has_keywords else None
        )
        return self.execute(expr, access=access)

    def discovery_pipeline(
        self,
        query,
        item_type: str = "item",
        scorer: Any = None,
        strategy: str = "friends",
        sim_threshold: float = 0.1,
        act_type: str = "visit",
        alpha: float = 0.5,
        drop_zero: bool = True,
        min_fit: float = 0.15,
        min_qualified: int = 2,
        max_experts: int = 10,
        access: str = "auto",
    ) -> PlanExecution:
        """Compile and run the *whole* discovery pipeline as one plan.

        semantic σN⟨C,S⟩ candidates → connection basis → social scoring
        (strategy-parameterised; ``"auto"`` lets the compiler pick from
        statistics) → α-combination.  The candidate sub-plan is shared
        between the scoring and combination stages (a DAG, as in Example
        4), so it executes once; EXPLAIN covers every operator of the
        pipeline and the plan cache covers the full query shape.
        """
        condition = query.scope_condition(default_type=item_type)
        G = input_graph(BASE_GRAPH)
        candidates = G.select_nodes(
            condition, scorer if condition.has_keywords else None
        )
        basis = ConnectionBasisE(
            G,
            user_id=query.user_id,
            keywords=tuple(query.keywords),
            min_fit=min_fit,
            min_qualified=min_qualified,
            max_experts=max_experts,
        )
        social = SocialScoreE(
            G,
            candidates,
            basis,
            strategy=strategy,
            user_id=query.user_id,
            keywords=tuple(query.keywords),
            sim_threshold=sim_threshold,
            act_type=act_type,
        )
        root = CombineScoresE(candidates, social, alpha=alpha,
                              drop_zero=drop_zero)
        return self.execute(root, access=access)

"""Experiment E4 + operator ablation — algebra operator throughput.

Times every §5 operator on the shared travel graph, plus the full
Example 4 expression.  These are the micro-costs the optimizer's cost
model orders plans by.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Condition,
    SetAgg,
    aggregate_links,
    aggregate_nodes,
    average,
    compose,
    count,
    example4_search,
    figure2_pattern,
    find_paths,
    intersection,
    minus,
    select_links,
    select_nodes,
    semi_join,
    union,
    JaccardOnNodeSets,
)
from repro.workloads import JOHN


@pytest.fixture(scope="module")
def graph(travel_site):
    return travel_site.graph


def test_select_nodes_structural(graph, benchmark):
    benchmark(select_nodes, graph, {"type": "destination"})


def test_select_nodes_keywords(graph, benchmark):
    condition = Condition({"type": "destination"}, keywords="denver baseball")
    benchmark(select_nodes, graph, condition)


def test_select_links(graph, benchmark):
    benchmark(select_links, graph, {"type": "visit"})


def test_union(graph, benchmark):
    visits = select_links(graph, {"type": "visit"})
    friends = select_links(graph, {"type": "friend"})
    benchmark(union, visits, friends)


def test_intersection(graph, benchmark):
    acts = select_links(graph, {"type": "act"})
    visits = select_links(graph, {"type": "visit"})
    benchmark(intersection, acts, visits)


def test_minus(graph, benchmark):
    acts = select_links(graph, {"type": "act"})
    visits = select_links(graph, {"type": "visit"})
    benchmark(minus, acts, visits)


def test_semi_join(graph, benchmark):
    john = select_nodes(graph, {"id": JOHN})
    benchmark(semi_join, graph, john, ("src", "src"))


def test_compose(graph, benchmark):
    friends = select_links(graph, {"type": "friend"})
    visits = select_links(graph, {"type": "visit"})
    benchmark(compose, friends, visits, ("tgt", "src"),
              lambda l1, l2: {"type": "friend_visit"})


def test_node_aggregation(graph, benchmark):
    benchmark(aggregate_nodes, graph, {"type": "visit"}, "src", "vst",
              SetAgg("tgt"))


def test_link_aggregation(graph, benchmark):
    friends = select_links(graph, {"type": "friend"})
    visits = select_links(graph, {"type": "visit"})
    composed = compose(friends, visits, ("tgt", "src"),
                       lambda l1, l2: {"type": "fv", "w": 1.0})
    benchmark(aggregate_links, composed, {"type": "fv"}, "cnt", count())


def test_pattern_matching(graph, benchmark):
    # match links required: derive a small match network first
    from repro.core import (
        AttrMap, ConstAgg, First, aggregate_links as agg_links,
        aggregate_nodes as agg_nodes, select_links as sel_links,
        select_nodes as sel_nodes, semi_join as sjoin, union as un,
    )

    g1 = sel_links(sjoin(graph, sel_nodes(graph, {"id": JOHN}),
                         ("src", "src")), {"type": "visit"})
    g1p = agg_nodes(g1, {"type": "visit"}, "src", "vst", SetAgg("tgt"))
    g2 = sel_links(sjoin(graph, sel_nodes(graph, {"id__ne": JOHN}),
                         ("src", "src")), {"type": "visit"})
    g2p = agg_nodes(g2, {"type": "visit"}, "src", "vst", SetAgg("tgt"))
    g3 = compose(g1p, g2p, ("tgt", "tgt"), JaccardOnNodeSets("vst", "sim"))
    g4 = sel_links(
        agg_links(g3, {"sim__gt": 0.1}, "type",
                  AttrMap(type=ConstAgg("match"), sim=First("sim"))),
        {"type": "match"},
    )
    base = un(g4, sel_links(graph, {"type": "visit"}))
    pattern = figure2_pattern(JOHN)
    benchmark(find_paths, base, pattern)


def test_example4_full_expression(graph, benchmark, report):
    result = example4_search(graph, JOHN)
    report(
        f"[example4] result: {result.num_nodes} nodes, "
        f"{result.num_links} links"
    )
    benchmark(example4_search, graph, JOHN)

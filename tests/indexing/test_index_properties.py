"""Property-based tests for the §6.2 indexing invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import Link, Node, SocialContentGraph
from repro.indexing import (
    ClusteredIndex,
    ExactUserIndex,
    TaggingData,
    behavior_clustering,
    network_clustering,
)

FAST = settings(max_examples=25, deadline=None)


@st.composite
def tagging_graphs(draw):
    """Small random tagging sites: users, items, friendships, tag actions."""
    n_users = draw(st.integers(min_value=2, max_value=10))
    n_items = draw(st.integers(min_value=1, max_value=8))
    tags = ["t0", "t1", "t2"]
    g = SocialContentGraph()
    users = list(range(1, n_users + 1))
    items = [f"i{k}" for k in range(n_items)]
    for u in users:
        g.add_node(Node(u, type="user"))
    for i in items:
        g.add_node(Node(i, type="item"))
    n_edges = draw(st.integers(min_value=0, max_value=2 * n_users))
    for _ in range(n_edges):
        a = draw(st.sampled_from(users))
        b = draw(st.sampled_from(users))
        if a == b or g.has_link(f"fr:{a}->{b}"):
            continue
        g.add_link(Link(f"fr:{a}->{b}", a, b, type="connect, friend"))
        g.add_link(Link(f"fr:{b}->{a}", b, a, type="connect, friend"))
    n_actions = draw(st.integers(min_value=0, max_value=3 * n_users))
    seq = 0
    for _ in range(n_actions):
        u = draw(st.sampled_from(users))
        i = draw(st.sampled_from(items))
        chosen = draw(st.lists(st.sampled_from(tags), min_size=1, max_size=2,
                               unique=True))
        seq += 1
        if g.has_link(f"tg:{seq}"):
            continue
        g.add_link(Link(f"tg:{seq}", u, i, type="act, tag", tags=chosen))
    return g


class TestScoreInvariants:
    @given(g=tagging_graphs())
    @FAST
    def test_scores_non_negative_and_bounded(self, g):
        data = TaggingData.from_graph(g)
        for user in data.users:
            for (item, tag), taggers in data.taggers.items():
                score = data.score_tag(item, user, tag)
                assert 0.0 <= score <= len(taggers)

    @given(g=tagging_graphs())
    @FAST
    def test_score_monotone_in_network(self, g):
        # Adding a friend can only increase any score (f = count is monotone).
        data = TaggingData.from_graph(g)
        if len(data.users) < 2 or not data.taggers:
            return
        u, v = data.users[0], data.users[-1]
        (item, tag), _ = next(iter(sorted(data.taggers.items(), key=repr)))
        before = data.score_tag(item, u, tag)
        data.network.setdefault(u, set()).add(v)
        after = data.score_tag(item, u, tag)
        assert after >= before


class TestIndexInvariants:
    @given(g=tagging_graphs())
    @FAST
    def test_exact_index_entries_match_scores(self, g):
        data = TaggingData.from_graph(g)
        index = ExactUserIndex(data)
        for (tag, user), entries in index.lists.items():
            for item, stored in entries:
                assert stored == data.score_tag(item, user, tag)
                assert stored > 0  # zero-score items never stored

    @given(g=tagging_graphs())
    @FAST
    def test_exact_lists_sorted_descending(self, g):
        data = TaggingData.from_graph(g)
        index = ExactUserIndex(data)
        for entries in index.lists.values():
            scores = [s for _, s in entries]
            assert scores == sorted(scores, reverse=True)

    @given(g=tagging_graphs(), theta=st.floats(min_value=0.0, max_value=1.0))
    @FAST
    def test_eq1_upper_bound_property(self, g, theta):
        """Eq 1: the cluster bound dominates every member's exact score."""
        data = TaggingData.from_graph(g)
        clustering = network_clustering(data, theta)
        index = ClusteredIndex(data, clustering)
        for (tag, cluster), entries in index.lists.items():
            members = clustering.members(cluster)
            for item, bound in entries:
                assert bound == max(
                    data.score_tag(item, u, tag) for u in members
                )

    @given(g=tagging_graphs(), theta=st.floats(min_value=0.0, max_value=1.0))
    @FAST
    def test_clustered_query_equals_brute_force_scores(self, g, theta):
        data = TaggingData.from_graph(g)
        if not data.users or len(data.tag_vocab) < 2:
            return
        index = ClusteredIndex(data, behavior_clustering(data, theta))
        user = data.users[0]
        keywords = data.tag_vocab[:2]
        got, _ = index.query(user, keywords, 5)
        expected = data.brute_force_topk(user, keywords, 5)
        assert [s for _, s in got] == [s for _, s in expected]

    @given(g=tagging_graphs(), theta=st.floats(min_value=0.0, max_value=1.0))
    @FAST
    def test_clustering_always_partitions(self, g, theta):
        data = TaggingData.from_graph(g)
        for strategy in (network_clustering, behavior_clustering):
            clustering = strategy(data, theta)
            assert clustering.is_partition_of(data.users)

    @given(g=tagging_graphs())
    @FAST
    def test_clustered_index_never_larger_than_exact(self, g):
        data = TaggingData.from_graph(g)
        exact_entries = ExactUserIndex(data).report().entries
        clustered = ClusteredIndex(data, network_clustering(data, 0.3))
        assert clustered.report().entries <= exact_entries

"""Graph-encoded social-stage computations for the compiled pipeline.

The paper frames the social scoring stage — connection selection, friend /
expert endorsement, the Example 5 collaborative filter, content-based
support — as semi-joins and aggregations over the candidate null graph
σN⟨C,S⟩.  This module is the *compute kernel* behind the logical plan
nodes of :mod:`repro.core.expr` (``ConnectionBasisE``, ``SocialScoreE``,
``CombineScoresE``): every function takes graphs in and hands a graph
back, so the whole discovery pipeline can run as one physical plan with
per-operator profiling.

The functions deliberately mirror the reference implementations in
:mod:`repro.discovery.connections` and :mod:`repro.discovery.strategies`
step for step — the differential parity suite
(``tests/plan/test_social_parity.py``) holds the two sides equal within
1e-9 on randomized workloads, which is the correctness net that lets the
compiler rearrange the physical form underneath.

Encoding conventions (shared with the physical operators):

* a **basis graph** is a null graph of the selected connection members,
  each carrying its topical ``fit``, plus a ``social_meta`` marker node
  recording the basis kind and whether the expert fallback fired;
* a **social-score graph** holds the scored candidate items (attribute
  ``social_raw``), the endorsing users with ``endorse`` links (weight =
  endorsement weight), supporting items with ``support`` links, and the
  marker node (resolved strategy + fallback flag);
* a **combined graph** holds the surviving items with ``semantic_norm`` /
  ``social_norm`` / ``combined`` attributes plus the provenance carried
  through from the social stage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.attrs import TYPE_ATTR
from repro.core.graph import Id, Link, Node, SocialContentGraph
from repro.core.text import tokenize


def _rank_items(items: list, limit: int | None) -> list:
    """Order decoded ranking rows, bounded to the top *limit* when given.

    The ordering key is total (score desc, item-id repr asc), so the
    bounded form is exactly ``sorted(items)[:limit]`` — computed as an
    O(n log k) heap selection instead of a full O(n log n) sort.  This is
    the ranking half of top-k pushdown: callers that declared a result
    budget stop paying to order candidates they will never return.
    """
    key = lambda t: (-t[3], repr(t[0]))  # noqa: E731 - shared ordering key
    if limit is not None and 0 <= limit < len(items):
        return heapq.nsmallest(limit, items, key=key)
    items.sort(key=key)
    return items

#: Node id / type of the marker node threading stage metadata through the
#: plan (resolved strategy, expert-fallback flag, basis kind).
META_ID = "__social_meta__"
META_TYPE = "social_meta"

#: Link types of the provenance edges in social-stage result graphs.
ENDORSE_TYPE = "endorse"
SUPPORT_TYPE = "support"

#: Strategy names the compiled social stage understands ("auto" resolves
#: at compile time from statistics, or at evaluation time from the graph).
COMPILED_STRATEGIES = ("friends", "similar_users", "item_based")

#: Expert-list size used by the score-time fallback rerun (mirrors the
#: default limit of :func:`repro.discovery.connections.find_experts`).
FALLBACK_EXPERT_LIMIT = 10


# ---------------------------------------------------------------------------
# Connection selection (Selma's problem) over graphs
# ---------------------------------------------------------------------------


def activity_vocabulary(graph: SocialContentGraph, user: Id) -> set[str]:
    """Terms describing what a user acts on (item keywords + own tags)."""
    vocabulary: set[str] = set()
    for link in graph.out_links(user):
        if not link.has_type("act"):
            continue
        for value in link.values("tags"):
            vocabulary.update(tokenize(str(value)))
        item = graph.node(link.tgt)
        for att in ("category", "keywords", "city"):
            for value in item.values(att):
                if isinstance(value, str):
                    vocabulary.update(tokenize(value))
    return vocabulary


def topical_fit(graph: SocialContentGraph, user: Id, query_terms: set[str]) -> float:
    """Fraction of query terms present in the user's activity vocabulary."""
    if not query_terms:
        return 1.0
    return len(query_terms & activity_vocabulary(graph, user)) / len(query_terms)


def expert_candidates(
    graph: SocialContentGraph,
    query_terms: set[str],
    exclude: set[Id] = frozenset(),
    limit: int = FALLBACK_EXPERT_LIMIT,
) -> list[Id]:
    """Users with the most activity on items matching the query terms."""
    counts: dict[Id, int] = {}
    for link in graph.links():
        if not link.has_type("act") or link.src in exclude:
            continue
        item = graph.node(link.tgt)
        item_terms = set(tokenize(item.text()))
        for value in link.values("tags"):
            item_terms.update(tokenize(str(value)))
        if query_terms & item_terms:
            counts[link.src] = counts.get(link.src, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [user for user, _ in ranked[:limit]]


def connection_basis(
    graph: SocialContentGraph,
    user_id: Id,
    keywords: tuple[str, ...],
    min_fit: float = 0.15,
    min_qualified: int = 2,
    max_experts: int = 10,
) -> SocialContentGraph:
    """The chosen social basis of a query, as a null graph.

    Semi-join reading: σN(id=u) ⋉ connect links picks the friends, a
    per-friend aggregation attaches the topical fit, and the expert
    fallback replaces the membership when too few friends qualify.
    """
    query_terms = set(keywords)
    friends = sorted(
        {l.tgt for l in graph.out_links(user_id) if l.has_type("connect")},
        key=repr,
    )
    fit = {f: topical_fit(graph, f, query_terms) for f in friends}
    qualified = [f for f in friends if fit[f] >= min_fit]
    out = SocialContentGraph(catalog=graph.catalog)
    if len(qualified) >= min_qualified or not query_terms:
        for member in qualified or friends:
            out.add_node(graph.node(member).with_attrs(fit=fit[member]))
        out.add_node(Node(META_ID, type=META_TYPE, basis_kind="friends",
                          expert_fallback=0))
        return out
    experts = expert_candidates(graph, query_terms, exclude={user_id},
                                limit=max_experts)
    for expert in experts:
        out.add_node(graph.node(expert).with_attrs(fit=1.0))
    out.add_node(Node(META_ID, type=META_TYPE, basis_kind="experts",
                      expert_fallback=1))
    return out


# ---------------------------------------------------------------------------
# Strategy scoring over graphs
# ---------------------------------------------------------------------------


def resolve_auto_strategy(graph: SocialContentGraph) -> str:
    """The graph-side twin of the compiler's statistics-driven choice.

    The rule must match ``repro.plan.compiler``'s resolution (which reads
    the same signals off :class:`~repro.core.stats.GraphStats`) so a plan
    evaluated without the compiler agrees with its lowered form.
    """
    has_connect = has_act = has_sim = False
    for link in graph.links():
        if "connect" in link.types:
            has_connect = True
        if "act" in link.types:
            has_act = True
        if "sim_item" in link.types:
            has_sim = True
        if has_connect and has_act and has_sim:
            break
    return choose_strategy(has_connect, has_act, has_sim)


def choose_strategy(has_connect: bool, has_act: bool, has_sim: bool) -> str:
    """Shared auto-strategy rule over the three signal feeds."""
    if has_connect and has_act:
        return "friends"
    if has_sim:
        return "item_based"
    if has_act:
        return "similar_users"
    return "friends"


def friend_probe(
    graph: SocialContentGraph,
    members: list[tuple[Id, float]],
    candidates: set[Id],
) -> tuple[dict[Id, float], dict[Id, dict[Id, float]]]:
    """Semi-join probe: each basis member's activities into the candidates.

    score(i) = Σ weight(u′) over members u′ with an ``act`` link onto i —
    the grouped aggregation of the paper's Example 4 reading.
    """
    scores: dict[Id, float] = {}
    endorsers: dict[Id, dict[Id, float]] = {}
    for member, weight in members:
        weight = max(weight, 0.1)
        for link in graph.out_links(member):
            if not link.has_type("act") or link.tgt not in candidates:
                continue
            scores[link.tgt] = scores.get(link.tgt, 0.0) + weight
            endorsers.setdefault(link.tgt, {})[member] = weight
    return scores, endorsers


def _friends_scores(
    graph: SocialContentGraph,
    candidates: set[Id],
    basis: SocialContentGraph,
    user_id: Id,
    keywords: tuple[str, ...],
) -> tuple[dict, dict, bool]:
    """Friend/expert endorsement with the score-time Selma fallback."""
    meta = basis.node(META_ID) if basis.has_node(META_ID) else None
    expert_basis = bool(meta.value("expert_fallback", 0)) if meta else False
    members = [
        (node.id, 1.0 if expert_basis else float(node.value("fit", 1.0)))
        for node in basis.nodes()
        if node.id != META_ID
    ]
    scores, endorsers = friend_probe(graph, members, candidates)
    fallback = expert_basis
    if not scores and not expert_basis:
        # The friend basis produced nothing: rerun over topic experts
        # (the discoverer-level half of the Selma fallback).
        fallback = True
        experts = expert_candidates(
            graph, set(keywords), exclude={user_id},
            limit=FALLBACK_EXPERT_LIMIT,
        )
        scores, endorsers = friend_probe(
            graph, [(expert, 1.0) for expert in experts], candidates
        )
    return scores, endorsers, fallback


def _similar_user_scores(
    graph: SocialContentGraph,
    candidates: set[Id],
    user_id: Id,
    sim_threshold: float,
    act_type: str,
) -> tuple[dict, dict]:
    """Example 5 CF through the algebra recipe, plus endorser provenance."""
    from repro.core.recipes import (
        example5_collaborative_filtering,
        recommendations_from,
    )

    cf = example5_collaborative_filtering(
        graph,
        user_id,
        visit_type=act_type,
        dest_type="item",
        sim_threshold=sim_threshold,
    )
    scores: dict[Id, float] = {}
    for item, score in recommendations_from(cf, user_id):
        if item in candidates:
            scores[item] = score
    endorsers: dict[Id, dict[Id, float]] = {}
    my_items = {
        l.tgt for l in graph.out_links(user_id) if l.has_type(act_type)
    }
    user_items: dict[Id, set] = {}
    for link in graph.links():
        if link.has_type(act_type):
            user_items.setdefault(link.src, set()).add(link.tgt)
    for other, items in user_items.items():
        if other == user_id or not my_items:
            continue
        union_size = len(my_items | items)
        sim = len(my_items & items) / union_size if union_size else 0.0
        if sim <= sim_threshold:
            continue
        for item in items & set(scores):
            endorsers.setdefault(item, {})[other] = sim
    return scores, endorsers


def _item_based_scores(
    graph: SocialContentGraph,
    candidates: set[Id],
    user_id: Id,
) -> tuple[dict, dict]:
    """Content-based support over derived ``sim_item`` links."""
    scores: dict[Id, float] = {}
    supporting: dict[Id, dict[Id, float]] = {}
    mine = {l.tgt for l in graph.out_links(user_id) if l.has_type("act")}
    for past_item in mine:
        for link in graph.out_links(past_item):
            if not link.has_type("sim_item"):
                continue
            other = link.tgt
            if other not in candidates or other in mine:
                continue
            sim = float(link.value("sim", 0.0))
            scores[other] = scores.get(other, 0.0) + sim
            supporting.setdefault(other, {})[past_item] = sim
    return scores, supporting


def social_scores_graph(
    graph: SocialContentGraph,
    candidates: SocialContentGraph,
    basis: SocialContentGraph,
    strategy: str,
    user_id: Id,
    keywords: tuple[str, ...] = (),
    sim_threshold: float = 0.1,
    act_type: str = "visit",
) -> SocialContentGraph:
    """One strategy's social relevance, graph-encoded.

    *strategy* must be a member of :data:`COMPILED_STRATEGIES` or
    ``"auto"`` (resolved from the live graph — the compiler resolves it
    from statistics before lowering instead).
    """
    strategy, scores, endorsers, supporting, fallback = _strategy_scores(
        graph, candidates, basis, strategy, user_id, keywords,
        sim_threshold, act_type,
    )
    return encode_social_result(
        graph, candidates, scores, endorsers, supporting, strategy, fallback
    )


def _strategy_scores(
    graph: SocialContentGraph,
    candidates: SocialContentGraph,
    basis: SocialContentGraph,
    strategy: str,
    user_id: Id,
    keywords: tuple[str, ...],
    sim_threshold: float,
    act_type: str,
) -> tuple[str, dict, dict, dict, bool]:
    """Shared strategy dispatch: (strategy, scores, endorsers, supporting,
    fallback) — consumed by both the standalone social stage and the fused
    social+combine physical form."""
    from repro.errors import ExpressionError

    if strategy == "auto":
        strategy = resolve_auto_strategy(graph)
    if strategy not in COMPILED_STRATEGIES:
        raise ExpressionError(
            f"unknown compiled social strategy {strategy!r}; "
            f"have {COMPILED_STRATEGIES}"
        )
    candidate_ids = {n.id for n in candidates.nodes()}
    supporting: dict[Id, dict[Id, float]] = {}
    endorsers: dict[Id, dict[Id, float]] = {}
    fallback = False
    if strategy == "friends":
        scores, endorsers, fallback = _friends_scores(
            graph, candidate_ids, basis, user_id, keywords
        )
    elif strategy == "similar_users":
        meta = basis.node(META_ID) if basis.has_node(META_ID) else None
        fallback = bool(meta.value("expert_fallback", 0)) if meta else False
        scores, endorsers = _similar_user_scores(
            graph, candidate_ids, user_id, sim_threshold, act_type
        )
    else:
        meta = basis.node(META_ID) if basis.has_node(META_ID) else None
        fallback = bool(meta.value("expert_fallback", 0)) if meta else False
        scores, supporting = _item_based_scores(graph, candidate_ids, user_id)
    return strategy, scores, endorsers, supporting, fallback


def encode_social_result(
    graph: SocialContentGraph,
    candidates: SocialContentGraph,
    scores: dict[Id, float],
    endorsers: dict[Id, dict[Id, float]],
    supporting: dict[Id, dict[Id, float]],
    strategy: str,
    fallback: bool,
) -> SocialContentGraph:
    """Shared encoder for the social-score graph (scan and index paths).

    Both physical forms route through here, so the produced graph is
    record-for-record identical whichever access path the compiler picked.
    """
    out = SocialContentGraph(catalog=graph.catalog)
    for node in candidates.nodes():
        if node.id in scores:
            out.add_node(node._with_normalized(
                {"social_raw": (scores[node.id],)}
            ))
    for item, per_user in endorsers.items():
        for user, weight in per_user.items():
            if not out.has_node(user):
                out.add_node(graph.node(user) if graph.has_node(user)
                             else Node(user, type="user"))
            out.add_link(Link._from_normalized(
                f"endorse:{user}->{item}", user, item,
                {"type": (ENDORSE_TYPE,), "weight": (weight,)},
            ))
    for item, per_item in supporting.items():
        for supporter, weight in per_item.items():
            if not out.has_node(supporter):
                out.add_node(graph.node(supporter) if graph.has_node(supporter)
                             else Node(supporter, type="item"))
            out.add_link(Link._from_normalized(
                f"support:{supporter}->{item}", supporter, item,
                {"type": (SUPPORT_TYPE,), "weight": (weight,)},
            ))
    out.add_node(Node(META_ID, type=META_TYPE, strategy=strategy,
                      expert_fallback=int(fallback)))
    return out


# ---------------------------------------------------------------------------
# Score combination (endorsement merge into the final ranking)
# ---------------------------------------------------------------------------


def _max_normalized(scores: dict[Id, float]) -> dict[Id, float]:
    top = max(scores.values(), default=0.0)
    if top <= 0:
        return {i: 0.0 for i in scores}
    return {i: s / top for i, s in scores.items()}


def combine_scores_graph(
    candidates: SocialContentGraph,
    social: SocialContentGraph,
    alpha: float,
    drop_zero: bool = True,
) -> SocialContentGraph:
    """α·semantic + (1−α)·social over max-normalized components.

    Carries the social stage's provenance (endorse/support links and the
    marker node) through for items that survive, so downstream MSG
    assembly reads one graph.
    """
    semantic = {n.id: (n.score or 0.0) for n in candidates.nodes()}
    raw: dict[Id, float] = {}
    for node in social.nodes():
        value = node.value("social_raw")
        if value is not None:
            raw[node.id] = float(value)
    semantic_norm = _max_normalized(semantic)
    social_norm = _max_normalized(raw)
    out = SocialContentGraph(catalog=candidates.catalog)
    for node in candidates.nodes():
        sem = semantic_norm.get(node.id, 0.0)
        soc = social_norm.get(node.id, 0.0)
        combined = alpha * sem + (1 - alpha) * soc
        if drop_zero and combined <= 0.0:
            continue
        out.add_node(node.with_attrs(
            semantic_norm=sem,
            social_norm=soc,
            social_raw=raw.get(node.id),
            combined=combined,
        ))
    for link in social.links():
        if not out.has_node(link.tgt):
            continue  # provenance of a dropped item
        if not out.has_node(link.src):
            out.add_node(social.node(link.src))
        out.add_link(link)
    if social.has_node(META_ID):
        out.add_node(social.node(META_ID))
    return out


def fused_social_combine(
    graph: SocialContentGraph,
    candidates: SocialContentGraph,
    basis: SocialContentGraph,
    strategy: str,
    user_id: Id,
    alpha: float,
    keywords: tuple[str, ...] = (),
    sim_threshold: float = 0.1,
    act_type: str = "visit",
    drop_zero: bool = True,
    limit: int | None = None,
) -> tuple[SocialContentGraph, "DecodedSocialResult"]:
    """Social scoring and α-combination in one pass (operator fusion).

    *limit* bounds the decoded ranking list to the top *limit* rows
    (top-k pushdown); scores, provenance and the result graph still
    cover every surviving item.

    The result graph is record-for-record identical to
    ``combine_scores_graph(candidates, social_scores_graph(...))`` —
    asserted by the differential parity suite — but the intermediate
    social-score graph is never materialised: scores stay plain dicts
    until the single output graph is built, and provenance
    (endorse/support links) is only ever encoded for items that survive
    the combination.  The :class:`DecodedSocialResult` the discovery
    layer would otherwise re-extract from the graph falls out for free
    and is returned alongside.  This is the compute kernel behind
    :class:`repro.plan.physical.FusedSocialCombineOp`, which exists
    because the two-step pipeline spent more time re-encoding graphs
    than computing scores.
    """
    strategy, scores, endorsers, supporting, fallback = _strategy_scores(
        graph, candidates, basis, strategy, user_id, keywords,
        sim_threshold, act_type,
    )
    semantic = {n.id: (n.score or 0.0) for n in candidates.nodes()}
    semantic_norm = _max_normalized(semantic)
    social_norm = _max_normalized(scores)
    decoded = DecodedSocialResult(strategy=strategy,
                                  used_expert_fallback=fallback)
    out = SocialContentGraph(catalog=candidates.catalog)
    adopt_node = out._adopt_fresh_node
    adopt_link = out._adopt_fresh_link
    surviving = out._nodes
    new_node = Node.__new__
    set_field = object.__setattr__
    beta = 1 - alpha
    for node in candidates.nodes():
        item = node.id
        sem = semantic_norm.get(item, 0.0)
        soc = social_norm.get(item, 0.0)
        combined = alpha * sem + beta * soc
        if drop_zero and combined <= 0.0:
            continue
        # inlined Node._with_normalized: this loop builds one record per
        # surviving candidate on every query, and the call overhead shows
        attrs = dict(node.attrs)
        attrs["semantic_norm"] = (sem,)
        attrs["social_norm"] = (soc,)
        attrs["combined"] = (combined,)
        raw = scores.get(item)
        if raw is not None:
            decoded.scores[item] = raw
            attrs["social_raw"] = (raw,)
        record = new_node(Node)
        set_field(record, "id", item)
        set_field(record, "attrs", attrs)
        adopt_node(record)
        decoded.items.append((item, sem, soc, combined))
    for item, per_user in endorsers.items():
        if item not in surviving:
            continue  # provenance of a dropped item
        decoded.endorsers[item] = per_user
        for user, weight in per_user.items():
            if user not in surviving:
                adopt_node(graph.node(user) if graph.has_node(user)
                           else Node(user, type="user"))
            adopt_link(Link._from_normalized(
                f"endorse:{user}->{item}", user, item,
                {"type": (ENDORSE_TYPE,), "weight": (weight,)},
            ))
    for item, per_item in supporting.items():
        if item not in surviving:
            continue
        decoded.supporting_items[item] = per_item
        for supporter, weight in per_item.items():
            if supporter not in surviving:
                adopt_node(graph.node(supporter) if graph.has_node(supporter)
                           else Node(supporter, type="item"))
            adopt_link(Link._from_normalized(
                f"support:{supporter}->{item}", supporter, item,
                {"type": (SUPPORT_TYPE,), "weight": (weight,)},
            ))
    out.add_node(Node(META_ID, type=META_TYPE, strategy=strategy,
                      expert_fallback=int(fallback)))
    decoded.items = _rank_items(decoded.items, limit)
    return out, decoded


# ---------------------------------------------------------------------------
# Decoding a pipeline result back into discovery-layer values
# ---------------------------------------------------------------------------


@dataclass
class DecodedSocialResult:
    """A combined-pipeline result graph, read back into plain values."""

    #: (item, semantic_norm, social_norm, combined), best first
    items: list[tuple[Id, float, float, float]] = field(default_factory=list)
    #: raw social scores of the surviving items
    scores: dict[Id, float] = field(default_factory=dict)
    endorsers: dict[Id, dict[Id, float]] = field(default_factory=dict)
    supporting_items: dict[Id, dict[Id, float]] = field(default_factory=dict)
    strategy: str = "friends"
    used_expert_fallback: bool = False


def decode_social_result(
    result: SocialContentGraph, limit: int | None = None
) -> DecodedSocialResult:
    """Read a combined-pipeline result graph (deterministic item order).

    Reads the records' normalised attribute tuples directly — this runs
    once per query on every result node and link, and the accessor
    indirection was measurable.  *limit* bounds the decoded ranking list
    (top-k pushdown for the unfused physical forms); score and
    provenance maps still cover every item in the graph.
    """
    decoded = DecodedSocialResult()
    for node in result.nodes():
        attrs = node.attrs
        if META_TYPE in attrs[TYPE_ATTR]:
            decoded.strategy = str(node.value("strategy", decoded.strategy))
            decoded.used_expert_fallback = bool(
                node.value("expert_fallback", 0)
            )
            continue
        raw = attrs.get("social_raw")
        if raw:
            decoded.scores[node.id] = float(raw[0])
        combined = attrs.get("combined")
        if not combined:
            continue  # social-stage-only node, endorser, or supporter
        semantic = attrs.get("semantic_norm")
        social = attrs.get("social_norm")
        decoded.items.append((
            node.id,
            float(semantic[0]) if semantic else 0.0,
            float(social[0]) if social else 0.0,
            float(combined[0]),
        ))
    for link in result.links():
        attrs = link.attrs
        types = attrs[TYPE_ATTR]
        if ENDORSE_TYPE in types:
            weight = attrs.get("weight")
            decoded.endorsers.setdefault(link.tgt, {})[link.src] = (
                float(weight[0]) if weight else 0.0
            )
        elif SUPPORT_TYPE in types:
            weight = attrs.get("weight")
            decoded.supporting_items.setdefault(link.tgt, {})[link.src] = (
                float(weight[0]) if weight else 0.0
            )
    decoded.items = _rank_items(decoded.items, limit)
    return decoded

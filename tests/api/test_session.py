"""Session engine: warm reuse, incremental refresh, overrides, batching,
and index-backed vs. scan-based candidate parity."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import SearchRequest, Session, SessionConfig
from repro.core import Link, Node
from repro.discovery import DiscoveryConfig
from repro.errors import PresentationError
from repro.workloads import ALEXIA, JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture()
def session(travel):
    return Session.from_graph(travel.graph)


def pages_equal(a, b) -> bool:
    """Structural equality of two result pages."""
    return (
        a.chosen_dimension == b.chosen_dimension
        and [(g.label, [(e.item_id, e.score) for e in g.entries])
             for g in a.groups]
        == [(g.label, [(e.item_id, e.score) for e in g.entries])
            for g in b.groups]
        and [e.item_id for e in a.flat] == [e.item_id for e in b.flat]
    )


class TestWarmReuse:
    def test_repeated_queries_build_tfidf_once(self, session):
        for text in ("Denver attractions", "museum", "history", "baseball"):
            session.run(SearchRequest(user_id=JOHN, text=text))
        assert session.stats.queries == 4
        assert session.stats.tfidf_builds == 1
        assert session.stats.index_builds == 1
        assert session.stats.refreshes == 0

    def test_semantic_index_cached_across_queries(self, session):
        session.run(SearchRequest(user_id=JOHN, text="Denver attractions"))
        first = session.semantic_index
        session.run(SearchRequest(user_id=JOHN, text="museum"))
        assert session.semantic_index is first


class TestIncrementalRefresh:
    def test_analyze_invalidates_lazily(self, session):
        session.run(SearchRequest(user_id=JOHN, text="Denver attractions"))
        epoch_before = session.epoch
        session.analyze("user_similarity")
        session.analyze("item_similarity")  # back-to-back: still one refresh
        assert session.epoch == epoch_before  # nothing rebuilt yet
        session.run(SearchRequest(user_id=JOHN, text="Denver attractions"))
        assert session.epoch == epoch_before + 1
        assert session.stats.refreshes == 1
        assert session.stats.tfidf_builds == 2  # rebuilt once, post-refresh

    def test_direct_datamanager_writes_detected(self, session):
        session.run(SearchRequest(user_id=JOHN, text="special"))
        session.data_manager.add_node(Node(
            "x:new", type="item, destination", name="Special Denver Spot",
            keywords="special denver attraction",
        ))
        response = session.run(SearchRequest(user_id=JOHN, text="special"))
        assert session.graph.has_node("x:new")
        assert response.page_info.total_items >= 1
        assert session.stats.refreshes == 1

    def test_analyses_rederived_after_direct_write(self, travel):
        session = Session.from_graph(
            travel.graph, SessionConfig(auto_analyses=("item_similarity",))
        )
        session.run(SearchRequest(user_id=JOHN, text="denver"))
        assert any(l.has_type("sim_item") for l in session.graph.links())
        session.data_manager.add_node(Node(
            "x:extra", type="item, destination", name="Extra Spot",
        ))
        session.run(SearchRequest(user_id=JOHN, text="denver"))
        # the resync re-derived the enrichment instead of dropping it
        assert session.graph.has_node("x:extra")
        assert any(l.has_type("sim_item") for l in session.graph.links())

    def test_discoverer_and_organizer_survive_refresh(self, session):
        discoverer = session.discoverer
        organizer = session.organizer
        session.analyze("user_similarity")
        session.run(SearchRequest(user_id=JOHN, text="Denver"))
        # incremental refresh retargets the same components
        assert session.discoverer is discoverer
        assert session.organizer is organizer
        assert organizer.base_graph is session.graph


class TestRequestOverrides:
    def test_alpha_override_changes_blend(self, session):
        semantic_only = session.run(
            SearchRequest(user_id=JOHN, text="Denver attractions", alpha=1.0)
        )
        social_only = session.run(
            SearchRequest(user_id=JOHN, text="Denver attractions", alpha=0.0)
        )
        assert semantic_only.items != () and social_only.items != ()
        assert semantic_only.resolved["alpha"] == 1.0
        assert social_only.resolved["alpha"] == 0.0
        assert semantic_only.items != social_only.items

    def test_strategy_override_reaches_response(self, session):
        response = session.query(JOHN).text("attractions").strategy("cf").run()
        assert response.resolved["strategy"] == "cf"
        assert response.page.flat

    def test_k_override_bounds_window(self, session):
        response = session.run(
            SearchRequest(user_id=JOHN, text="Denver attractions", k=3)
        )
        assert len(response.items) <= 3
        assert response.page_info.page_size == 3

    def test_grouping_override_forces_dimension(self, session):
        response = session.run(SearchRequest(
            user_id=ALEXIA, text="history", grouping="structural:city",
        ))
        assert response.page.chosen_dimension == "structural:city"
        free = session.run(SearchRequest(user_id=ALEXIA, text="history"))
        assert free.page.chosen_dimension == "endorser"

    def test_unknown_grouping_dimension_raises(self, session):
        with pytest.raises(PresentationError):
            session.run(SearchRequest(
                user_id=JOHN, text="denver", grouping="nope",
            ))

    def test_unknown_grouping_raises_even_on_empty_results(self, session):
        with pytest.raises(PresentationError):
            session.run(SearchRequest(
                user_id=JOHN, text="zzz-no-such-term", grouping="nope",
            ))

    def test_flat_list_covers_explicit_window(self, session):
        response = session.query(JOHN).text("Denver attractions").limit(15).run()
        assert len(response.items) == 15
        assert [e.item_id for e in response.page.flat] == list(response.items)
        # unsized requests keep the configured flat cap (facade behavior)
        default = session.run(SearchRequest(user_id=JOHN, text="Denver attractions"))
        assert len(default.page.flat) == session.config.organizer.flat_k

    def test_config_defaults_apply_when_unset(self, travel):
        config = SessionConfig(
            discovery=DiscoveryConfig(alpha=0.9, max_results=7)
        )
        session = Session.from_graph(travel.graph, config)
        response = session.run(SearchRequest(user_id=JOHN, text="denver"))
        assert response.resolved["alpha"] == 0.9
        assert response.page_info.page_size == 7


class TestIndexVsScanParity:
    QUERIES = ("Denver attractions", "museum history", "baseball",
               "family trip", "art galleries")

    def test_identical_pages_both_paths(self, session):
        for text in self.QUERIES:
            indexed = session.run(SearchRequest(user_id=JOHN, text=text))
            scanned = session.run(
                SearchRequest(user_id=JOHN, text=text, use_index=False)
            )
            assert indexed.index_used and not scanned.index_used
            assert indexed.items == scanned.items
            assert pages_equal(indexed.page, scanned.page)

    def test_structural_queries_take_scan_path(self, session):
        response = session.run(SearchRequest(
            user_id=JOHN, text="denver",
            structural={"type": "destination"},
        ))
        assert not response.index_used

    def test_recommendations_take_scan_path(self, session):
        response = session.run(SearchRequest(user_id=JOHN))
        assert not response.index_used
        assert response.page.flat


class TestBatchExecution:
    def requests(self):
        return [
            SearchRequest(user_id=JOHN, text="Denver attractions", k=5),
            SearchRequest(user_id=ALEXIA, text="history"),
            SearchRequest(user_id=JOHN),  # recommendation
            SearchRequest(user_id=JOHN, text="museum", alpha=1.0),
        ]

    def test_run_many_matches_sequential_run(self, session):
        sequential = [session.run(r) for r in self.requests()]
        batched = session.run_many(self.requests())
        assert [r.items for r in batched] == [r.items for r in sequential]
        for b, s in zip(batched, sequential):
            assert pages_equal(b.page, s.page)

    def test_run_many_with_thread_executor(self, session):
        sequential = [session.run(r) for r in self.requests()]
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = session.run_many(self.requests(), executor=pool)
        assert [r.items for r in threaded] == [r.items for r in sequential]

    def test_batch_keeps_state_warm(self, session):
        session.run_many(self.requests())
        session.run_many(self.requests())
        assert session.stats.batches == 2
        assert session.stats.tfidf_builds == 1
        assert session.stats.index_builds == 1

    def test_empty_batch(self, session):
        assert session.run_many([]) == []


class TestNetworkTopk:
    def test_exact_index_matches_brute_force(self, travel):
        from repro.workloads import TaggingSiteConfig, build_tagging_site
        from repro.indexing import TaggingData

        site = build_tagging_site(TaggingSiteConfig(
            num_users=60, num_items=120, num_tags=15, seed=7,
        ))
        session = Session.from_graph(site.graph)
        data = TaggingData.from_graph(session.graph)
        user = data.users[0]
        keywords = data.tag_vocab[:2]
        expected = data.brute_force_topk(user, keywords, k=5)
        results, stats = session.network_topk(user, keywords, k=5)
        assert results == expected
        assert stats.sorted_accesses >= 0
        # warm second query reuses the built index
        session.network_topk(user, keywords, k=5)
        assert session.stats.network_index_builds == 1

    def test_unknown_clustering_rejected(self, session):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            session.network_topk(JOHN, ["denver"], clustering="nope")

"""Developer tooling that ships with the repo but not with the package.

``tools.archcheck`` is the architecture linter wired into CI; run it as
``python -m tools.archcheck src/`` from the repo root.
"""

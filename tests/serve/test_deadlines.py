"""End-to-end deadlines, bounded shutdown, and hedged re-dispatch.

The resilience contract under test: a submission NEVER wedges.  Its
future resolves with a typed outcome whether the deadline fires while
queued, mid-execution (cooperative plan-side checks), or because a
bounded shutdown drain gave up on a hung executor slot — and a slot held
past the hedge quantile gets the batch re-dispatched instead of holding
its requests hostage.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import RequestFailure, SearchRequest, SearchResponse, Session
from repro.errors import DeadlineError, ServeError
from repro.serve import (
    AdmissionPolicy,
    DeadlineExceeded,
    GatewayConfig,
    HedgeTracker,
    Overloaded,
    ServeGateway,
    TenantPolicy,
)
from repro.testing import disarm_all, armed_faults, sleeping
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture()
def session(travel):
    return Session.from_graph(travel.graph)


@pytest.fixture(autouse=True)
def _always_disarm():
    disarm_all()
    yield
    disarm_all()


OPEN_ADMISSION = AdmissionPolicy(
    default=TenantPolicy(capacity=1000.0, refill_per_s=1000.0),
    max_depth=0,
)

REQUEST = SearchRequest(user_id=JOHN, text="Denver attractions")


@pytest.mark.usefixtures("deadlock_watchdog")
class TestQueuedDeadline:
    def test_queued_past_deadline_sheds_typed(self, session):
        # a batch window far longer than the deadline: the request can
        # only resolve via the deadline timer, stage "queued"
        config = GatewayConfig(
            batch_window_s=5.0,
            default_deadline_s=0.05,
            admission=OPEN_ADMISSION,
        )

        async def _run():
            async with ServeGateway(session, config) as gateway:
                t0 = time.monotonic()
                outcome = await gateway.submit("tenant", REQUEST)
                elapsed = time.monotonic() - t0
                return outcome, elapsed, gateway.stats()

        outcome, elapsed, stats = asyncio.run(_run())
        assert isinstance(outcome, DeadlineExceeded)
        assert not outcome.ok
        assert outcome.stage == "queued"
        assert outcome.tenant == "tenant"
        assert outcome.deadline_s == 0.05
        assert outcome.elapsed_s >= 0.05
        assert elapsed < 2.0  # resolved by the timer, not the window
        assert stats.deadline_expired == 1
        assert stats.completed == 0

    def test_tenant_policy_deadline_overrides_gateway_default(self, session):
        config = GatewayConfig(
            batch_window_s=5.0,
            default_deadline_s=30.0,
            admission=AdmissionPolicy(
                default=TenantPolicy(capacity=1000.0, refill_per_s=1000.0),
                tenants={
                    "impatient": TenantPolicy(
                        capacity=1000.0, refill_per_s=1000.0,
                        deadline_s=0.05,
                    )
                },
                max_depth=0,
            ),
        )

        async def _run():
            async with ServeGateway(session, config) as gateway:
                return await gateway.submit("impatient", REQUEST)

        outcome = asyncio.run(_run())
        assert isinstance(outcome, DeadlineExceeded)
        assert outcome.deadline_s == 0.05

    def test_generous_deadline_serves_normally(self, session):
        reference = session.run(REQUEST)
        config = GatewayConfig(
            default_deadline_s=30.0, admission=OPEN_ADMISSION
        )

        async def _run():
            async with ServeGateway(session, config) as gateway:
                outcome = await gateway.submit("tenant", REQUEST)
                return outcome, gateway.stats()

        outcome, stats = asyncio.run(_run())
        assert isinstance(outcome, SearchResponse)
        flat = outcome.page.flat
        for a, b in zip(flat, reference.page.flat):
            assert a.item_id == b.item_id
            assert abs(a.score - b.score) <= 1e-9
        assert stats.deadline_expired == 0


@pytest.mark.usefixtures("deadlock_watchdog")
class TestPlanSideDeadline:
    def test_expired_deadline_stops_execution_typed(self, session):
        # an already-expired absolute deadline: the first cooperative
        # check in the plan executor fires, and isolation wraps it as a
        # RequestFailure carrying the DeadlineError
        outcomes = session.run_many(
            [REQUEST],
            isolate_errors=True,
            deadlines=[time.monotonic() - 1.0],
        )
        assert len(outcomes) == 1
        failure = outcomes[0]
        assert isinstance(failure, RequestFailure)
        assert isinstance(failure.error, DeadlineError)
        assert failure.error.stage  # names the operator that noticed
        assert failure.error.elapsed_s >= 0.0

    def test_batchmates_unharmed_by_one_expiry(self, session):
        reference = session.run(REQUEST)
        outcomes = session.run_many(
            [REQUEST, REQUEST],
            isolate_errors=True,
            deadlines=[time.monotonic() - 1.0, None],
        )
        assert isinstance(outcomes[0], RequestFailure)
        assert isinstance(outcomes[1], SearchResponse)
        for a, b in zip(outcomes[1].page.flat, reference.page.flat):
            assert abs(a.score - b.score) <= 1e-9

    def test_deadlines_length_must_match(self, session):
        with pytest.raises(ValueError):
            session.run_many([REQUEST], deadlines=[None, None])


@pytest.mark.usefixtures("deadlock_watchdog")
class TestBoundedShutdown:
    def test_stop_fails_wedged_requests_typed(self, session):
        config = GatewayConfig(
            batch_window_s=0.001,
            drain_timeout_s=0.3,
            hedge=False,  # the hedge would rescue the batch — this test
            # wants the wedge to survive until the drain gives up
            admission=OPEN_ADMISSION,
        )

        async def _run():
            async with ServeGateway(session, config) as gateway:
                with armed_faults(
                    {"serve.batch": sleeping(2.0, times=1)}
                ):
                    task = asyncio.ensure_future(
                        gateway.submit("tenant", REQUEST)
                    )
                    await asyncio.sleep(0.1)  # let it dispatch and wedge
                    t0 = time.monotonic()
                    await gateway.stop()
                    stop_elapsed = time.monotonic() - t0
                outcome = await task
            return outcome, stop_elapsed

        outcome, stop_elapsed = asyncio.run(_run())
        assert isinstance(outcome, DeadlineExceeded)
        assert outcome.stage == "shutdown"
        assert stop_elapsed < 1.5  # bounded: did not wait out the sleep

    def test_clean_stop_still_drains_completely(self, session):
        config = GatewayConfig(admission=OPEN_ADMISSION)

        async def _run():
            async with ServeGateway(session, config) as gateway:
                outcomes = await asyncio.gather(*(
                    gateway.submit("tenant", REQUEST) for _ in range(8)
                ))
            return outcomes

        outcomes = asyncio.run(_run())
        assert all(isinstance(o, SearchResponse) for o in outcomes)

    def test_checkpoint_quiesce_is_bounded(self, session, tmp_path):
        config = GatewayConfig(
            batch_window_s=0.001,
            drain_timeout_s=0.2,
            hedge=False,
            admission=OPEN_ADMISSION,
        )

        async def _run():
            async with ServeGateway(session, config) as gateway:
                with armed_faults(
                    {"serve.batch": sleeping(1.5, times=1)}
                ):
                    task = asyncio.ensure_future(
                        gateway.submit("tenant", REQUEST)
                    )
                    await asyncio.sleep(0.1)  # wedge one slot
                    with pytest.raises(ServeError, match="quiesce"):
                        await gateway.checkpoint(tmp_path)
                await task  # resolved by stop()'s drain or completion
        asyncio.run(_run())


class TestHedging:
    def test_tracker_needs_samples_before_hedging(self):
        tracker = HedgeTracker(min_samples=4)
        assert tracker.hedge_delay() is None
        for _ in range(4):
            tracker.observe(0.002)
        assert tracker.hedge_delay() is not None

    def test_delay_is_floored_for_micro_batches(self):
        tracker = HedgeTracker(min_samples=2, min_delay_s=0.010)
        tracker.observe(0.0001)
        tracker.observe(0.0001)
        assert tracker.hedge_delay() == 0.010

    def test_delay_tracks_the_quantile(self):
        tracker = HedgeTracker(
            quantile=0.5, multiplier=2.0, min_samples=2, min_delay_s=0.0
        )
        for _ in range(10):
            tracker.observe(0.1)
        assert tracker.hedge_delay() == pytest.approx(0.2)

    def test_ring_buffer_forgets_old_samples(self):
        tracker = HedgeTracker(
            quantile=0.5, multiplier=1.0, min_samples=2,
            max_samples=4, min_delay_s=0.0,
        )
        for _ in range(4):
            tracker.observe(10.0)
        for _ in range(4):
            tracker.observe(0.1)
        assert tracker.hedge_delay() == pytest.approx(0.1)

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_wedged_slot_is_hedged_around(self, session):
        reference = session.run(REQUEST)
        config = GatewayConfig(
            batch_window_s=0.001,
            hedge=True,
            hedge_min_samples=4,
            admission=OPEN_ADMISSION,
        )

        async def _run():
            async with ServeGateway(session, config) as gateway:
                # prime the latency profile so the hedge is armed
                for _ in range(4):
                    gateway._hedge.observe(0.001)
                with armed_faults(
                    {"serve.batch": sleeping(3.0, times=1)}
                ):
                    t0 = time.monotonic()
                    outcome = await gateway.submit("tenant", REQUEST)
                    elapsed = time.monotonic() - t0
                return outcome, elapsed, gateway.stats()

        outcome, elapsed, stats = asyncio.run(_run())
        # the hedge ran the batch on the spare thread while the primary
        # slot slept out the injected 3s hang
        assert isinstance(outcome, SearchResponse)
        assert elapsed < 2.0
        assert stats.hedged_batches >= 1
        for a, b in zip(outcome.page.flat, reference.page.flat):
            assert abs(a.score - b.score) <= 1e-9


class TestStatsSurface:
    def test_breakers_visible_in_gateway_stats(self, session):
        config = GatewayConfig(admission=OPEN_ADMISSION)

        async def _run():
            async with ServeGateway(session, config) as gateway:
                await gateway.submit("tenant", REQUEST)
                return gateway.stats()

        stats = asyncio.run(_run())
        assert "worker_pool" in stats.breakers
        assert "attr_index" in stats.breakers
        assert stats.breakers["worker_pool"].state == "closed"

    def test_overloaded_requires_positive_retry_hint(self):
        with pytest.raises(ValueError, match="positive"):
            Overloaded(tenant="t", reason="tenant_budget")
        with pytest.raises(ValueError, match="positive"):
            Overloaded(tenant="t", reason="tenant_budget",
                       retry_after_s=-1.0)
        assert Overloaded(
            tenant="t", reason="tenant_budget", retry_after_s=0.5
        ).retry_after_s == 0.5

"""The session-based query API — SocialScope as a serving stack.

Three pieces:

* :class:`SearchRequest` / :class:`SearchResponse` — frozen, value-like
  query descriptions with per-request overrides (``alpha``, ``strategy``,
  ``k``, grouping dimension) and deterministic ``page``/``cursor``
  pagination;
* :class:`QueryBuilder` — fluent construction
  (``session.query(u).text("...").limit(10).run()``);
* :class:`Session` — the warm engine owning the wired layers, with
  incremental refresh, lazy index-backed candidate generation, and batch
  execution.

The old :class:`repro.socialscope.SocialScope` facade remains as a thin
shim over this package.
"""

from repro.api.builder import QueryBuilder
from repro.api.request import (
    PageInfo,
    RequestFailure,
    SearchRequest,
    SearchResponse,
    decode_cursor,
    encode_cursor,
)
from repro.api.session import Session, SessionConfig, SessionStats

__all__ = [
    "SearchRequest",
    "SearchResponse",
    "RequestFailure",
    "PageInfo",
    "QueryBuilder",
    "Session",
    "SessionConfig",
    "SessionStats",
    "encode_cursor",
    "decode_cursor",
]

"""Admission control: budgets, refill, depth cap, isolation — fake clock.

Every test drives the controller with an injected clock, so budget
exhaustion, refill, and ``retry_after_s`` hints are asserted *exactly*,
without sleeping.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    GLOBAL_DEPTH,
    TENANT_BUDGET,
    Admitted,
    AdmissionController,
    AdmissionPolicy,
    Overloaded,
    TenantPolicy,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def controller(policy: AdmissionPolicy, clock: FakeClock) -> AdmissionController:
    return AdmissionController(policy, clock=clock)


class TestTenantBudget:
    def test_admits_until_capacity_then_sheds(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=3, refill_per_s=1)),
            clock,
        )
        verdicts = [ctl.admit("t0") for _ in range(5)]
        assert [isinstance(v, Admitted) for v in verdicts] == [
            True, True, True, False, False,
        ]
        shed = verdicts[3]
        assert isinstance(shed, Overloaded)
        assert shed.reason == TENANT_BUDGET
        assert shed.tenant == "t0"

    def test_retry_after_matches_refill_rate(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=2, refill_per_s=4)),
            clock,
        )
        ctl.admit("t0")
        ctl.admit("t0")
        shed = ctl.admit("t0")
        assert isinstance(shed, Overloaded)
        # 1 token missing at 4 tokens/s -> 0.25 s
        assert shed.retry_after_s == pytest.approx(0.25)

    def test_budget_refills_over_time(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=1, refill_per_s=2)),
            clock,
        )
        assert isinstance(ctl.admit("t0"), Admitted)
        assert isinstance(ctl.admit("t0"), Overloaded)
        clock.advance(0.5)  # exactly one token back
        assert isinstance(ctl.admit("t0"), Admitted)
        assert isinstance(ctl.admit("t0"), Overloaded)

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=2, refill_per_s=100)),
            clock,
        )
        clock.advance(60.0)  # an hour of refill does not bank past capacity
        assert isinstance(ctl.admit("t0"), Admitted)
        assert isinstance(ctl.admit("t0"), Admitted)
        assert isinstance(ctl.admit("t0"), Overloaded)

    def test_zero_refill_never_recovers(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=1, refill_per_s=0)),
            clock,
        )
        assert isinstance(ctl.admit("t0"), Admitted)
        shed = ctl.admit("t0")
        assert isinstance(shed, Overloaded)
        assert shed.retry_after_s == float("inf")

    def test_request_cost_scales_spend(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(
                default=TenantPolicy(capacity=4, refill_per_s=0),
                request_cost=2.0,
            ),
            clock,
        )
        assert isinstance(ctl.admit("t0"), Admitted)
        assert isinstance(ctl.admit("t0"), Admitted)
        assert isinstance(ctl.admit("t0"), Overloaded)


class TestTenantIsolation:
    def test_one_tenants_exhaustion_leaves_others_untouched(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=2, refill_per_s=0)),
            clock,
        )
        for _ in range(10):
            ctl.admit("heavy")
        assert isinstance(ctl.admit("light"), Admitted)
        assert ctl.available_tokens("light") == pytest.approx(1.0)
        stats = ctl.stats()
        assert stats.per_tenant_shed["heavy"] == 8
        assert stats.per_tenant_shed.get("light", 0) == 0

    def test_per_tenant_policy_overrides_default(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(
                default=TenantPolicy(capacity=1, refill_per_s=0),
                tenants={"vip": TenantPolicy(
                    capacity=5, refill_per_s=0, priority=1,
                )},
            ),
            clock,
        )
        vip = [ctl.admit("vip") for _ in range(5)]
        assert all(isinstance(v, Admitted) for v in vip)
        assert all(v.priority == 1 for v in vip)
        default = ctl.admit("other")
        assert isinstance(default, Admitted)
        assert default.priority == TenantPolicy().priority


class TestGlobalDepth:
    def test_depth_cap_sheds_everyone(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(
                default=TenantPolicy(capacity=100, refill_per_s=0),
                max_depth=2,
            ),
            clock,
        )
        a = ctl.admit("t0")
        b = ctl.admit("t1")
        shed = ctl.admit("t2")
        assert isinstance(shed, Overloaded)
        assert shed.reason == GLOBAL_DEPTH
        assert ctl.depth == 2
        ctl.release(a)
        assert isinstance(ctl.admit("t2"), Admitted)
        ctl.release(b)

    def test_depth_shed_does_not_spend_budget(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(
                default=TenantPolicy(capacity=1, refill_per_s=0),
                max_depth=1,
            ),
            clock,
        )
        ticket = ctl.admit("t0")
        assert isinstance(ticket, Admitted)
        # t1 is shed by *depth*; its single token must survive
        assert ctl.admit("t1").reason == GLOBAL_DEPTH
        ctl.release(ticket)
        assert isinstance(ctl.admit("t1"), Admitted)

    def test_zero_max_depth_disables_global_cap(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(
                default=TenantPolicy(capacity=50, refill_per_s=0),
                max_depth=0,
            ),
            clock,
        )
        verdicts = [ctl.admit("t0") for _ in range(50)]
        assert all(isinstance(v, Admitted) for v in verdicts)
        assert ctl.depth == 50


class TestStats:
    def test_counters_and_shed_rate(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=3, refill_per_s=0)),
            clock,
        )
        for _ in range(4):
            ctl.admit("t0")
        stats = ctl.stats()
        assert stats.admitted == 3
        assert stats.shed_budget == 1
        assert stats.shed_depth == 0
        assert stats.shed == 1
        assert stats.shed_rate == pytest.approx(0.25)
        assert stats.depth == 3

    def test_unseen_tenant_reports_full_capacity(self):
        clock = FakeClock()
        ctl = controller(
            AdmissionPolicy(default=TenantPolicy(capacity=7, refill_per_s=1)),
            clock,
        )
        assert ctl.available_tokens("never-seen") == pytest.approx(7.0)

"""Fixture: every determinism rule in one strict-module kernel.

``stamp`` reads the wall clock (D001), ``jitter`` draws from the
process-global RNG (D002), ``plan_key`` folds ``id()`` into a key
(D003).  ``profiled`` uses the monotonic clock and must NOT fire.
"""

import random
import time


def stamp():
    return time.time()


def jitter():
    return random.random()


def plan_key(obj):
    return ("k", id(obj))


def profiled(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start

"""Tests for the query model and the Table 1 classifier."""

from __future__ import annotations

import pytest

from repro.discovery import (
    CATEGORICAL,
    GENERAL,
    QueryClassifier,
    SPECIFIC,
    UNCLASSIFIED,
    parse_query,
)
from repro.errors import QueryError


class TestQueryModel:
    def test_parse_tokenizes(self):
        q = parse_query(101, "Denver Attractions!")
        assert q.keywords == ("denver", "attractions")
        assert q.raw_text == "Denver Attractions!"

    def test_empty_query(self):
        q = parse_query(101, "")
        assert q.is_empty and not q.has_structure

    def test_structural_only_query_not_empty(self):
        q = parse_query(101, "", structural={"type": "destination"})
        assert not q.is_empty and q.has_structure

    def test_scope_condition_defaults_to_items(self):
        from repro.core import Node

        q = parse_query(101, "baseball")
        cond = q.scope_condition()
        item = Node("x", type="item", keywords="baseball game")
        user = Node("u", type="user", keywords="baseball fan")
        assert cond.satisfied_by(item)
        assert not cond.satisfied_by(user)

    def test_scope_condition_keeps_structure(self):
        from repro.core import Node

        q = parse_query(101, "baseball", structural={"type": "destination"})
        cond = q.scope_condition()
        dest = Node("x", type="item, destination", keywords="baseball")
        plain = Node("y", type="item", keywords="baseball")
        assert cond.satisfied_by(dest)
        assert not cond.satisfied_by(plain)

    def test_requires_user(self):
        with pytest.raises(QueryError):
            parse_query(None, "x")


class TestClassifier:
    @pytest.fixture(scope="class")
    def classifier(self):
        return QueryClassifier()

    @pytest.mark.parametrize("text,expected_class,expected_loc", [
        # the paper's own examples
        ("things to do", GENERAL, False),
        ("denver attractions", GENERAL, True),
        ("denver", GENERAL, True),          # "just a location by itself"
        ("hotel", CATEGORICAL, False),
        ("barcelona family trip", CATEGORICAL, True),
        ("historic philadelphia", CATEGORICAL, True),
        ("disneyland", SPECIFIC, True),
        ("yosemite park", SPECIFIC, True),
        ("horoscope lyrics", UNCLASSIFIED, False),
        ("", UNCLASSIFIED, False),
    ])
    def test_paper_examples(self, classifier, text, expected_class,
                            expected_loc):
        result = classifier.classify(text)
        assert result.query_class == expected_class
        assert result.has_location == expected_loc

    def test_specific_beats_categorical(self, classifier):
        # "coors field baseball" mentions a categorical term too.
        result = classifier.classify("coors field baseball")
        assert result.query_class == SPECIFIC

    def test_categorical_beats_general(self, classifier):
        result = classifier.classify("things to do hotels denver")
        assert result.query_class == CATEGORICAL

    def test_multiword_location(self, classifier):
        result = classifier.classify("san francisco sightseeing")
        assert result.query_class == GENERAL and result.has_location

    def test_classify_many(self, classifier):
        results = classifier.classify_many(["denver", "hotel"])
        assert [r.query_class for r in results] == [GENERAL, CATEGORICAL]

    def test_label_pairs(self, classifier):
        assert classifier.classify("denver hotel").label == (CATEGORICAL, True)


class TestClassifierOnGeneratedWorkload:
    """The classifier must recover Table 1's grid from generated queries."""

    def test_recovers_table1_shape(self):
        from repro.workloads import QueryWorkloadGenerator, table1_counts

        generator = QueryWorkloadGenerator(seed=99)
        classifier = QueryClassifier()
        labels = [
            classifier.classify(q.text).label for q in generator.generate(8000)
        ]
        grid = table1_counts(labels)
        # Shape: general > categorical > specific; majority of general and
        # categorical queries mention a location; ~10% unclassified.
        general = grid["with"]["general"] + grid["without"]["general"]
        categorical = grid["with"]["categorical"] + grid["without"]["categorical"]
        specific = grid["with"]["specific"]
        assert general > categorical > specific
        assert general == pytest.approx(0.537, abs=0.06)
        assert categorical == pytest.approx(0.279, abs=0.06)
        assert specific == pytest.approx(0.084, abs=0.04)
        assert grid["unclassified"] == pytest.approx(0.10, abs=0.05)

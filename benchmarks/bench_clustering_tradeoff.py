"""Experiment S62b — the clustering space/time trade-off (§6.2, after [5]).

The paper (citing its VLDB'08 companion) reports the qualitative shape:

* network-based clustering "consumes less space than the basic strategy
  without incurring too much query processing overhead";
* behavior-based clustering "achieves better processing time to the
  expense of space when compared to network-based clustering".

This bench sweeps θ for both strategies, prints index size (entries) and
query-time work (exact-score computations per query — the machine-
independent cost §6.2 identifies), and asserts the shape.  Wall-clock
timings come from the pytest-benchmark rows.
"""

from __future__ import annotations

import random

import pytest

from repro.indexing import (
    ClusteredIndex,
    ExactUserIndex,
    behavior_clustering,
    network_clustering,
)

THETAS = (0.05, 0.1, 0.2)
K = 10
N_QUERIES = 60


def _workload(data, seed=3):
    rng = random.Random(seed)
    return [
        (rng.choice(data.users), rng.sample(data.tag_vocab, k=2))
        for _ in range(N_QUERIES)
    ]


def _mean_query_work(index, queries) -> tuple[float, float]:
    exact = accesses = 0
    for user, keywords in queries:
        _, stats = index.query(user, keywords, K)
        exact += stats.exact_computations
        accesses += stats.total_accesses()
    return exact / len(queries), accesses / len(queries)


def test_tradeoff_table(tagging_data, report, benchmark):
    data = tagging_data
    queries = _workload(data)
    exact_index = benchmark.pedantic(ExactUserIndex, args=(data,),
                                     rounds=1, iterations=1)
    exact_entries = exact_index.report().entries
    exact_work, exact_accesses = _mean_query_work(exact_index, queries)

    lines = [
        "",
        "=== §6.2 clustering space/time trade-off ===",
        (f"  {'strategy':<22}{'θ':>5}{'clusters':>9}{'entries':>9}"
         f"{'space vs exact':>15}{'exact-score/q':>14}"),
        (f"  {'exact (baseline)':<22}{'—':>5}{len(data.users):>9}"
         f"{exact_entries:>9}{'1.00x':>15}{exact_work:>14.1f}"),
    ]
    shapes: dict[tuple[str, float], tuple[int, float]] = {}
    for theta in THETAS:
        for name, make in (("network", network_clustering),
                           ("behavior", behavior_clustering)):
            clustering = make(data, theta)
            index = ClusteredIndex(data, clustering)
            entries = index.report().entries
            work, _ = _mean_query_work(index, queries)
            shapes[(name, theta)] = (entries, work)
            lines.append(
                f"  {name:<22}{theta:>5.2f}{clustering.num_clusters:>9}"
                f"{entries:>9}{exact_entries/max(entries,1):>14.2f}x"
                f"{work:>14.1f}"
            )
    report(*lines)

    for theta in THETAS:
        net_entries, net_work = shapes[("network", theta)]
        beh_entries, beh_work = shapes[("behavior", theta)]
        # Both clustered indexes are smaller than the exact index...
        assert net_entries <= exact_entries
        assert beh_entries <= exact_entries
        # ...and clustering costs extra exact-score work at query time.
        assert net_work >= exact_work
        assert beh_work >= exact_work

    # The paper's [5] shape at the sweep level: network clusters harder
    # (fewer clusters -> smaller index), behavior stays closer to exact
    # (more clusters -> less query-time overhead).
    total_net_entries = sum(shapes[("network", t)][0] for t in THETAS)
    total_beh_entries = sum(shapes[("behavior", t)][0] for t in THETAS)
    total_net_work = sum(shapes[("network", t)][1] for t in THETAS)
    total_beh_work = sum(shapes[("behavior", t)][1] for t in THETAS)
    assert total_net_entries <= total_beh_entries
    assert total_beh_work <= total_net_work


@pytest.mark.parametrize("strategy", ["exact", "network", "behavior"])
def test_query_latency(tagging_data, benchmark, strategy):
    data = tagging_data
    queries = _workload(data)
    if strategy == "exact":
        index = ExactUserIndex(data)
    elif strategy == "network":
        index = ClusteredIndex(data, network_clustering(data, 0.1))
    else:
        index = ClusteredIndex(data, behavior_clustering(data, 0.1))

    def run_queries():
        for user, keywords in queries:
            index.query(user, keywords, K)

    benchmark(run_queries)

#!/usr/bin/env python
"""Quickstart: build a graph, run the algebra, serve queries via a session.

Walks the things a new user of the library does first:

1. build a :class:`SocialContentGraph` by hand;
2. manipulate it with the paper's algebra operators;
3. stand up a warm :class:`~repro.api.Session` and run structured queries
   (fluent builder, per-request overrides, pagination);
4. EXPLAIN a request: see the compiled physical plan, the access path the
   cost model chose, and estimated vs. actual cardinalities per operator;
5. (migration note) the old one-shot facade calls still work.

Run:  python examples/quickstart.py
"""

import os
import sys

if __name__ == "__mp_main__":
    # A spawned process-backend worker (section 9) re-imports __main__
    # to reconstruct this script's namespace.  The walkthrough is
    # idempotent, so the re-run is harmless — but its output isn't
    # wanted twice, so the worker's copy runs silently.  (Real services
    # avoid the re-run entirely by keeping spawn entry points in
    # importable modules rather than scripts.)
    sys.stdout = open(os.devnull, "w")

from repro import Session
from repro.core import (
    Condition,
    Link,
    Node,
    SocialContentGraph,
    aggregate_nodes,
    count,
    select_links,
    select_nodes,
    semi_join,
)

# ---------------------------------------------------------------------------
# 1. Build a graph: two travelers, three destinations, some activity.
# ---------------------------------------------------------------------------
graph = SocialContentGraph()
graph.add_node(Node(1, type="user, traveler", name="John"))
graph.add_node(Node(2, type="user", name="Ann"))
graph.add_node(Node("coors", type="item, destination",
                    name="Coors Field", keywords="denver baseball stadium"))
graph.add_node(Node("museum", type="item, destination",
                    name="Ballpark Museum", keywords="denver baseball museum"))
graph.add_node(Node("aquarium", type="item, destination",
                    name="Downtown Aquarium", keywords="denver family aquarium"))

graph.add_link(Link("f1", 1, 2, type="connect, friend"))
graph.add_link(Link("f2", 2, 1, type="connect, friend"))
graph.add_link(Link("v1", 1, "coors", type="act, visit"))
graph.add_link(Link("v2", 2, "coors", type="act, visit"))
graph.add_link(Link("v3", 2, "museum", type="act, visit"))
graph.add_link(Link("t1", 2, "museum", type="act, tag",
                    tags="baseball history"))

print(f"graph: {graph}")

# ---------------------------------------------------------------------------
# 2. The algebra (paper §5).
# ---------------------------------------------------------------------------
# Node Selection with keywords attaches relevance scores (Definition 1):
baseball = select_nodes(
    graph, Condition({"type": "destination"}, keywords="denver baseball")
)
print("\nσN(destinations, 'denver baseball'):")
for node in sorted(baseball.nodes(), key=lambda n: -(n.score or 0)):
    print(f"  {node.value('name')}: score={node.score:.3f}")

# Semi-join against a null graph filters links by endpoint (Definition 6):
anns_acts = select_links(
    semi_join(graph, select_nodes(graph, {"id": 2}), ("src", "src")),
    {"type": "act"},
)
print(f"\nAnn's activities: {[l.id for l in anns_acts.links()]}")

# Node aggregation counts friends into an attribute (Definition 9):
with_counts = aggregate_nodes(graph, {"type": "friend"}, "src",
                              "fnd_cnt", count())
print(f"John's friend count: {with_counts.node(1).value('fnd_cnt')}")

# ---------------------------------------------------------------------------
# 3. The session API (Figure 1 as a serving loop).
# ---------------------------------------------------------------------------
# One Session owns the wired layers and stays warm across queries: the
# tf-idf corpus and the semantic inverted index build once, lazily, and
# survive until the graph changes.
session = Session.from_graph(graph)

response = (session.query(1)                 # the requesting user
            .text("denver baseball")         # content keywords
            .limit(10)                       # ranked-result budget
            .run())

print("\nsession.query(John).text('denver baseball').run():")
print(f"  grouping dimension chosen: {response.page.chosen_dimension}")
print(f"  candidates from index: {response.index_used}")
for group in response.groups:
    print(f"  [{group.label}]")
    for entry in group.entries:
        print(f"    {entry.name}  score={entry.score:.3f}")
        if entry.explanation.aggregate_text:
            print(f"      ({entry.explanation.aggregate_text})")

# Per-request overrides leave the session untouched: semantic-only scoring
# for this one query, and a forced grouping dimension.
semantic_only = (session.query(1).text("denver baseball")
                 .alpha(1.0).group_by("topical").run())
print(f"\nα=1.0, group_by topical: {[i for i in semantic_only.items]}")

# Deterministic pagination: windows of the same total ranking.
page1 = session.query(1).text("denver").page_size(2).run()
print(f"\npage 1 of 'denver': {list(page1.items)}"
      f" (total {page1.page_info.total_items},"
      f" has_next={page1.page_info.has_next})")
if page1.page_info.next_cursor:
    page2 = (session.query(1).text("denver")
             .cursor(page1.page_info.next_cursor).run())
    print(f"page 2 of 'denver': {list(page2.items)}")

# Batch execution reuses the warm state across many requests at once
# (pass executor=ThreadPoolExecutor(...) to fan out).
from repro.api import SearchRequest

batch = session.run_many([
    SearchRequest(user_id=1, text="denver baseball"),
    SearchRequest(user_id=1),                  # empty query: recommendation
    SearchRequest(user_id=2, text="museum", strategy="friends"),
])
print(f"\nbatch of 3 requests -> {[len(r.items) for r in batch]} results;"
      f" tf-idf built {session.stats.tfidf_builds}x")

# ---------------------------------------------------------------------------
# 4. EXPLAIN: every query is compiled into an optimizable physical plan.
# ---------------------------------------------------------------------------
# The session never hand-executes a query: the *whole* pipeline — the
# semantic σN⟨C,S⟩ candidate stage, connection selection, the social
# scoring strategy (a semi-join probe / grouped aggregation), and the
# α-combination — is built as one algebra plan, rule-optimized, and
# lowered to physical operators.  The cost model over GraphStats picks
# every access path: scan vs. the semantic inverted index for keyword
# scoping, and adjacency probe vs. the §6.2 network-aware endorsement
# indexes for friend scoring.  `.explain()` attaches the executed plan.
explained = (session.query(1)
             .text("denver baseball")
             .explain()
             .run())
plan = explained.plan
print("\nEXPLAIN session.query(John).text('denver baseball'):")
print("  " + plan.text.replace("\n", "\n  "))
# The combine⟨α⟩ root merges the two stages; social⟨friends⟩ and
# basis⟨…⟩ are the compiled social stage (Example 4/5's semi-joins +
# aggregations), sharing the σN candidate sub-plan — it executes once.
assert "combine" in plan.text and "social" in plan.text
print(f"  social strategy in the plan: {plan.resolved_strategy}")

# Per-operator estimated vs. actual cardinalities — the feedback a
# learning cost model would consume:
for op in plan.operators:
    actual = f"{op.actual.nodes:.0f} nodes" if op.actual else "-"
    print(f"  {'  ' * op.depth}{op.op}: estimated ~{op.estimated.nodes:.0f}"
          f" nodes, actual {actual}")

# The access decision is cost-based, and forcing the scan path yields the
# *identical* page (the index's parity contract):
print(f"  access path: {plan.access_path}"
      f" ({plan.decisions[0].reason if plan.decisions else 'no choice'})")
forced_scan = (session.query(1).text("denver baseball")
               .use_index(False).explain().run())
assert list(forced_scan.items) == list(explained.items)
print(f"  forced scan returns the same page: {list(forced_scan.items)}")

# Compiled plans cache per shape — the cache now covers the *full*
# query, social stage included: re-running the request skips the
# optimizer (see session.stats.plan_cache_hits), and any graph change
# invalidates every cached plan at once.
session.query(1).text("denver baseball").run()
print(f"  plan compiles: {session.stats.plan_compiles},"
      f" plan-cache hits: {session.stats.plan_cache_hits}")

# Strategy selection itself is cost-based when left open: strategy="auto"
# lets the compiler pick from the connection-degree statistics, and the
# decision (with its reason) rides on the plan.
auto = session.run(SearchRequest(user_id=1, strategy="auto", explain=True))
pick = auto.plan.strategy_decision
print(f"  auto strategy pick: {pick.chosen} ({pick.reason})")
assert auto.resolved["social_strategy"] == pick.chosen

# ---------------------------------------------------------------------------
# 5. Scale out: partitioned storage, columnar scans, pooled execution.
# ---------------------------------------------------------------------------
# SessionConfig(shards=N) backs the Data Manager with a hash-partitioned
# PartitionedGraphStore (same interface, N shards with per-shard stats),
# and the planner then scatters large base-graph scans across per-shard
# *columnar* views: each partition holds its nodes as columns (type
# buckets, dictionary-encoded attributes, term postings), the selection
# compiles into a vectorized evaluator over them, and real node records
# only materialise for the survivors — at the single union that hands
# the next operator its graph.  parallelism="force" drives every plan
# through the shared worker pool ("auto" lets the cost model's threshold
# decide, so small plans stay sequential).
from repro.api import SessionConfig
from repro.plan import CostModel

big = SocialContentGraph()
for u in range(80):
    big.add_node(Node(f"u{u}", type="user", name=f"traveler {u}"))
for i in range(400):
    big.add_node(Node(f"d{i}", type="item, destination", name=f"spot {i}",
                      keywords=f"denver topic{i % 7}"))
for u in range(80):
    big.add_link(Link(f"c{u}", f"u{u}", f"u{(u + 1) % 80}",
                      type="connect, friend"))
    for step in range(3):
        big.add_link(Link(f"a{u}-{step}", f"u{u}", f"d{(u * 5 + step) % 400}",
                          type="act, visit"))

sharded = Session.from_graph(big, SessionConfig(shards=4,
                                                parallelism="force"))
# the demo graph is small, so lower the scatter threshold to see it work
sharded.planner.cost_model = CostModel(shard_scan_min_nodes=64.0)

flat = Session.from_graph(big)
recommendation = sharded.query("u0").limit(5).explain().run()
assert recommendation.items == flat.query("u0").limit(5).run().items
print(f"\nsharded+pooled session: executor={recommendation.plan.executor},"
      f" sharded={recommendation.plan.sharded}")
# EXPLAIN shows the columnar access path — the σN row reads
# "[sharded×4:…]" (partition-scattered, pruned/covered by the
# partition-local type buckets) — broken down per shard, each tagged
# with the pool worker that ran it; and the header carries the top-k
# bound the .limit(5) budget pushed into the ranking stage (the sort is
# a heap selection of 5, not a full ordering of every candidate):
assert "top-k=5" in recommendation.plan.text
assert recommendation.plan.topk == 5
for op in recommendation.plan.operators:
    if op.shard is not None or "sharded" in op.op:
        where = f" @{op.worker}" if op.worker else ""
        print(f"  {'  ' * op.depth}{op.op}: {op.actual.nodes:.0f} nodes"
              f"{where}")
assert recommendation.plan.executor.startswith("pooled(")

# Compiled plans now live in a process-wide SharedPlanCache: a second
# session over the same Data Manager — same graph, same cost model, same
# shard layout — reuses the first one's hot plans (entries are
# generation-stamped and anchored to the graph object, so any write
# still invalidates instantly).
twin = Session(sharded.data_manager, SessionConfig(shards=4))
twin.planner.cost_model = CostModel(shard_scan_min_nodes=64.0)
twin.run(SearchRequest(user_id="u0", k=5))
print(f"  twin session plan compiles: {twin.stats.plan_compiles},"
      f" shared-cache hits: {twin.stats.plan_cache_hits}")
assert twin.stats.plan_cache_hits == 1  # compiled once, site-wide

# The shared cache is a site-wide resource, so its counters are a
# *management* endpoint on the Data Manager — hits, compiles paid,
# evictions (entry-count or byte-budget), and TinyLFU admission
# rejections across every session in the process:
site_cache = sharded.data_manager.plan_cache_stats()
print(f"  site-wide plan cache: hits={site_cache['hits']},"
      f" compiles={site_cache['compiles']},"
      f" evictions={site_cache['evictions']},"
      f" admission_rejections={site_cache['admission_rejections']},"
      f" ~{site_cache['bytes'] / 1024:.0f} KiB resident")
assert site_cache["hits"] >= 1

# ---------------------------------------------------------------------------
# 6. Serve many tenants at once: the asyncio gateway.
# ---------------------------------------------------------------------------
# One warm session answers one query at a time; repro.serve.ServeGateway
# is its concurrent front door.  Tenants submit concurrently, admission
# control sheds past-budget traffic with a typed Overloaded *value* (not
# an exception), and requests that compile to the same plan coalesce
# into a single Session.run_many batch — the shared plan cache compiles
# once for the whole batch.
import asyncio

from repro.serve import (
    AdmissionPolicy, GatewayConfig, Overloaded, ServeGateway, TenantPolicy,
)

hot = SearchRequest(user_id="u0", text="denver", k=5)


async def serve_demo():
    config = GatewayConfig(batch_window_s=0.05)  # wide window: demo batching
    async with ServeGateway(sharded, config) as gateway:
        outcomes = await asyncio.gather(
            gateway.submit("alice", hot),
            gateway.submit("bob", hot.replace(k=3)),        # same plan key
            gateway.submit("carol", hot.replace(page=2)),   # same plan key
            gateway.submit("dave", SearchRequest(user_id="u1", k=5)),
        )
        return outcomes, gateway.stats(), gateway.plan_cache_stats()


outcomes, serve_stats, serve_cache = asyncio.run(serve_demo())
assert all(o.ok for o in outcomes)
# alice/bob/carol differ only in execution fields (k, pagination), so
# they shared one batch; each still got their own exact response window
assert outcomes[0].items[:3] == outcomes[1].items
print(f"\ngateway: {serve_stats.completed} served in {serve_stats.batches}"
      f" batches, sizes {dict(serve_stats.batch_size_histogram)},"
      f" mean {serve_stats.mean_batch_size:.2f}")
print(f"  site-wide plan cache through the gateway:"
      f" hits={serve_cache['hits']} compiles={serve_cache['compiles']}")

# Admission control: a tenant with an exhausted budget is shed, others
# are untouched.  Overloaded is an outcome, not an exception.
tight = GatewayConfig(admission=AdmissionPolicy(
    default=TenantPolicy(capacity=2, refill_per_s=1)))


async def overload_demo():
    async with ServeGateway(sharded, tight) as gateway:
        return await asyncio.gather(*(
            gateway.submit("greedy", hot) for _ in range(4)
        ))


verdicts = asyncio.run(overload_demo())
shed = [v for v in verdicts if isinstance(v, Overloaded)]
print(f"  overload: {len(verdicts) - len(shed)} served, {len(shed)} shed"
      f" ({shed[0].reason}, retry in {shed[0].retry_after_s:.1f}s)")
assert len(shed) == 2 and all(v.reason == "tenant_budget" for v in shed)

# End-to-end deadlines are the other typed shed: every admitted request
# carries one (tenant policy, or the gateway default), enforced both by
# a loop-side timer and by cooperative checks inside the plan executor.
# A request that cannot make its budget resolves as DeadlineExceeded —
# a value, never a stuck future.  (Here the batch window is wider than
# the deadline, so the timer fires while the request is still queued.)
from repro.serve import DeadlineExceeded

impatient = GatewayConfig(batch_window_s=5.0, default_deadline_s=0.05)


async def deadline_demo():
    async with ServeGateway(sharded, impatient) as gateway:
        return await gateway.submit("latency-bound", hot), gateway.stats()


expired, dstats = asyncio.run(deadline_demo())
assert isinstance(expired, DeadlineExceeded) and not expired.ok
print(f"  deadline: shed at stage={expired.stage!r} after"
      f" {expired.elapsed_s * 1e3:.0f}ms (budget"
      f" {expired.deadline_s * 1e3:.0f}ms); breakers: "
      + ", ".join(f"{name}={snap.state}"
                  for name, snap in sorted(dstats.breakers.items())))
assert dstats.deadline_expired == 1

# ---------------------------------------------------------------------------
# 7. Durability: save the site, kill the process, recover — warm.
# ---------------------------------------------------------------------------
# A site is one directory: per-shard snapshot files (CRC-verified JSON
# lines), MANIFEST.json, and an append-only activity WAL.  Every
# add_node/add_link/delete after enable_wal() journals before it
# acknowledges; Session.save() checkpoints atomically and rotates the
# log, so recovery is "load snapshot + replay the short tail".  (The
# real kill -9 — torn WAL frame, fresh interpreter — runs in CI as
# benchmarks/durability_smoke.py; here we just drop the session.)
import tempfile
from pathlib import Path

from repro.errors import RestartCursorError

site_dir = Path(tempfile.mkdtemp(prefix="socialscope-site-"))
sharded.data_manager.enable_wal(site_dir / "wal")

before = sharded.run(SearchRequest(user_id="u0", text="denver", k=5,
                                   page_size=3))
stale_cursor = before.page_info.next_cursor
assert stale_cursor is not None  # a second page exists to come back for
sharded.save(site_dir)

# Post-checkpoint activity lands only in the WAL — exactly what a crash
# would strand — and the "crash": the session object simply goes away.
sharded.data_manager.add_node(Node("d-late", type="item, destination",
                                   name="late spot", keywords="denver"))
sharded.data_manager.wal.sync()
del sharded

# Recovery = snapshot + WAL tail.  The restore is *warm*: the manifest
# carries the learned cardinality corrections and a plan-warming recipe
# list, replayed through the planner — so the very first request is a
# plan-cache hit, no compile, at learned cost.
revived = Session.restore(site_dir)
after = revived.run(SearchRequest(user_id="u0", text="denver", k=5,
                                  page_size=3))
assert list(after.items) == list(before.items)  # identical rankings
assert "d-late" in revived.run(
    SearchRequest(user_id="u0", text="denver", k=50)).items  # tail replayed
assert revived.stats.plan_compiles == 0  # warm: compiled before the crash
print(f"\nrecovered site: rankings identical, WAL tail visible,"
      f" first request plan-cache hits={revived.stats.plan_cache_hits},"
      f" compiles={revived.stats.plan_compiles}")

# Cursors are incarnation-stamped: a token minted before the crash is
# refused with a *typed* error (still a QueryError for old callers),
# never silently re-windowed over a graph that may have moved on.
try:
    revived.run(SearchRequest(user_id="u0", text="denver",
                              cursor=stale_cursor))
    raise AssertionError("pre-crash cursor must not survive a restart")
except RestartCursorError as exc:
    print(f"  pre-crash cursor refused: {exc}")

# ---------------------------------------------------------------------------
# 8. Migration note: the classic facade still works, now session-backed.
#
#    scope = SocialScope.from_graph(graph)
#    scope.search(1, "denver baseball", k=10)  == session.query(1)
#        .text("denver baseball").limit(10).run().page
#    scope.recommend(1, k=5)                   == session.query(1)
#        .limit(5).run().page
#    scope.explore(1, "denver")                == session.explore(
#        SearchRequest(user_id=1, text="denver"))
# ---------------------------------------------------------------------------
from repro import SocialScope

scope = SocialScope.from_graph(graph)
page = scope.search(user_id=1, query="denver baseball")
assert [e.item_id for e in page.flat] == \
    [e.item_id for e in response.page.flat]
print("\nfacade parity holds: scope.search == session.query(...).run().page")

# ---------------------------------------------------------------------------
# 9. True multicore execution: the shared-memory process backend.
# ---------------------------------------------------------------------------
# Threads share one GIL, so the pooled executor above overlaps only the
# bookkeeping around a scan, not the scan kernels themselves.  With
# parallelism="processes" (or "auto" past CostModel.process_min_rows ×
# shards), shippable scatter scans leave the interpreter entirely: a
# ProcessShardPool of spawned workers keeps each shard's columnar view
# resident, position indexes live in one shared-memory slab per graph
# generation, and only the compiled ScanProgram and the surviving row
# positions cross the pipe.  Conditions that cannot pickle (closure
# lambdas) pin their plan to threads; a worker dying mid-plan degrades
# that execution to the in-process kernels — same answer, slower.
#
# Spawned workers re-import __main__, so the demo lives behind the
# __main__ guard below — the same reason real services keep their spawn
# entry points in importable modules.


def multicore_demo() -> None:
    import os

    from repro.core import input_graph
    from repro.plan import QueryPlanner

    planner = QueryPlanner(
        big,
        cost_model=CostModel(shard_scan_min_nodes=64.0,
                             process_min_rows=0.0),
        parallelism="processes",
    )
    planner.attach_shards(4)
    try:
        execution = planner.execute(input_graph("G").select_nodes(
            Condition({"type": "destination"}, keywords="denver")
        ))
        pids = planner.process_pool.worker_pids
        print(f"\nprocess executor: {execution.executor}")
        print(f"  coordinator pid {os.getpid()}, worker pids {list(pids)}")
        assert any(pid != os.getpid() for pid in pids)  # real parallelism
        # per-shard EXPLAIN rows split ship (slab transfer, amortised
        # once per generation) from scan (the worker-side kernel):
        for line in execution.render().splitlines():
            if "shard[" in line:
                print(f"  {line.strip()}")

        # The degradation ladder, live.  A worker that merely dies
        # *between* plans is reaped and respawned at the next slab ship
        # (the pool self-heals before degrading); to watch a *mid-plan*
        # crash we need the worker to die after dispatch.  That is what
        # the fault-injection subsystem is for: repro.testing is the
        # test-only arming API (rule T001 keeps it out of production
        # modules) and `worker_killer` SIGKILLs the worker right before
        # the next pipe request — an OOM kill, made deterministic.  The
        # executor degrades processes → threads mid-plan, the answer is
        # identical, and EXPLAIN records both the degrade and the
        # breaker transition in its `resilience:` header — never a
        # silent fallback.  (The faulted query must be a *fresh* shape:
        # repeating the "denver" scan above would be answered from the
        # plan cache without ever touching a worker pipe.)
        from repro.testing import armed_faults, worker_killer

        expr = input_graph("G").select_nodes(
            Condition({"type": "destination"}, keywords="topic1")
        )
        reference = QueryPlanner(big).execute(expr)  # in-process answer
        with armed_faults(
            {"parallel.worker_request": worker_killer(times=1)}
        ):
            degraded = planner.execute(expr)
        assert degraded.result.same_as(reference.result)  # same answer
        assert "degraded→threads" in degraded.executor
        assert "pool:processes→threads" in degraded.resilience
        print(f"  after the worker was killed mid-plan: {degraded.executor}")
        for line in degraded.render().splitlines():
            if line.strip().startswith("resilience:"):
                print(f"  {line.strip()}")
        breaker = planner.process_pool.breaker
        print(f"  worker_pool breaker: {breaker.stats().state}"
              f" (cooldown {breaker.cooldown_s:.1f}s, then a half-open"
              f" probe reaps + respawns the workers and re-closes it)")
    finally:
        planner.close()  # shuts workers down, unlinks the shared slab


if __name__ == "__main__":
    multicore_demo()

"""Rule family P: the columnar/physical execute paths never mutate inputs.

* **P001** — a configured purity module calls a graph-mutating method
  (``add_node``, ``add_link``, ``remove_*``) on an object it did not
  construct locally.  The columnar shard views exist precisely so
  operators stop materialising intermediate graphs; an operator that
  mutates its *input* graph corrupts every other plan sharing the
  snapshot (the shard store hands out the same objects under a
  generation stamp, not copies).

A receiver counts as *locally constructed* (and therefore fair game)
when, within the same function, the name was assigned from a direct
constructor call (``g = Graph(...)``, ``out = SiteGraph()``) or from a
``.copy()`` / ``copy.deepcopy`` call.  Everything else — parameters,
attributes, comprehension results, returns of helper functions — is
treated as shared input.  This under-approximates "fresh" on purpose:
a helper that returns a new graph still gets flagged until the
construction is made visible, which keeps the audit trail honest.
"""

from __future__ import annotations

import ast

from tools.archcheck.config import Config
from tools.archcheck.findings import Finding, Module

FRESH_SOURCES = {"copy", "deepcopy"}


def _fresh_locals(fn: ast.AST) -> set[str]:
    """Names assigned from an obvious fresh-object construction."""
    fresh: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        is_fresh = False
        if isinstance(func, ast.Name) and func.id[:1].isupper():
            is_fresh = True  # direct constructor call by convention
        elif isinstance(func, ast.Attribute):
            if func.attr in FRESH_SOURCES:
                is_fresh = True
            elif func.attr[:1].isupper():
                is_fresh = True  # module-qualified constructor
        if not is_fresh:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                fresh.add(target.id)
    return fresh


def check_purity(modules: list[Module], config: Config) -> list[Finding]:
    findings: list[Finding] = []
    mutators = set(config.purity_mutators)
    for module in modules:
        if not config.module_in(module.name, config.purity_modules):
            continue
        for qualname, fn in _functions(module.tree):
            fresh = _fresh_locals(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in mutators:
                    continue
                receiver = func.value
                if isinstance(receiver, ast.Name) and receiver.id in fresh:
                    continue
                try:
                    receiver_src = ast.unparse(receiver)
                except Exception:
                    receiver_src = "<expr>"
                findings.append(Finding(
                    rule="P001",
                    path=module.rel_path,
                    line=node.lineno,
                    symbol=qualname,
                    message=(
                        f"{receiver_src}.{func.attr}() mutates a graph "
                        f"the function did not construct — execute paths "
                        f"in {module.name!r} must treat inputs as "
                        f"read-only snapshots"
                    ),
                    detail=f"{receiver_src}.{func.attr}",
                ))
    return findings


def _functions(tree: ast.Module):
    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{child.name}", child
            else:
                yield from walk(child, prefix)
    yield from walk(tree, "")

"""The activity WAL: framing, rotation, torn tails, pruning, idempotency."""

import pytest

from repro.errors import PersistenceError, WalCorruptedError
from repro.management.wal import (
    OP_DEL_NODE,
    OP_LINK,
    OP_NODE,
    WalWriter,
    frame_record,
    iter_tail,
    list_segments,
    prune_segments,
    read_wal,
    segment_name,
    truncate_torn_tail,
    unframe_record,
)


def _payloads(n, start=0):
    return [{"id": f"n{start + i}", "type": "user"} for i in range(n)]


# ---------------------------------------------------------------- framing


class TestFraming:
    def test_round_trip(self):
        payload = {"seq": 1, "op": OP_NODE, "id": "u1", "w": 0.5}
        assert unframe_record(frame_record(payload)) == payload

    def test_crc_mismatch_is_none(self):
        line = frame_record({"seq": 1, "op": OP_NODE, "id": "u1"})
        corrupted = line.replace("u1", "u2")  # body changed, CRC stale
        assert unframe_record(corrupted) is None

    @pytest.mark.parametrize("junk", [
        "", "short", "not-hex!! {}", "deadbeef", "deadbeef {\"trunc",
        "deadbeef_{}",  # missing space separator
    ])
    def test_junk_is_none(self, junk):
        assert unframe_record(junk) is None

    def test_non_finite_payload_refused_at_append(self, tmp_path):
        writer = WalWriter(tmp_path)
        with pytest.raises(Exception):
            writer.append(OP_NODE, {"id": "u1", "score": float("nan")})


# ----------------------------------------------------------------- writer


class TestWriter:
    def test_seq_is_monotone_and_returned(self, tmp_path):
        writer = WalWriter(tmp_path)
        seqs = [writer.append(OP_NODE, p) for p in _payloads(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert writer.last_seq == 5

    def test_records_read_back_in_order(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append_many([(OP_NODE, p) for p in _payloads(7)])
        writer.sync()
        records, tail = read_wal(tmp_path)
        assert tail is None
        assert [r["seq"] for r in records] == list(range(1, 8))
        assert all(r["op"] == OP_NODE for r in records)

    def test_rotation_produces_multiple_segments(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_bytes=64)
        for p in _payloads(10):
            writer.append(OP_NODE, p)
        writer.sync()
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        # names encode each segment's starting seq
        assert segments[0].name == segment_name(1)
        records, _ = read_wal(tmp_path)
        assert [r["seq"] for r in records] == list(range(1, 11))

    def test_unknown_op_refused(self, tmp_path):
        with pytest.raises(PersistenceError, match="unknown WAL op"):
            WalWriter(tmp_path).append("frobnicate", {"id": 1})

    def test_append_after_close_refused(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(OP_NODE, {"id": 1})
        writer.close()
        with pytest.raises(PersistenceError, match="closed"):
            writer.append(OP_NODE, {"id": 2})

    def test_refuses_to_overwrite_foreign_records(self, tmp_path):
        first = WalWriter(tmp_path)
        first.append(OP_NODE, {"id": 1})
        first.sync()
        with pytest.raises(PersistenceError, match="refusing to overwrite"):
            WalWriter(tmp_path, next_seq=1).append(OP_NODE, {"id": 9})

    def test_supersedes_empty_crash_artifact_segment(self, tmp_path):
        (tmp_path / segment_name(1)).touch()  # opened, nothing flushed
        writer = WalWriter(tmp_path, next_seq=1)
        writer.append(OP_NODE, {"id": 1})
        writer.sync()
        records, tail = read_wal(tmp_path)
        assert tail is None and [r["id"] for r in records] == [1]

    def test_resumed_writer_opens_fresh_segment(self, tmp_path):
        first = WalWriter(tmp_path)
        for p in _payloads(3):
            first.append(OP_NODE, p)
        first.close()
        second = WalWriter(tmp_path, next_seq=first.last_seq + 1)
        second.append(OP_NODE, {"id": "late"})
        second.sync()
        assert len(list_segments(tmp_path)) == 2
        records, _ = read_wal(tmp_path)
        assert [r["seq"] for r in records] == [1, 2, 3, 4]


# -------------------------------------------------------------- torn tails


class TestTornTail:
    def _seed(self, tmp_path, n=4):
        writer = WalWriter(tmp_path)
        for p in _payloads(n):
            writer.append(OP_NODE, p)
        writer.sync()
        return list_segments(tmp_path)[-1]

    def test_partial_final_record_is_a_tail(self, tmp_path):
        segment = self._seed(tmp_path)
        with open(segment, "a") as handle:
            handle.write("deadbeef {\"seq\": 5, \"op\"")  # crashed mid-write
        records, tail = read_wal(tmp_path)
        assert len(records) == 4
        assert tail is not None and tail.segment == segment

    def test_truncate_restores_clean_log(self, tmp_path):
        segment = self._seed(tmp_path)
        clean_size = segment.stat().st_size
        with open(segment, "a") as handle:
            handle.write("garbage that never framed")
        _, tail = read_wal(tmp_path)
        truncate_torn_tail(tail)
        assert segment.stat().st_size == clean_size
        records, tail = read_wal(tmp_path)
        assert tail is None and len(records) == 4

    def test_fully_torn_segment_is_unlinked(self, tmp_path):
        self._seed(tmp_path, n=2)
        bogus = tmp_path / segment_name(3)
        bogus.write_text("nonsense with no valid frame\n")
        records, tail = read_wal(tmp_path)
        assert tail is not None and tail.offset == 0
        truncate_torn_tail(tail)
        assert not bogus.exists()
        assert len(read_wal(tmp_path)[0]) == 2

    def test_mid_segment_damage_refused(self, tmp_path):
        segment = self._seed(tmp_path)
        lines = segment.read_text().splitlines(keepends=True)
        lines[1] = "deadbeef {\"broken\n"  # valid records follow
        segment.write_text("".join(lines))
        with pytest.raises(WalCorruptedError, match="mid-log damage"):
            read_wal(tmp_path)

    def test_torn_non_final_segment_refused(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_bytes=1)  # rotate per record
        for p in _payloads(3):
            writer.append(OP_NODE, p)
        writer.sync()
        segments = list_segments(tmp_path)
        assert len(segments) >= 2
        with open(segments[0], "a") as handle:
            handle.write("torn tail in the wrong place")
        with pytest.raises(WalCorruptedError, match="non-final segment"):
            read_wal(tmp_path)


# ------------------------------------------------------- pruning + replay


class TestPruneAndReplay:
    def test_prune_drops_only_covered_segments(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_bytes=1)
        for p in _payloads(5):
            writer.append(OP_NODE, p)
        writer.sync()
        assert len(list_segments(tmp_path)) == 5
        deleted = prune_segments(tmp_path, upto_seq=3)
        assert len(deleted) == 3
        records, _ = read_wal(tmp_path)
        assert [r["seq"] for r in records] == [4, 5]

    def test_prune_keeps_active_tail(self, tmp_path):
        writer = WalWriter(tmp_path)
        for p in _payloads(3):
            writer.append(OP_NODE, p)
        writer.sync()
        assert prune_segments(tmp_path, upto_seq=99) == []
        assert len(list_segments(tmp_path)) == 1

    def test_iter_tail_skips_applied_watermark(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(OP_NODE, {"id": "a"})
        writer.append(OP_LINK, {"id": "l"})
        writer.append(OP_DEL_NODE, {"id": "a"})
        writer.sync()
        records, _ = read_wal(tmp_path)
        assert [r["seq"] for r in iter_tail(records, 0)] == [1, 2, 3]
        assert [r["seq"] for r in iter_tail(records, 2)] == [3]
        # replaying the same records twice is a no-op past the watermark
        assert list(iter_tail(records, 3)) == []

"""Warm restart of the session engine: save → recover → serve identically.

The restart-correctness bugs this PR fixes live here: epoch counters must
not restart at zero (pre-crash cursors would alias fresh rankings), the
learned cardinality-feedback table must survive, and a restored site must
reach learned-cost serving — plan-cache hits — on its *first* request.
"""

from __future__ import annotations

import pytest

from repro.api import SearchRequest, Session
from repro.api.request import decode_cursor, encode_cursor
from repro.api.session import SessionConfig
from repro.core import Link, Node
from repro.errors import QueryError, RestartCursorError
from repro.management import DataManager

from tests.factories import social_site_graph

STRATEGIES = ("friends", "similar_users", "item_based")


def durable_session(tmp_path, shards=2):
    dm = DataManager(shards=shards)
    dm.load_graph(social_site_graph(num_users=8, num_items=10))
    dm.enable_wal(tmp_path / "wal")
    return Session(dm)


def _request(**kw):
    defaults = dict(user_id="u0", text="topic1 thing", page_size=4)
    defaults.update(kw)
    return SearchRequest(**defaults)


# ---------------------------------------------------------------- cursors


class TestCursorBootToken:
    def test_boot_zero_token_format_unchanged(self):
        # never-restored sites mint byte-identical tokens to the
        # pre-durability format (no "b" key) — old clients keep working
        assert encode_cursor(40, 20, 3) == encode_cursor(40, 20, 3, boot=0)
        assert decode_cursor(encode_cursor(40, 20, 3)) == (40, 20, 3)

    def test_boot_round_trips(self):
        token = encode_cursor(8, 4, 2, boot=5)
        assert decode_cursor(token, expected_boot=5) == (8, 4, 2)

    def test_cross_incarnation_rejected_typed(self):
        token = encode_cursor(8, 4, 2, boot=1)
        with pytest.raises(RestartCursorError, match="incarnation"):
            decode_cursor(token, expected_boot=2)

    def test_restart_error_is_still_a_query_error(self):
        # callers that only catch QueryError keep degrading gracefully
        token = encode_cursor(0, 4, 0, boot=0)
        with pytest.raises(QueryError):
            decode_cursor(token, expected_boot=3)


class TestRestartCursors:
    def test_pre_crash_cursor_rejected_after_restore(self, tmp_path):
        session = durable_session(tmp_path)
        response = session.run(_request())
        cursor = response.page_info.next_cursor
        assert cursor is not None
        session.save(tmp_path)

        restored = Session.restore(tmp_path)
        with pytest.raises(RestartCursorError):
            restored.run(_request(cursor=cursor))

    def test_post_restore_cursors_page_cleanly(self, tmp_path):
        session = durable_session(tmp_path)
        session.save(tmp_path)
        restored = Session.restore(tmp_path)
        first = restored.run(_request())
        second = restored.run(_request(cursor=first.page_info.next_cursor))
        assert first.items and second.items
        assert not set(first.items) & set(second.items)  # no dup, no drop

    def test_mid_session_stale_cursor_stays_generic(self, tmp_path):
        # refresh staleness within one incarnation is NOT a restart error
        session = durable_session(tmp_path)
        cursor = session.run(_request()).page_info.next_cursor
        session.data_manager.add_node(
            Node("fresh", type="item", name="new item", keywords="thing")
        )
        with pytest.raises(QueryError, match="stale cursor") as excinfo:
            session.run(_request(cursor=cursor))
        assert not isinstance(excinfo.value, RestartCursorError)


# ------------------------------------------------------------- continuity


class TestWarmRestart:
    def test_rankings_identical_across_restart(self, tmp_path):
        session = durable_session(tmp_path, shards=2)
        live = {
            s: session.run(_request(strategy=s, page_size=50)).items
            for s in STRATEGIES
        }
        session.save(tmp_path)
        restored = Session.restore(tmp_path)
        for s in STRATEGIES:
            assert restored.run(
                _request(strategy=s, page_size=50)
            ).items == live[s]

    def test_wal_tail_included_in_restore(self, tmp_path):
        session = durable_session(tmp_path)
        session.save(tmp_path)
        # post-checkpoint activity reaches only the WAL, never a snapshot
        session.data_manager.add_node(
            Node("i99", type="item", name="late item",
                 keywords="topic1 thing"))
        session.data_manager.add_link(
            Link("a99", "u0", "i99", type="act, visit"))
        session.data_manager.wal.sync()
        live = session.run(_request(page_size=50)).items
        assert "i99" in live

        restored = Session.restore(tmp_path)
        assert restored.run(_request(page_size=50)).items == live

    def test_epoch_and_boot_continuity(self, tmp_path):
        session = durable_session(tmp_path)
        for _ in range(3):  # force refreshes to advance the epoch
            session.data_manager.add_node(
                Node(f"pad{session.epoch}", type="item", name="pad"))
            session.run(_request())
        assert session.epoch >= 3
        session.save(tmp_path)

        restored = Session.restore(tmp_path)
        assert restored.epoch >= session.epoch  # never backwards
        assert restored.boot == session.boot + 1

        restored.save(tmp_path)
        third = Session.restore(tmp_path)
        assert third.boot == restored.boot + 1  # monotone per restore

    def test_feedback_corrections_survive(self, tmp_path):
        session = durable_session(tmp_path)
        for _ in range(4):  # observed cardinalities train the corrections
            session.run(_request())
        trained = session.planner.feedback.export_state()
        assert trained["factors"], "expected learned corrections"
        session.save(tmp_path)

        # cold restore loads the table verbatim (warming would keep
        # training it, which is normal operation, not state loss)
        cold = Session.restore(tmp_path, warm=False)
        assert (cold.planner.feedback.export_state()["factors"]
                == trained["factors"])

        warm = Session.restore(tmp_path)
        warmed = warm.planner.feedback.export_state()
        trained_keys = {repr(k) for k, _ in trained["factors"]}
        warmed_keys = {repr(k) for k, _ in warmed["factors"]}
        assert trained_keys <= warmed_keys

    def test_first_request_hits_plan_cache(self, tmp_path):
        session = durable_session(tmp_path)
        session.run(_request())
        session.save(tmp_path)

        restored = Session.restore(tmp_path)
        response = restored.run(_request())
        assert response.ok
        assert restored.stats.plan_cache_hits >= 1
        assert restored.stats.plan_compiles == 0

    def test_cold_restore_compiles(self, tmp_path):
        # warm=False is the control: same data, no recipes replayed
        session = durable_session(tmp_path)
        session.run(_request())
        session.save(tmp_path)

        cold = Session.restore(tmp_path, warm=False)
        cold.run(_request())
        assert cold.stats.plan_compiles >= 1

    def test_analyses_rederived_on_restore(self, tmp_path):
        session = durable_session(tmp_path)
        session.analyze("item_similarity")
        derived_live = sum(
            1 for l in session.graph.links() if l.has_type("sim_item")
        )
        session.save(tmp_path)

        restored = Session.restore(tmp_path)
        derived_restored = sum(
            1 for l in restored.graph.links() if l.has_type("sim_item")
        )
        assert derived_restored == derived_live

    def test_restore_respects_config(self, tmp_path):
        session = durable_session(tmp_path)
        session.save(tmp_path)
        restored = Session.restore(
            tmp_path, config=SessionConfig(parallelism="never")
        )
        assert restored.config.parallelism == "never"
        assert restored.run(_request()).ok

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import faulthandler
import os

import pytest
from hypothesis import strategies as st

import factories
from repro.core import Link, Node, SocialContentGraph


@pytest.fixture
def deadlock_watchdog():
    """Abort a hung thread-storm test with full stacks instead of waiting.

    A lock-order inversion in the caches or the worker pool deadlocks
    silently; CI would then sit at the job timeout with zero diagnostics.
    ``faulthandler.dump_traceback_later`` dumps every thread's traceback
    and kills the process once the budget elapses, so the deadlock's
    participants are visible in the test log.  Budget is generous: it
    only ever fires on an actual hang.
    """
    budget = float(os.environ.get("REPRO_DEADLOCK_BUDGET_S", "120"))
    faulthandler.dump_traceback_later(budget, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(autouse=True)
def _isolated_shared_plan_cache():
    """Reset the process-wide plan cache around every test.

    Planners default to the shared cache; without the reset, entries and
    hit/miss counters would leak across tests (and across hypothesis
    examples' garbage-collected graphs).  Tests that exercise the
    *sharing* behavior do so explicitly on their own cache instances.
    """
    from repro.plan import shared_plan_cache

    shared_plan_cache().reset()
    yield
    shared_plan_cache().reset()


# ---------------------------------------------------------------------------
# Hand-built fixture graphs (builders shared via tests/factories.py)
# ---------------------------------------------------------------------------


@pytest.fixture
def tiny_travel_graph() -> SocialContentGraph:
    """The smoke-test graph used throughout the core tests."""
    return factories.tiny_travel_graph()


@pytest.fixture
def paper_minus_graphs() -> tuple[SocialContentGraph, SocialContentGraph]:
    """G1 = {(a,b),(a,c),(b,c)} and G2 = {(a,b)} from the Def 4 example."""
    from repro.core import graph_from_edges

    return (
        graph_from_edges([("a", "b"), ("a", "c"), ("b", "c")]),
        graph_from_edges([("a", "b")]),
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies for random social content graphs
# ---------------------------------------------------------------------------

NODE_TYPES = ["user", "item", "topic", "group"]
LINK_TYPES = ["friend", "visit", "tag", "match", "belong"]

node_ids = st.integers(min_value=0, max_value=29)


@st.composite
def social_graphs(draw, max_nodes: int = 12, max_links: int = 20):
    """A random small social content graph.

    Node ids are drawn from a shared small pool so that two independently
    drawn graphs overlap — essential for exercising the set operators'
    consolidation paths.  Link ids are strings from a small pool for the
    same reason.
    """
    n_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    ids = draw(
        st.lists(node_ids, min_size=n_nodes, max_size=n_nodes, unique=True)
    )
    g = SocialContentGraph()
    for node_id in ids:
        node_type = draw(st.sampled_from(NODE_TYPES))
        rating = draw(st.integers(min_value=0, max_value=5))
        g.add_node(Node(node_id, type=node_type, rating=rating))
    n_links = draw(st.integers(min_value=0, max_value=max_links))
    for i in range(n_links):
        src = draw(st.sampled_from(ids))
        tgt = draw(st.sampled_from(ids))
        link_type = draw(st.sampled_from(LINK_TYPES))
        link_id = f"L{draw(st.integers(min_value=0, max_value=49))}"
        if g.has_link(link_id):
            continue
        weight = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        g.add_link(Link(link_id, src, tgt, type=link_type, weight=round(weight, 3)))
    return g


@st.composite
def overlapping_graph_pairs(draw):
    """Two graphs sharing id space (and agreeing on shared records).

    The set-operator definitions presume "graphs originated from the same
    social content site" — same id ⇒ same entity.  We model that by drawing
    a base graph and two (possibly overlapping) sub-selections of it, so
    shared ids always carry identical records.
    """
    base = draw(social_graphs(max_nodes=12, max_links=24))
    node_list = sorted(base.node_ids(), key=repr)
    link_list = sorted(base.link_ids(), key=repr)

    def subgraph() -> SocialContentGraph:
        keep_nodes = set(draw(st.lists(st.sampled_from(node_list), unique=True))) if node_list else set()
        g = SocialContentGraph()
        for node_id in keep_nodes:
            g.add_node(base.node(node_id))
        if link_list:
            for link_id in draw(st.lists(st.sampled_from(link_list), unique=True)):
                link = base.link(link_id)
                if link.src in keep_nodes and link.tgt in keep_nodes:
                    g.add_link(link)
        return g

    return subgraph(), subgraph()

"""First-class EXPLAIN: the user-facing view of one plan execution.

:class:`PlanExplain` is the frozen value carried on
:class:`~repro.api.request.SearchResponse` under ``explain=True``: the
rendered optimized plan, per-operator estimated vs. actual cardinalities,
the rewrites the optimizer applied, the access-path decisions the cost
model made, and whether the compiled plan came from the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.compiler import AccessDecision, StrategyDecision
from repro.plan.physical import OperatorProfile, PlanExecution


@dataclass(frozen=True)
class PlanExplain:
    """Everything a caller needs to see how their query actually ran."""

    #: rendered optimized plan, one operator per line, est vs. actual
    text: str
    #: per-operator rows in plan (pre-order) position
    operators: tuple[OperatorProfile, ...]
    #: logical rewrite rules applied, in application order
    rewrites: tuple[str, ...]
    #: scan-vs-index choices the compiler costed (semantic and social)
    decisions: tuple[AccessDecision, ...]
    #: dominant access path ("index" or "scan")
    access_path: str
    #: True when the compiled plan came from the plan cache
    cache_hit: bool
    #: the cost-based social-strategy pick, when the query left it open
    strategy_decision: StrategyDecision | None = None
    #: concrete social strategy the plan ran (None: no social stage)
    resolved_strategy: str | None = None
    #: how the plan ran: "sequential" or "pooled(<max_workers>)"
    executor: str = "sequential"
    #: True when any scan ran columnar over partition views
    sharded: bool = False
    #: result bound pushed into the ranking stage (None = full ranking)
    topk: int | None = None

    def estimation_error(self) -> float:
        """Largest |estimated − actual| / max(actual, 1) over node counts.

        A quick scalar for "how wrong was the cost model on this query" —
        the feedback loop a learning optimizer would consume.
        """
        worst = 0.0
        for profile in self.operators:
            if profile.actual is None:
                continue
            actual = max(profile.actual.nodes, 1.0)
            worst = max(worst, abs(profile.estimated.nodes - actual) / actual)
        return worst

    def __str__(self) -> str:
        return self.text


def explain_execution(execution: PlanExecution) -> PlanExplain:
    """Freeze one :class:`PlanExecution` into its EXPLAIN view."""
    return PlanExplain(
        text=execution.render(),
        operators=execution.profiles,
        rewrites=tuple(execution.plan.rewrites.applied),
        decisions=execution.plan.decisions,
        access_path=execution.plan.access_path,
        cache_hit=execution.cache_hit,
        strategy_decision=execution.plan.strategy_decision,
        resolved_strategy=execution.plan.resolved_strategy,
        executor=execution.executor,
        sharded=execution.plan.uses_sharded_scan,
        topk=execution.topk,
    )

"""Attribute handling for nodes and links.

SocialScope adopts a *flexible, schema-less* typing system (paper §4): every
node and link carries a bag of structural attributes, each of which may hold
**multiple values** (the paper's example is ``type='user, traveler'``).

This module centralises the normalisation rules:

* Every attribute value is stored internally as a ``tuple`` of scalar values
  (strings, numbers, booleans).  A scalar supplied by the caller becomes a
  1-tuple; a list/set/tuple is flattened into a tuple preserving order (sets
  are sorted for determinism).
* The paper writes multi-valued attributes as comma-separated strings
  (``type='item, city'``).  :func:`parse_values` accepts that form too.
* ``type`` is mandatory on nodes and links; helpers here keep that invariant
  out of the :class:`~repro.core.graph.Node` / ``Link`` classes themselves.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import ConditionError

#: Name of the mandatory type attribute (paper §4).
TYPE_ATTR = "type"

#: Name of the conventional score attribute written by scored selections
#: (paper Defs 1-2 attach ``v.score = S(v)``).
SCORE_ATTR = "score"

Scalar = str | int | float | bool

_SCALAR_TYPES = (str, int, float, bool)


def is_scalar(value: Any) -> bool:
    """Return True if *value* is an acceptable scalar attribute value."""
    return isinstance(value, _SCALAR_TYPES)


def parse_values(value: Any) -> tuple[Scalar, ...]:
    """Normalise *value* into the canonical tuple-of-scalars form.

    Accepted inputs:

    * a scalar (``'user'``, ``3``, ``0.5``, ``True``) -> 1-tuple;
    * a comma-separated string (``'user, traveler'``) -> one value per
      comma-separated segment, whitespace-stripped (only applied when the
      string actually contains a comma);
    * any iterable of scalars -> tuple in iteration order (sets sorted for
      determinism).

    >>> parse_values('user, traveler')
    ('user', 'traveler')
    >>> parse_values(3.5)
    (3.5,)
    >>> parse_values(['a', 'b'])
    ('a', 'b')
    """
    if isinstance(value, str):
        if "," in value:
            parts = tuple(p.strip() for p in value.split(","))
            return tuple(p for p in parts if p)
        return (value,)
    if is_scalar(value):
        return (value,)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value, key=repr))
    if isinstance(value, Iterable):
        out: list[Scalar] = []
        for item in value:
            if not is_scalar(item):
                raise ConditionError(
                    f"attribute values must be scalars, got nested {item!r}"
                )
            out.append(item)
        return tuple(out)
    raise ConditionError(f"unsupported attribute value: {value!r}")


def normalize_attrs(attrs: Mapping[str, Any] | None) -> dict[str, tuple[Scalar, ...]]:
    """Normalise a caller-supplied attribute mapping.

    Returns a fresh dict whose values are all canonical tuples.  ``None``
    values are dropped (absent attribute).
    """
    if attrs is None:
        return {}
    out: dict[str, tuple[Scalar, ...]] = {}
    for key, value in attrs.items():
        if value is None:
            continue
        if not isinstance(key, str):
            raise ConditionError(f"attribute names must be strings, got {key!r}")
        out[key] = parse_values(value)
    return out


def merge_attrs(
    first: Mapping[str, tuple[Scalar, ...]],
    second: Mapping[str, tuple[Scalar, ...]],
) -> dict[str, tuple[Scalar, ...]]:
    """Consolidate two normalised attribute dicts (paper Def 3).

    Set-theoretic operators consolidate nodes/links *with the same id*; we
    take the union of attribute names, and for attributes present on both
    sides we take the union of values, preserving first-side order and
    appending unseen second-side values.  This keeps consolidation
    commutative at the set level (same value *sets*) while staying
    deterministic.
    """
    merged = dict(first)
    for key, values in second.items():
        if key not in merged:
            merged[key] = values
            continue
        existing = merged[key]
        seen = set(existing)
        extra = tuple(v for v in values if v not in seen)
        if extra:
            merged[key] = existing + extra
    return merged


def first_value(
    attrs: Mapping[str, tuple[Scalar, ...]], name: str, default: Any = None
) -> Any:
    """Return the first value of attribute *name*, or *default* if absent."""
    values = attrs.get(name)
    if not values:
        return default
    return values[0]


def has_type(attrs: Mapping[str, tuple[Scalar, ...]], type_name: str) -> bool:
    """Return True if the ``type`` attribute contains *type_name*."""
    return type_name in attrs.get(TYPE_ATTR, ())


def text_of(attrs: Mapping[str, tuple[Scalar, ...]]) -> str:
    """Concatenate all string-valued attribute values into one text blob.

    Used by default keyword scoring (paper Defs 1-2: "how well its content
    matches the keywords in C").  Attribute *names* are excluded; only
    values participate so that e.g. a node with ``name='Denver'`` matches
    the keyword ``denver``.
    """
    parts: list[str] = []
    for values in attrs.values():
        for value in values:
            if isinstance(value, str):
                parts.append(value)
    return " ".join(parts)

"""Fault handlers: may reach DOWN into core (the hook registry)."""

from app.core import VALUE


def arm() -> int:
    return VALUE

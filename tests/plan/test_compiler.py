"""Logical→physical compilation: lowering, cost-based access paths, parity."""

from __future__ import annotations

import pytest

from factories import selectivity_graph
from repro.core import Condition, input_graph
from repro.core.stats import GraphStats
from repro.discovery import parse_query
from repro.errors import QueryError
from repro.indexing import SemanticItemIndex
from repro.plan import (
    CostModel,
    IndexBinding,
    IndexKeywordScanOp,
    QueryPlanner,
    ScanOp,
    compile_plan,
)


@pytest.fixture()
def bound_planner():
    graph = selectivity_graph()
    index = SemanticItemIndex(graph)
    planner = QueryPlanner(graph)
    planner.attach_index(
        "item", provider=lambda: index, scorer_provider=lambda: index.scorer
    )
    return planner, index


def keyword_expr(text: str, scorer) -> object:
    return input_graph("G").select_nodes(
        Condition({"type": "item"}, keywords=text), scorer
    )


class TestAccessPathChoice:
    def test_rare_keyword_compiles_to_index(self, bound_planner):
        planner, index = bound_planner
        plan, _ = planner.compile(keyword_expr("rare", index.scorer))
        assert isinstance(plan.root, IndexKeywordScanOp)
        (decision,) = plan.decisions
        assert decision.chosen == "index"
        assert decision.index_cost < decision.scan_cost

    def test_common_keyword_compiles_to_scan(self, bound_planner):
        planner, index = bound_planner
        plan, _ = planner.compile(keyword_expr("common", index.scorer))
        assert isinstance(plan.root, ScanOp)
        (decision,) = plan.decisions
        assert decision.chosen == "scan"
        assert decision.index_cost >= decision.scan_cost

    def test_stats_drive_the_switch(self, bound_planner):
        # Same expression, different statistics → different physical plan:
        # the demonstration that the choice is GraphStats-driven, not
        # syntax-driven.
        planner, index = bound_planner
        expr = keyword_expr("common", index.scorer)
        sparse = GraphStats.of(selectivity_graph(), with_terms=True)
        sparse.term_doc_freq["common"] = 1  # pretend the term is rare
        chosen_sparse = compile_plan(
            expr, sparse, index=planner.index_binding
        ).root
        chosen_dense = compile_plan(
            expr, planner.stats, index=planner.index_binding
        ).root
        assert isinstance(chosen_sparse, IndexKeywordScanOp)
        assert isinstance(chosen_dense, ScanOp)

    def test_forced_modes_override_cost(self, bound_planner):
        planner, index = bound_planner
        forced_index, _ = planner.compile(
            keyword_expr("common", index.scorer), access="index"
        )
        forced_scan, _ = planner.compile(
            keyword_expr("rare", index.scorer), access="scan"
        )
        assert isinstance(forced_index.root, IndexKeywordScanOp)
        assert isinstance(forced_scan.root, ScanOp)

    def test_unknown_access_mode_rejected(self, bound_planner):
        planner, index = bound_planner
        with pytest.raises(QueryError):
            planner.compile(keyword_expr("rare", index.scorer), access="warp")

    def test_crossover_threshold_is_the_cost_ratio(self):
        model = CostModel(scan_cost_per_node=1.0, index_cost_per_posting=2.0)
        assert model.index_cost(49) < model.scan_cost(100)
        assert model.index_cost(51) > model.scan_cost(100)


class TestEligibilityBoundaries:
    """Ineligible selections must scan even when the index is forced."""

    def cases(self, index):
        extra_structural = input_graph("G").select_nodes(
            Condition({"type": "item", "rating__ge": 2}, keywords="rare"),
            index.scorer,
        )
        wrong_type = input_graph("G").select_nodes(
            Condition({"type": "user"}, keywords="rare"), index.scorer
        )
        no_keywords = input_graph("G").select_nodes(
            Condition({"type": "item"}), index.scorer
        )
        derived_input = input_graph("G").select_links({"type": "x"}).select_nodes(
            Condition({"type": "item"}, keywords="rare"), index.scorer
        )
        foreign_scorer = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="rare"),
            lambda element, keywords: 1.0,
        )
        default_scorer = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="rare")
        )
        return [extra_structural, wrong_type, no_keywords, derived_input,
                foreign_scorer, default_scorer]

    def test_everything_ineligible_scans(self, bound_planner):
        planner, index = bound_planner
        for expr in self.cases(index):
            plan, _ = planner.compile(expr, access="index")
            assert plan.uses_index is False, expr.render()


class TestIndexScanParity:
    def test_index_and_scan_results_are_graph_equal(self, bound_planner):
        planner, index = bound_planner
        for text in ("rare", "common", "rare common", "gem everywhere"):
            expr = keyword_expr(text, index.scorer)
            indexed = planner.execute(expr, access="index")
            scanned = planner.execute(expr, access="scan")
            assert indexed.used_index and not scanned.used_index
            assert indexed.result.same_as(scanned.result)
            assert indexed.scores() == scanned.scores()

    def test_missing_provider_degrades_to_scan_compute(self, bound_planner):
        planner, index = bound_planner
        expr = keyword_expr("rare", index.scorer)
        plan, _ = planner.compile(expr, access="index")
        scanned = planner.execute(expr, access="scan")
        execution = plan.execute({"G": planner.graph}, index_provider=lambda: None)
        assert execution.result.same_as(scanned.result)

    def test_discoverer_semantic_stage_parity(self, bound_planner):
        # The serving entry point: semantic_candidates through the planner
        # equals the hand-written SemanticRelevance scan, on every path.
        from repro.discovery.relevance import SemanticRelevance

        planner, index = bound_planner
        semantic = SemanticRelevance(planner.graph, scorer=index.scorer)
        for text in ("rare", "common", ""):
            query = parse_query(1, text)
            reference = semantic.candidates(query).scores
            for access in ("auto", "index", "scan"):
                execution = planner.semantic_candidates(
                    query, scorer=index.scorer if query.keywords else None,
                    access=access,
                )
                assert execution.scores() == reference


class TestProfiles:
    def test_every_operator_reports_estimated_and_actual(self, bound_planner):
        planner, index = bound_planner
        execution = planner.execute(keyword_expr("rare", index.scorer))
        assert len(execution.profiles) == 2  # select over input
        for profile in execution.profiles:
            assert profile.estimated is not None
            assert profile.actual is not None
        select, base = execution.profiles
        assert base.actual.nodes == planner.graph.num_nodes
        assert select.actual.nodes == len(execution.scores())

    def test_render_mentions_access_and_cardinalities(self, bound_planner):
        planner, index = bound_planner
        text = planner.execute(keyword_expr("rare", index.scorer)).render()
        assert "input(G)" in text
        assert "est" in text and "act" in text
        assert "access=index" in text

"""Network-aware scoring for keyword search (paper §6.2).

    "We first define the score of an item i for user u and a keyword kj,
    score_kj(i, u) = f(network(u) ∩ taggers(i, kj)), where f is a monotone
    function.  We further define the overall score of an item i for a user
    query Qu as score(i, u) = g(score_k1(i, u), ..., score_kn(i, u)) ...
    we will use f = count and g = sum, for ease of exposition."

:class:`TaggingData` extracts the ``network(u)``, ``items(u)`` and
``taggers(i, k)`` accessors from a social content graph once, so scoring and
index construction run off plain dictionaries rather than repeated graph
scans.  Arbitrary monotone f and g are supported; count/sum are the
defaults as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core import Id, SocialContentGraph

#: f: a monotone function of the endorsing-neighbour set.
ScoreF = Callable[[set], float]
#: g: a monotone aggregate of per-keyword scores.
ScoreG = Callable[[Sequence[float]], float]


def f_count(endorsers: set) -> float:
    """The paper's default f = count."""
    return float(len(endorsers))


def g_sum(scores: Sequence[float]) -> float:
    """The paper's default g = sum."""
    return float(sum(scores))


@dataclass
class TaggingData:
    """Materialised accessors over a tagging site graph.

    Attributes mirror the paper's notation:

    * ``network[u]`` — users connected to u (either direction);
    * ``items[u]`` — items tagged by u;
    * ``taggers[(i, k)]`` — users who tagged item i with tag k;
    * ``tag_vocab`` — all tags observed.
    """

    users: list[Id] = field(default_factory=list)
    item_ids: list[Id] = field(default_factory=list)
    tag_vocab: list[str] = field(default_factory=list)
    network: dict[Id, set] = field(default_factory=dict)
    items: dict[Id, set] = field(default_factory=dict)
    taggers: dict[tuple[Id, str], set] = field(default_factory=dict)
    #: items that carry tag k at all (candidate lists per keyword)
    items_with_tag: dict[str, set] = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: SocialContentGraph) -> "TaggingData":
        """One-pass extraction from a social content graph."""
        data = cls()
        users: set[Id] = set()
        items: set[Id] = set()
        tags: set[str] = set()
        for node in graph.nodes():
            if node.has_type("user"):
                users.add(node.id)
                data.network.setdefault(node.id, set())
                data.items.setdefault(node.id, set())
            elif node.has_type("item"):
                items.add(node.id)
        for link in graph.links():
            if link.has_type("connect"):
                data.network.setdefault(link.src, set()).add(link.tgt)
                data.network.setdefault(link.tgt, set()).add(link.src)
            elif link.has_type("tag"):
                data.items.setdefault(link.src, set()).add(link.tgt)
                for value in link.values("tags"):
                    tag = str(value)
                    tags.add(tag)
                    data.taggers.setdefault((link.tgt, tag), set()).add(link.src)
                    data.items_with_tag.setdefault(tag, set()).add(link.tgt)
        data.users = sorted(users, key=repr)
        data.item_ids = sorted(items, key=repr)
        data.tag_vocab = sorted(tags)
        return data

    # -- scoring ------------------------------------------------------------

    def score_tag(
        self, item: Id, user: Id, tag: str, f: ScoreF = f_count
    ) -> float:
        """score_k(i, u) = f(network(u) ∩ taggers(i, k))."""
        taggers = self.taggers.get((item, tag))
        if not taggers:
            return 0.0
        return f(self.network.get(user, set()) & taggers)

    def score(
        self,
        item: Id,
        user: Id,
        keywords: Iterable[str],
        f: ScoreF = f_count,
        g: ScoreG = g_sum,
    ) -> float:
        """score(i, u) = g over the per-keyword scores."""
        return g([self.score_tag(item, user, k, f) for k in keywords])

    def brute_force_topk(
        self,
        user: Id,
        keywords: Sequence[str],
        k: int,
        f: ScoreF = f_count,
        g: ScoreG = g_sum,
    ) -> list[tuple[Id, float]]:
        """Exact top-k by scoring every candidate item (the reference).

        Candidates are items carrying at least one query keyword; ties are
        broken by item id for determinism.  Zero-score items are excluded
        (an item none of your network tagged is not a result).
        """
        candidates: set[Id] = set()
        for keyword in keywords:
            candidates |= self.items_with_tag.get(keyword, set())
        scored = []
        for item in candidates:
            s = self.score(item, user, keywords, f, g)
            if s > 0:
                scored.append((item, s))
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k]

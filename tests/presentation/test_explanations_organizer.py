"""Tests for explanations, hierarchy, and the Information Organizer."""

from __future__ import annotations

import pytest

from repro.discovery import InformationDiscoverer
from repro.errors import PresentationError
from repro.presentation import (
    COLLABORATIVE,
    InformationOrganizer,
    OrganizerConfig,
    explain_collaborative,
    explain_content_based,
    explain_group,
    item_similarity,
    user_similarity,
)
from repro.workloads import ALEXIA, JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def john_msg(travel):
    return InformationDiscoverer(travel.graph).discover(
        JOHN, "Denver attractions"
    )


class TestSimilarities:
    def test_user_similarity_zero_for_unrelated(self, travel):
        # Two users with disjoint activity sets.
        assert user_similarity(travel.graph, JOHN, "grp:soccer-team") == 0.0

    def test_item_similarity_from_taggers(self, tiny_travel_graph):
        # d1 {101,102,103,104} vs d3 {101,102,104} -> 3/4.
        assert item_similarity(tiny_travel_graph, "d1", "d3") == pytest.approx(0.75)

    def test_derived_link_preferred(self, tiny_travel_graph):
        from repro.analysis import item_similarity_links
        from repro.core import union

        enriched = union(
            tiny_travel_graph,
            item_similarity_links(tiny_travel_graph, threshold=0.7),
        )
        assert item_similarity(enriched, "d1", "d3") == pytest.approx(0.75)


class TestItemExplanations:
    def test_cf_explanation_formula(self, tiny_travel_graph):
        # Expl(u,i) = {u' | UserSim(u,u')>0 & i ∈ Items(u')}
        explanation = explain_collaborative(tiny_travel_graph, 101, "d2")
        # d2 was visited by Ann(102) and Bob(103); both share items with John.
        assert set(explanation.supporters) == {102, 103}

    def test_cf_weights_are_sim_times_rating(self, tiny_travel_graph):
        explanation = explain_collaborative(tiny_travel_graph, 101, "d2")
        # Ann: Jaccard(101,102)=2/3, rating default 1.0
        assert explanation.supporters[102] == pytest.approx(2 / 3, abs=1e-4)

    def test_friends_only_aggregate_text(self, tiny_travel_graph):
        explanation = explain_collaborative(
            tiny_travel_graph, 101, "d2", friends_only=True
        )
        # John's friends: Ann, Bob; both endorsed d2 -> 100%.
        assert "100% of your friends" in explanation.aggregate_text

    def test_content_based_explanation(self, tiny_travel_graph):
        explanation = explain_content_based(tiny_travel_graph, 101, "d2")
        # John's items d1, d3 both share taggers with d2.
        assert set(explanation.supporters) == {"d1", "d3"}
        assert "similar to" in explanation.aggregate_text

    def test_top_supporters(self, tiny_travel_graph):
        explanation = explain_collaborative(tiny_travel_graph, 101, "d2")
        top = explanation.top(1)
        assert len(top) == 1 and top[0][0] == 102  # Ann is more similar


class TestGroupExplanations:
    def test_aggregates_over_items(self, tiny_travel_graph):
        result = explain_group(
            tiny_travel_graph, 101, "test group", ["d2", "d4"],
            kind=COLLABORATIVE,
        )
        assert result.coverage == 1.0
        assert result.top_supporters
        assert "strongest endorser" in result.text

    def test_empty_group(self, tiny_travel_graph):
        result = explain_group(tiny_travel_graph, 101, "empty", [])
        assert result.coverage == 0.0


class TestOrganizer:
    def test_page_structure(self, travel, john_msg):
        organizer = InformationOrganizer(travel.graph)
        page = organizer.organize(john_msg)
        assert page.groups
        assert page.chosen_dimension in page.dimension_scores
        assert page.flat
        displayed = set(page.all_items)
        assert displayed == set(john_msg.item_ids)

    def test_entries_have_explanations(self, travel, john_msg):
        organizer = InformationOrganizer(travel.graph)
        page = organizer.organize(john_msg)
        some_entries = [e for g in page.groups for e in g.entries][:5]
        assert all(e.explanation is not None for e in some_entries)

    def test_group_explanations_attached(self, travel, john_msg):
        page = InformationOrganizer(travel.graph).organize(john_msg)
        assert all(g.explanation is not None for g in page.groups)

    def test_empty_msg_yields_empty_page(self, travel):
        msg = InformationDiscoverer(travel.graph).discover(
            JOHN, "zzz qqq nonexistent"
        )
        page = InformationOrganizer(travel.graph).organize(msg)
        assert page.groups == [] and page.flat == []

    def test_alexia_page_groups_by_endorser(self, travel):
        msg = InformationDiscoverer(travel.graph).discover(ALEXIA, "history")
        page = InformationOrganizer(travel.graph).organize(msg)
        assert page.chosen_dimension == "endorser"
        labels = {g.label for g in page.groups}
        assert any("history class" in label for label in labels)

    def test_custom_facets(self, travel, john_msg):
        config = OrganizerConfig(structural_facets=("city",))
        organizer = InformationOrganizer(travel.graph, config)
        page = organizer.organize(john_msg)
        assert "structural:category" not in page.dimension_scores


class TestHierarchy:
    def test_zoom_in_and_out(self, travel, john_msg):
        organizer = InformationOrganizer(travel.graph)
        presenter = organizer.hierarchy(john_msg)
        assert presenter.depth == 1
        root_groups = presenter.groups
        assert root_groups
        target = max(root_groups, key=lambda g: g.size)
        frame = presenter.zoom_in(target.label)
        assert presenter.depth == 2
        zoomed_items = {i for g in frame.grouping.groups for i in g.items}
        assert zoomed_items == set(target.items)
        # the sub-grouping uses a different base dimension than the root
        root_dim = root_groups[0].dimension.split(":")[0]
        sub_dim = frame.grouping.dimension.split(":")[0]
        assert sub_dim != root_dim
        presenter.zoom_out()
        assert presenter.depth == 1

    def test_zoom_unknown_group(self, travel, john_msg):
        presenter = InformationOrganizer(travel.graph).hierarchy(john_msg)
        with pytest.raises(PresentationError):
            presenter.zoom_in("no such group")

    def test_zoom_out_at_root_is_noop(self, travel, john_msg):
        presenter = InformationOrganizer(travel.graph).hierarchy(john_msg)
        presenter.zoom_out()
        assert presenter.depth == 1

    def test_breadcrumbs(self, travel, john_msg):
        presenter = InformationOrganizer(travel.graph).hierarchy(john_msg)
        target = presenter.groups[0]
        presenter.zoom_in(target.label)
        assert presenter.breadcrumbs == ["all results", target.label]

"""The Content Management layer (paper §3 and §6).

Physical storage (:mod:`repro.management.storage`), the Data Manager,
OpenSocial-style remote-site simulation and integration, the three
content-management models of Table 2, and activity-driven refresh
scheduling.
"""

from repro.management.activity import (
    ActivityCategory,
    ActivityManager,
    UserActivityProfile,
)
from repro.management.datamanager import DataManager
from repro.management.integrator import ContentIntegrator, IntegrationReport
from repro.management.persist import (
    RecoveredSite,
    read_manifest,
    recover_data_manager,
    snapshot_graph,
    write_snapshot,
)
from repro.management.models import (
    ModelOutcome,
    Scenario,
    run_all_models,
    run_closed_cartel,
    run_decentralized,
    run_open_cartel,
)
from repro.management.remote import (
    ALL_SCOPES,
    Activity,
    CallLog,
    Profile,
    RemoteSocialSite,
    SCOPE_ACTIVITIES,
    SCOPE_CONNECTIONS,
    SCOPE_PROFILE,
    SCOPE_WRITE,
)
from repro.management.storage import (
    DERIVED,
    GraphStore,
    LOCAL,
    PartitionedGraphStore,
    StoreStats,
    shard_of,
)
from repro.management.sync import SyncMetrics, SyncScheduler, uniform_profiles
from repro.management.wal import (
    WalTail,
    WalWriter,
    read_wal,
    truncate_torn_tail,
)

__all__ = [
    "GraphStore", "PartitionedGraphStore", "StoreStats", "shard_of",
    "LOCAL", "DERIVED",
    "DataManager",
    "RemoteSocialSite", "Profile", "Activity", "CallLog",
    "SCOPE_PROFILE", "SCOPE_CONNECTIONS", "SCOPE_ACTIVITIES", "SCOPE_WRITE",
    "ALL_SCOPES",
    "ContentIntegrator", "IntegrationReport",
    "Scenario", "ModelOutcome", "run_decentralized", "run_closed_cartel",
    "run_open_cartel", "run_all_models",
    "ActivityManager", "ActivityCategory", "UserActivityProfile",
    "SyncScheduler", "SyncMetrics", "uniform_profiles",
    "WalWriter", "WalTail", "read_wal", "truncate_torn_tail",
    "RecoveredSite", "write_snapshot", "recover_data_manager",
    "read_manifest", "snapshot_graph",
]

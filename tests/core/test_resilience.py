"""CircuitBreaker: state machine, probes, and the 8-thread lockset storm.

The breaker is the shared substrate of the degradation ladder
(processes→threads→sequential, attr-index→scan), so its transitions are
pinned here with a hand-driven clock — no sleeps, no flakiness — and its
locking discipline is checked by the dynamic lockset detector under a
genuine trip/probe/recover thread storm.
"""

from __future__ import annotations

import threading

import pytest

import repro.core.resilience as resilience_module
from repro.core.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from tools.archcheck.racetrack import RaceTracker, TracedLock


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        failure_threshold=3, window=8, failure_rate=0.5, min_calls=4,
        cooldown_s=1.0, probe_budget=1, probe_successes=1, clock=clock,
    )
    defaults.update(kwargs)
    return CircuitBreaker("test", **defaults), clock


class TestTrip:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.stats().trips == 1

    def test_window_failure_rate_trips(self):
        # alternating outcomes never hit 3 consecutive, but the window
        # rate crosses 0.5 once min_calls have landed
        breaker, _ = make_breaker(
            failure_threshold=10, window=8, failure_rate=0.5, min_calls=4
        )
        for _ in range(2):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED  # rate 0.5 but judged on failures
        breaker.record_failure()        # window rate now 3/5
        assert breaker.state == OPEN

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = make_breaker(failure_threshold=3, min_calls=100)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_force_open_trips_immediately(self):
        breaker, _ = make_breaker()
        breaker.force_open()
        assert breaker.state == OPEN
        assert not breaker.allow()


class TestRecovery:
    def test_cooldown_promotes_to_half_open(self):
        breaker, clock = make_breaker(cooldown_s=1.0)
        breaker.force_open()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert breaker.state == OPEN
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN

    def test_probe_budget_is_metered(self):
        breaker, clock = make_breaker(probe_budget=1)
        breaker.force_open()
        clock.advance(1.1)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # budget spent

    def test_probe_success_closes(self):
        breaker, clock = make_breaker()
        breaker.force_open()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        stats = breaker.stats()
        assert stats.recoveries == 1 and stats.probes == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make_breaker()
        breaker.force_open()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert not breaker.allow()   # new cooldown, not the old one
        clock.advance(0.6)
        assert breaker.allow()

    def test_stalled_probe_budget_is_reclaimed(self):
        # a granted probe whose caller never reports back must not wedge
        # the breaker half-open forever
        breaker, clock = make_breaker(probe_budget=1)
        breaker.force_open()
        clock.advance(1.1)
        assert breaker.allow()        # probe granted, never reported
        assert not breaker.allow()
        clock.advance(1.1)
        assert breaker.allow()        # budget reclaimed after a cooldown

    def test_reset_recloses_and_clears_history(self):
        breaker, _ = make_breaker(failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == CLOSED  # old window did not survive reset


class TestObservers:
    def test_transitions_fire_the_callback_in_order(self):
        events: list[tuple[str, str, str]] = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            "observed", failure_threshold=1, cooldown_s=1.0,
            clock=clock, on_transition=lambda *e: events.append(e),
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert events == [
            ("observed", CLOSED, OPEN),
            ("observed", OPEN, HALF_OPEN),
            ("observed", HALF_OPEN, CLOSED),
        ]

    def test_callback_may_reenter_the_breaker(self):
        # fired outside the lock: an observer reading stats() must not
        # deadlock
        seen: list[str] = []
        breaker = CircuitBreaker(
            "reentrant", failure_threshold=1,
            on_transition=lambda name, old, new: seen.append(
                breaker.stats().state
            ),
        )
        breaker.record_failure()
        assert seen == [OPEN]

    def test_stats_snapshot_counts(self):
        breaker, _ = make_breaker(failure_threshold=2, min_calls=100)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        stats = breaker.stats()
        assert stats.state == OPEN
        assert stats.successes == 1
        assert stats.failures == 2
        assert stats.trips == 1


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker("bad", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("bad", cooldown_s=0.0)


class TestLocksetStorm:
    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_trip_probe_recover_storm_is_race_free(self):
        """8 threads hammer every mutator through full state cycles."""
        tracker = RaceTracker()
        with tracker.trace(resilience_module):
            breaker = CircuitBreaker(
                "storm", failure_threshold=2, window=8, min_calls=4,
                cooldown_s=0.001, probe_budget=2, probe_successes=2,
            )
            assert isinstance(breaker._lock, TracedLock)
            tracker.monitor(breaker)
            errors: list[BaseException] = []

            def worker(seed: int) -> None:
                try:
                    for i in range(400):
                        if breaker.allow():
                            # deterministic per-thread outcome pattern:
                            # enough failures to trip, enough successes
                            # to recover, repeatedly
                            if (seed + i) % 3 == 0:
                                breaker.record_failure()
                            else:
                                breaker.record_success()
                        if i % 97 == 0:
                            breaker.force_open()
                        if i % 131 == 0:
                            breaker.reset()
                        if i % 53 == 0:
                            breaker.stats()
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(seed,))
                for seed in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        tracker.assert_race_free()
        # the storm must actually have contended on breaker internals
        assert any(
            state == "shared-modified"
            for state in tracker.field_states().values()
        ), tracker.field_states()
        # and must have exercised real transitions, not just one state
        stats = breaker.stats()
        assert stats.trips > 0 and stats.probes > 0

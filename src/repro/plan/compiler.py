"""Logical → physical compilation with cost-based access-path selection.

``compile_plan`` is the single door between the algebra and execution:

1. the logical plan is rewritten by the rule optimizer
   (:func:`repro.core.optimizer.optimize` — fusion, pushdown, Lemma 1,
   idempotence, empty-folding);
2. each logical node is lowered to a physical operator, preserving DAG
   sharing;
3. where an alternative access path exists — keyword selection over the
   indexed item population — the cost model picks scan or index from
   :class:`~repro.core.stats.GraphStats` estimates (§6's access-path
   trade-off made a query-time, cost-driven choice).

The cost model is work-based, not output-based: both paths produce the
same cardinality, but a scan *tests* every node of the input (predicate
evaluation + tokenisation), while the index touches only the posting
entries of matching items — at a higher per-element price (hash probes,
score recomputation).  The crossover is therefore a selectivity threshold:
rare terms go to the index, terms matching most of the population stay on
the sequential scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.conditions import AttrEquals, Condition, HasType
from repro.core.expr import (
    CombineScoresE,
    ConnectionBasisE,
    Expr,
    InputE,
    LiteralE,
    SelectNodesE,
    SocialScoreE,
    plan_key,
)
from repro.core.expr import SelectLinksE
from repro.core.optimizer import DEFAULT_RULES, Rule, optimize
from repro.core.social import COMPILED_STRATEGIES, choose_strategy
from repro.core.stats import CardinalityFeedback, GraphStats
from repro.errors import QueryError
from repro.plan.physical import (
    ATTR_INDEX,
    INDEX,
    NETWORK_CLUSTERED,
    NETWORK_EXACT,
    SCAN,
    SHARDED,
    AttrIndexScanOp,
    EndorsementMergeOp,
    FusedSocialCombineOp,
    GroupedAggregationOp,
    IndexKeywordScanOp,
    InputOp,
    LiteralOp,
    PhysicalOp,
    PhysicalPlan,
    ScanOp,
    SemiJoinProbeOp,
    ShardedLinkScanOp,
    ShardedScanOp,
)

#: Valid access-path preferences for compilation.
ACCESS_MODES = ("auto", INDEX, SCAN)


@dataclass(frozen=True)
class CostModel:
    """Per-element work constants for the scan-vs-index choice.

    ``scan_cost_per_node`` prices one sequential predicate test (attribute
    lookups plus text tokenisation); ``index_cost_per_posting`` prices one
    posting-list touch (variant probes, idf lookups, score assembly).
    Postings are costlier per element, so the index wins exactly when the
    expected match fraction is below ``scan/posting`` (½ by default) — the
    classic crossover where random access loses to a sequential pass.
    """

    scan_cost_per_node: float = 1.0
    index_cost_per_posting: float = 2.0
    #: price of testing one adjacency link during the social-stage
    #: semi-join probe (the scan form of friend endorsement)
    probe_cost_per_link: float = 1.0
    #: price of one §6.2 endorsement-posting touch (exact lists)
    endorsement_posting_cost: float = 1.5
    #: surcharge per posting for the clustered variant's exact rescoring
    #: (Eq 1's "having to compute exact scores at query time")
    clustered_recompute_cost: float = 2.0
    #: exact-index entry budget: past this estimated size the compiler
    #: prefers the cluster-compressed lists (the paper's 1 TB concern)
    network_entry_budget: float = 100_000.0
    #: minimum estimated input population before a base-graph scan is
    #: worth scattering across store partitions (per-shard task setup and
    #: the union pass are pure overhead below it); with partitions the
    #: same threshold gates the monolithic *columnar* scan — cutting and
    #: caching columns for a tiny population costs more than row tests
    shard_scan_min_nodes: float = 512.0
    #: minimum estimated base-graph link population before σL lowers to
    #: the scattered (columnar) link scan
    shard_link_min_links: float = 512.0
    #: price of testing one attribute-posting candidate (hash gathers
    #: plus the residual row test) — pricier per element than the
    #: sequential scan's predicate test, so postings win exactly when
    #: the indexed value is selective
    attr_posting_cost: float = 1.5
    #: price of one row under the *vectorized* columnar mask, relative
    #: to ``scan_cost_per_node``: evaluating a predicate once per
    #: distinct value and broadcasting over the codes is an order of
    #: magnitude cheaper than a per-row test, so the attribute-posting
    #: path must be far more selective than the old scan crossover to
    #: beat a columnar scan
    columnar_row_cost: float = 0.05
    #: master switch for the columnar scan family (benchmarks pin it off
    #: to measure the legacy row-at-a-time executor)
    columnar: bool = True
    #: minimum estimated plan cost (summed operator cardinalities) before
    #: execution moves onto the worker pool — pool handoff costs real
    #: microseconds, so trivial plans must stay sequential
    parallel_min_cost: float = 5_000.0
    #: minimum estimated rows × shards before ``parallelism="auto"``
    #: escalates from the thread pool to the process backend: shipping a
    #: program and unpickling a position set per shard costs far more
    #: than a thread handoff, so only genuinely large scatters should
    #: leave the process (explicit ``"processes"`` skips this floor)
    process_min_rows: float = 50_000.0

    def scan_cost(self, input_nodes: float) -> float:
        return input_nodes * self.scan_cost_per_node

    def index_cost(self, expected_matches: float) -> float:
        return expected_matches * self.index_cost_per_posting

    def attr_index_cost(self, expected_postings: float) -> float:
        """Work of testing one attribute-value posting list's candidates."""
        return expected_postings * self.attr_posting_cost

    def social_probe_cost(self, basis_size: float, act_degree: float) -> float:
        """Work of the adjacency probe: every act link of every member."""
        return self.probe_cost_per_link * basis_size * max(act_degree, 1.0)

    def endorsement_index_cost(self, postings: float, clustered: bool) -> float:
        """Work of merging one user's endorsement posting list."""
        per_posting = self.endorsement_posting_cost
        if clustered:
            per_posting += self.clustered_recompute_cost
        return postings * per_posting


@dataclass(frozen=True)
class IndexBinding:
    """An attachable semantic index: what the compiler needs to know.

    ``provider`` materialises (lazily) the
    :class:`~repro.indexing.semantic.SemanticItemIndex`;
    ``scorer_provider`` exposes the scorer the index shares with the scan
    path, so compile-time eligibility can verify score parity without
    forcing the index build.
    """

    item_type: str
    provider: Callable[[], Any]
    scorer_provider: Callable[[], Any] | None = None


@dataclass(frozen=True)
class AccessDecision:
    """One recorded scan-vs-index choice, for EXPLAIN and tests."""

    op: str
    chosen: str
    scan_cost: float
    index_cost: float | None
    reason: str


@dataclass(frozen=True)
class StrategyDecision:
    """The cost-based social-strategy pick when the request left it open."""

    op: str
    chosen: str
    reason: str
    considered: tuple[str, ...] = COMPILED_STRATEGIES


def _scopes_item_population(condition: Condition, item_type: str) -> bool:
    """True when the structural part is exactly ``type = item_type``.

    That is the population the semantic index covers; any further
    structural predicate (or a different type scope) must take the scan
    path to keep index and scan results identical by construction.
    """
    if len(condition.predicates) != 1:
        return False
    predicate = condition.predicates[0]
    if isinstance(predicate, HasType):
        return predicate.type_name == item_type
    if isinstance(predicate, AttrEquals):
        return predicate.att == "type" and tuple(predicate.required) == (item_type,)
    return False


def _index_eligible(node: Expr, index: IndexBinding | None) -> bool:
    """Can this logical node be served from the semantic index at all?"""
    if index is None or not isinstance(node, SelectNodesE):
        return False
    if not isinstance(node.child, InputE):
        return False  # the index covers the base graph, not derived ones
    if not node.condition.has_keywords:
        return False
    if not _scopes_item_population(node.condition, index.item_type):
        return False
    # Score parity: the index computes the shared tf-idf, so the scan form
    # must use exactly that scorer.  A None scorer would fall back to the
    # library default S (coverage × log-tf), and any custom S is opaque —
    # both disqualify, or the access path would change the scores.
    shared = index.scorer_provider() if index.scorer_provider is not None else None
    return node.scorer is not None and node.scorer is shared


def _mark_memoisable(node: Expr, physical: PhysicalOp) -> None:
    """Tag deterministic base-graph stages for the sub-plan result memo.

    A stage qualifies when its result is a pure function of the base
    input graph and its own parameters — then one graph generation can
    serve every execution from the first result.  Today that is
    connection selection (small, per-user, re-derived on every query of
    the same user) and base-graph node selection (the σN candidate stage,
    identical across repeats of a query shape; all three physical forms
    produce the same records by the parity contract, but the form tag
    still keys separately so access-path experiments measure real work).
    Opaque scorer parameters key by identity inside ``plan_key``, so two
    scorers can never share an entry.
    """
    if not isinstance(node, (ConnectionBasisE, SelectNodesE)):
        return
    if not isinstance(node.child, InputE):  # type: ignore[attr-defined]
        return
    if isinstance(node, ConnectionBasisE):
        physical.memo_key = ("basis", plan_key(node))
    else:
        physical.memo_key = (
            "select", physical.access_path or SCAN, plan_key(node)
        )


def _indexed_attr_candidates(
    condition: Condition, indexed_attrs: frozenset[str]
) -> list[tuple[str, Any]]:
    """(attribute, value) pairs the condition pins on indexed attributes.

    Eligible pairs come from conjunctive equality predicates over
    attributes the planner keeps postings for: the posting list of any
    required value is a superset of the satisfying set (the paper's
    superset-equality semantics), so the selection can be served by
    residual-testing just those candidates.  ``type`` is excluded — the
    partition-local type buckets already cover it — and ``id`` reads
    element identity, not an attribute column.
    """
    pairs: list[tuple[str, Any]] = []
    for predicate in condition.predicates:
        if not isinstance(predicate, AttrEquals):
            continue
        if predicate.att in ("type", "id") or predicate.att not in indexed_attrs:
            continue
        for value in predicate.required:
            pairs.append((predicate.att, value))
    return pairs


def _pruning_type(condition: Condition) -> tuple[Any | None, bool]:
    """(type value the condition's conjuncts pin, predicate-exact?).

    Safe to prune on because top-level predicates are conjunctive:
    ``HasType(t)`` means *t* is among the element's types, and the
    paper's type-equality superset semantics require every listed value
    — so any single required value bounds the satisfying set.  *exact*
    is True when the matched predicate demands nothing beyond membership
    of that one value — then a partition's type bucket doesn't just
    bound the predicate, it *is* the predicate.  Nested disjunctions
    arrive as one opaque predicate object and never match here.
    """
    for predicate in condition.predicates:
        if isinstance(predicate, HasType):
            return predicate.type_name, True
        if isinstance(predicate, AttrEquals) and predicate.att == "type" \
                and predicate.required:
            return predicate.required[0], len(predicate.required) == 1
    return None, False


def _parent_counts(root: Expr) -> dict[int, int]:
    """Edges into each node of the (possibly DAG-shaped) logical plan.

    Fusion needs this: a social stage may only be absorbed into its
    combination when the combination is its *sole* consumer — a shared
    sub-plan must stay a standalone operator so every parent reads the
    same memoised result.
    """
    counts: dict[int, int] = {}
    seen: set[int] = set()

    def walk(node: Expr) -> None:
        for child in node.children():
            counts[id(child)] = counts.get(id(child), 0) + 1
            if id(child) not in seen:
                seen.add(id(child))
                walk(child)

    walk(root)
    return counts


def compile_plan(
    expr: Expr,
    stats: GraphStats,
    index: IndexBinding | None = None,
    access: str = "auto",
    cost_model: CostModel | None = None,
    rules: tuple[Rule, ...] = DEFAULT_RULES,
    key: Any = None,
    shards: int = 1,
    indexed_attrs: frozenset[str] = frozenset(),
) -> PhysicalPlan:
    """Compile a logical plan into an executable :class:`PhysicalPlan`.

    *access* constrains the access-path choice: ``"auto"`` lets the cost
    model decide, ``"index"`` forces the index wherever eligible, and
    ``"scan"`` refuses it everywhere.  Forcing the index on an ineligible
    selection silently degrades to scan — eligibility is a correctness
    boundary, not a preference.

    *key* lets a caller that already computed ``plan_key(expr)`` (the plan
    cache's lookup) pass it in instead of paying a second tree walk.

    *shards* declares how many partitioned views the executing planner
    serves of the base graph: sufficiently large base-graph node and link
    scans lower to the columnar scatter forms (:class:`ShardedScanOp`,
    :class:`ShardedLinkScanOp`) — ``shards == 1`` still lowers to the
    monolithic columnar scan, which evaluates the condition over one
    view's columns instead of row records.

    *indexed_attrs* names the attributes the planner keeps value postings
    for (the Data Manager's registered attribute indexes): conjunctive
    equality selections on them may lower to :class:`AttrIndexScanOp`
    when the cost model expects the posting list to beat the scan.
    """
    if access not in ACCESS_MODES:
        raise QueryError(f"unknown access mode {access!r}; have {ACCESS_MODES}")
    model = cost_model if cost_model is not None else CostModel()
    optimized, report = optimize(expr, rules)
    decisions: list[AccessDecision] = []
    strategy_state: dict[str, Any] = {"decision": None, "resolved": None}
    memo: dict[int, PhysicalOp] = {}
    parents = _parent_counts(optimized)

    def attr_index_form(
        node: SelectNodesE, children: tuple[PhysicalOp, ...],
        input_nodes: float, fallback_cost: float,
    ) -> PhysicalOp | None:
        """The attribute-posting form, when eligible and expected to win.

        *fallback_cost* is the price of the best scan-family alternative
        (full, pruned or covered); the posting path must beat it — or be
        forced by ``access="index"`` — to be chosen.
        """
        if access == SCAN or not indexed_attrs:
            return None
        pairs = _indexed_attr_candidates(node.condition, indexed_attrs)
        if not pairs:
            return None
        att, value, postings = min(
            (
                (att, value, stats.attr_value_count(att, value))
                for att, value in pairs
            ),
            key=lambda triple: triple[2],
        )
        attr_cost = model.attr_index_cost(postings)
        if access != INDEX and attr_cost >= fallback_cost:
            return None
        decisions.append(AccessDecision(
            op=node.describe(),
            chosen=ATTR_INDEX,
            scan_cost=fallback_cost,
            index_cost=attr_cost,
            reason=(
                "forced by request" if access == INDEX else
                f"~{postings:.0f} {att}={value!r} postings cheaper than "
                f"{fallback_cost:.0f}-unit scan"
            ),
        ))
        return AttrIndexScanOp(node, children, att, value)

    def scan_form(node: Expr, children: tuple[PhysicalOp, ...]) -> PhysicalOp:
        """The scan-family physical form: columnar/posting when it pays."""
        if (
            model.columnar
            and isinstance(node, SelectNodesE)
            and isinstance(node.child, InputE)
        ):
            input_nodes = node.child.estimate(stats).nodes
            if input_nodes >= model.shard_scan_min_nodes:
                prune_type, exact = _pruning_type(node.condition)
                covered = (
                    exact
                    and len(node.condition.predicates) == 1
                    and not node.condition.has_keywords
                    and node.scorer is None
                )
                # price of the best scan-family plan: the population the
                # columns cannot exclude up front, at the vectorized
                # per-row price
                if prune_type is not None:
                    bucket = min(
                        stats.node_types.get(str(prune_type), input_nodes),
                        input_nodes,
                    )
                else:
                    bucket = input_nodes
                columnar_cost = (
                    model.scan_cost(bucket) * model.columnar_row_cost
                )
                if not covered:
                    attr_form = attr_index_form(
                        node, children, input_nodes, columnar_cost
                    )
                    if attr_form is not None:
                        return attr_form
                pruned = (
                    f", covered by type {prune_type!r} buckets" if covered
                    else f", pruned to type {prune_type!r} buckets"
                    if prune_type is not None else ""
                )
                scattered = (
                    f"scattered across {shards} partitions" if shards > 1
                    else "over the monolithic columnar view"
                )
                decisions.append(AccessDecision(
                    op=node.describe(),
                    chosen=SHARDED,
                    scan_cost=model.scan_cost(input_nodes),
                    index_cost=None,
                    reason=(
                        f"{input_nodes:.0f}-node base scan {scattered}"
                        f"{pruned}"
                    ),
                ))
                return ShardedScanOp(node, children, shards, prune_type,
                                     covered)
            attr_form = attr_index_form(
                node, children, input_nodes, model.scan_cost(input_nodes)
            )
            if attr_form is not None:
                return attr_form
        if (
            model.columnar
            and isinstance(node, SelectLinksE)
            and isinstance(node.child, InputE)
        ):
            input_links = node.child.estimate(stats).links
            if input_links >= model.shard_link_min_links:
                prune_type, _exact = _pruning_type(node.condition)
                pruned = (
                    f", pruned to link-type {prune_type!r} buckets"
                    if prune_type is not None else ""
                )
                scattered = (
                    f"scattered across {shards} partitions" if shards > 1
                    else "over the monolithic columnar view"
                )
                decisions.append(AccessDecision(
                    op=node.describe(),
                    chosen=SHARDED,
                    scan_cost=input_links * model.scan_cost_per_node,
                    index_cost=None,
                    reason=(
                        f"{input_links:.0f}-link base scan {scattered}"
                        f"{pruned}"
                    ),
                ))
                return ShardedLinkScanOp(node, children, shards, prune_type)
        return ScanOp(node, children)

    def lower(node: Expr) -> PhysicalOp:
        key = id(node)
        if key in memo:
            return memo[key]
        if isinstance(node, CombineScoresE):
            physical = _lower_combine(node)
            memo[key] = physical
            return physical
        children = tuple(lower(child) for child in node.children())
        if isinstance(node, InputE):
            physical: PhysicalOp = InputOp(node, ())
        elif isinstance(node, LiteralE):
            physical = LiteralOp(node, ())
        elif isinstance(node, SocialScoreE):
            physical = _choose_social_path(
                node, children, stats, access, model, decisions,
                strategy_state, shards,
            )
        elif _index_eligible(node, index) and access != SCAN:
            physical = _choose_select_path(
                node, children, stats, index, access, model, decisions,
                scan_form,
            )
        else:
            physical = scan_form(node, children)
        _mark_memoisable(node, physical)
        memo[key] = physical
        return physical

    def _lower_combine(node: CombineScoresE) -> PhysicalOp:
        """Fuse social scoring into the combination when it is safe.

        Safe means: the social stage is a compiled :class:`SocialScoreE`,
        the combination is its only consumer, both read the *same*
        candidate sub-plan, and the chosen social form is not an
        endorsement merge (whose network-index machinery stays a
        standalone operator).  Anything else lowers to the plain
        two-operator pipeline.
        """
        social = node.right
        fusable = (
            isinstance(social, SocialScoreE)
            and parents.get(id(social), 0) == 1
            and social.children()[1] is node.left
        )
        if fusable:
            social_children = tuple(lower(c) for c in social.children())
            social_phys = _choose_social_path(
                social, social_children, stats, access, model, decisions,
                strategy_state, shards,
            )
            if not isinstance(social_phys, EndorsementMergeOp):
                return FusedSocialCombineOp(
                    node, social, social_children,
                    strategy=social_phys.strategy, form=social_phys.form,
                )
            memo[id(social)] = social_phys
            return ScanOp(node, (lower(node.left), social_phys))
        return ScanOp(node, tuple(lower(child) for child in node.children()))

    root = lower(optimized)
    return PhysicalPlan(
        root=root,
        logical=optimized,
        source=expr,
        rewrites=report,
        stats=stats,
        key=(key if key is not None else plan_key(expr), access),
        decisions=tuple(decisions),
        strategy_decision=strategy_state["decision"],
        resolved_strategy=strategy_state["resolved"],
    )


def _choose_select_path(
    node: SelectNodesE,
    children: tuple[PhysicalOp, ...],
    stats: GraphStats,
    index: IndexBinding,
    access: str,
    model: CostModel,
    decisions: list[AccessDecision],
    scan_form: Callable[..., PhysicalOp] = ScanOp,
) -> PhysicalOp:
    """Cost the two physical forms of an eligible keyword selection.

    *scan_form* builds the scan-family operator when the scan side wins —
    the compiler passes its shard-aware constructor, so a selection that
    loses to neither index still scatters across partitions when the
    planner has them.
    """
    input_nodes = node.child.estimate(stats).nodes
    scan_cost = model.scan_cost(input_nodes)
    matches = stats.keyword_match_fraction(node.condition.keywords) * input_nodes
    index_cost = model.index_cost(matches)
    if access == INDEX:
        chosen, reason = INDEX, "forced by request"
    elif index_cost < scan_cost:
        chosen, reason = INDEX, (
            f"expected {matches:.0f} postings cheaper than {input_nodes:.0f}-node scan"
        )
    else:
        chosen, reason = SCAN, (
            f"match fraction too high ({matches:.0f} of {input_nodes:.0f} nodes)"
        )
    decisions.append(
        AccessDecision(
            op=node.describe(),
            chosen=chosen,
            scan_cost=scan_cost,
            index_cost=index_cost,
            reason=reason,
        )
    )
    if chosen == INDEX:
        return IndexKeywordScanOp(node, children, index.item_type)
    return scan_form(node, children)


def _resolve_strategy(stats: GraphStats) -> tuple[str, str]:
    """Cost-based strategy pick from the connection-degree histograms.

    Shares its rule with :func:`repro.core.social.choose_strategy` (the
    evaluation-time twin): friend endorsement needs a connected *and*
    active population; without one, content support (derived ``sim_item``
    links) beats a similarity pass, which in turn beats an inert friends
    probe.
    """
    basis = stats.expected_basis_size()
    act_links = stats.link_types.get("act", 0)
    sim_links = stats.link_types.get("sim_item", 0)
    chosen = choose_strategy(
        stats.users_with_connections() > 0, act_links > 0, sim_links > 0
    )
    if chosen == "friends" and stats.users_with_connections() > 0:
        reason = (
            f"avg connection degree {basis:.1f} over "
            f"{stats.users_with_connections()} connected users with "
            f"{act_links} activities"
        )
    elif chosen == "item_based":
        reason = f"no connections; {sim_links} derived sim_item links"
    elif chosen == "similar_users":
        reason = f"no connections or sim_item links; {act_links} activities"
    else:
        reason = "no social signal in statistics; defaulting to friends"
    return chosen, reason


def _choose_social_path(
    node: SocialScoreE,
    children: tuple[PhysicalOp, ...],
    stats: GraphStats,
    access: str,
    model: CostModel,
    decisions: list[AccessDecision],
    strategy_state: dict,
    shards: int = 1,
) -> PhysicalOp:
    """Lower the social stage: resolve the strategy, then pick its form.

    Friend endorsement has three physical forms — the adjacency probe
    (scan), the exact §6.2 endorsement index, and the cluster-compressed
    variant; the similarity strategies have one (grouped aggregation).
    The network-index forms are eligible only for empty-keyword queries,
    where every basis weight is 1.0 and the stored ``count`` scores match
    the probe exactly (the correctness boundary, mirrored at runtime).
    """
    resolved = node.strategy
    if resolved == "auto":
        resolved, reason = _resolve_strategy(stats)
        strategy_state["decision"] = StrategyDecision(
            op=node.describe(), chosen=resolved, reason=reason
        )
    strategy_state["resolved"] = resolved
    if resolved != "friends":
        return GroupedAggregationOp(node, children, resolved)

    eligible = node.keywords == () and access != SCAN
    if not eligible:
        if node.keywords == () and access == SCAN:
            decisions.append(AccessDecision(
                op=node.describe(), chosen=SCAN,
                scan_cost=model.social_probe_cost(
                    stats.expected_basis_size(), stats.avg_act_degree()
                ),
                index_cost=None, reason="forced by request",
            ))
        return SemiJoinProbeOp(node, children, resolved)

    basis = stats.expected_basis_size()
    act_degree = stats.avg_act_degree()
    scan_cost = model.social_probe_cost(basis, act_degree)
    items = max(stats.node_types.get("item", stats.num_nodes), 1)
    postings = min(stats.expected_endorsements(), items)
    # Exact lists are per-user: size the whole structure before choosing.
    total_entries = stats.users_with_connections() * postings
    clustered = total_entries > model.network_entry_budget
    variant = "clustered" if clustered else "exact"
    index_cost = model.endorsement_index_cost(postings, clustered)
    if access == INDEX:
        chosen, reason = variant, "forced by request"
    elif index_cost < scan_cost:
        chosen, reason = variant, (
            f"~{postings:.0f} endorsement postings cheaper than probing "
            f"~{basis:.1f} members x {act_degree:.1f} activities"
            + (f"; ~{total_entries:.0f} entries over budget, clustered lists"
               if clustered else "")
        )
    else:
        chosen, reason = SCAN, (
            f"probe (~{scan_cost:.0f}) beats posting merge "
            f"(~{index_cost:.0f})"
        )
    decisions.append(AccessDecision(
        op=node.describe(),
        chosen=(NETWORK_CLUSTERED if chosen == "clustered"
                else NETWORK_EXACT if chosen == "exact" else SCAN),
        scan_cost=scan_cost,
        index_cost=index_cost,
        reason=reason,
    ))
    if chosen == SCAN:
        return SemiJoinProbeOp(node, children, resolved)
    return EndorsementMergeOp(node, children, resolved, chosen, shards)

"""Property-based tests for semi-join / composition / selection identities.

Complements ``test_properties.py`` with the laws that involve the §5.3
binary operators — the identities the optimizer's soundness ultimately
rests on.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    anti_semi_join,
    compose,
    select_links,
    select_nodes,
    semi_join,
    union,
)
from tests.conftest import overlapping_graph_pairs, social_graphs

FAST = settings(max_examples=50, deadline=None)

DELTAS = [("src", "src"), ("src", "tgt"), ("tgt", "src"), ("tgt", "tgt")]
delta_strategy = st.sampled_from(DELTAS)


class TestSemiJoinIdentities:
    @given(pair=overlapping_graph_pairs(), delta=delta_strategy)
    @FAST
    def test_idempotent(self, pair, delta):
        # (G1 ⋉δ G2) ⋉δ G2 = G1 ⋉δ G2 — filtering twice changes nothing.
        g1, g2 = pair
        once = semi_join(g1, g2, delta)
        twice = semi_join(once, g2, delta)
        assert twice.same_as(once)

    @given(pair=overlapping_graph_pairs(), delta=delta_strategy)
    @FAST
    def test_partition_with_antijoin(self, pair, delta):
        # semi-join and anti-semi-join partition G1's links.
        g1, g2 = pair
        kept = semi_join(g1, g2, delta)
        dropped = anti_semi_join(g1, g2, delta)
        assert kept.link_ids() | dropped.link_ids() == g1.link_ids()
        assert kept.link_ids() & dropped.link_ids() == set()

    @given(pair=overlapping_graph_pairs(), delta=delta_strategy)
    @FAST
    def test_selection_pushdown_rule_soundness(self, pair, delta):
        # σL_C(G1 ⋉δ G2) = σL_C(G1) ⋉δ G2 — the optimizer's pushdown rule.
        g1, g2 = pair
        condition = {"type": "friend"}
        lhs = select_links(semi_join(g1, g2, delta), condition)
        rhs = semi_join(select_links(g1, condition), g2, delta)
        assert lhs.same_as(rhs)

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_semijoin_distributes_over_right_union(self, pair):
        # G1 ⋉ (G2 ∪ G3) = (G1 ⋉ G2) ∪ (G1 ⋉ G3) on the link level.
        #
        # The law is sound only when G2 and G3 are in the same null-graph
        # regime: Definition 6's special case matches a null graph through
        # its *nodes* (degenerate links), so a null ∪ non-null union flips
        # the null side into link-matching and legitimately drops its node
        # matches — e.g. G2 = {node a} (null), G3 carrying a visit link:
        # the union is non-null, and `a` no longer matches anything.
        g1, g2 = pair
        g3 = select_links(g1, {"type": "visit"})
        assume(g2.is_null_graph() == g3.is_null_graph())
        lhs = semi_join(g1, union(g2, g3), ("src", "src"))
        rhs = union(
            semi_join(g1, g2, ("src", "src")),
            semi_join(g1, g3, ("src", "src")),
        )
        assert lhs.link_ids() == rhs.link_ids()


class TestCompositionProperties:
    @given(pair=overlapping_graph_pairs(), delta=delta_strategy)
    @FAST
    def test_output_size_is_matching_pairs(self, pair, delta):
        # One link per (ℓ1, ℓ2) pair with ℓ1.δd1 = ℓ2.δd2 (Definition 5).
        g1, g2 = pair
        d1, d2 = delta
        expected = sum(
            1
            for l1 in g1.links()
            for l2 in g2.links()
            if l1.endpoint(d1) == l2.endpoint(d2)
        )
        result = compose(g1, g2, delta, lambda a, b: {})
        assert result.num_links == expected

    @given(pair=overlapping_graph_pairs(), delta=delta_strategy)
    @FAST
    def test_endpoints_are_opposite_ends(self, pair, delta):
        g1, g2 = pair
        d1, d2 = delta
        result = compose(g1, g2, delta, lambda a, b: {})
        g1_opposites = {l.other_endpoint(d1) for l in g1.links()}
        g2_opposites = {l.other_endpoint(d2) for l in g2.links()}
        for link in result.links():
            assert link.src in g1_opposites
            assert link.tgt in g2_opposites

    @given(pair=overlapping_graph_pairs())
    @FAST
    def test_veto_is_subset_of_full(self, pair):
        # An F returning None for some pairs yields a subgraph of the
        # unconditional composition.
        g1, g2 = pair
        full = compose(g1, g2, ("tgt", "src"), lambda a, b: {})
        vetoed = compose(
            g1, g2, ("tgt", "src"),
            lambda a, b: {} if repr(a.id) < repr(b.id) else None,
        )
        assert vetoed.link_ids() <= full.link_ids()

    @given(g=social_graphs())
    @FAST
    def test_composition_is_deterministic(self, g):
        a = compose(g, g, ("tgt", "src"), lambda x, y: {"w": 1})
        b = compose(g, g, ("tgt", "src"), lambda x, y: {"w": 1})
        assert a.same_as(b)


class TestSelectionScoringLaws:
    @given(g=social_graphs())
    @FAST
    def test_scores_bounded_for_default_scorer(self, g):
        from repro.core import Condition

        result = select_nodes(g, Condition(keywords="user item"))
        for node in result.nodes():
            assert node.score is not None
            assert node.score >= 0.0

    @given(g=social_graphs())
    @FAST
    def test_structural_selection_monotone(self, g):
        # Adding predicates can only shrink the selection.
        broad = select_nodes(g, {"type": "user"})
        narrow = select_nodes(g, {"type": "user", "rating__ge": 3})
        assert narrow.node_ids() <= broad.node_ids()

"""Composition operator (paper §5.3, Definition 5) and the class CF.

    "Operator Composition G1 ∘⟨δ,F⟩ G2 takes a directional condition δ and a
    composition function F as parameters and produces a graph induced by new
    links that are composed from links in G1 and G2.  [...]  δ=(src, tgt)
    means two links are composed if and only if the source node of the G1
    link matches the target node of the G2 link."

For every pair (ℓ1, ℓ2) with ``ℓ1.δd1 = ℓ2.δd2`` a **new** link is created
from ``u = ℓ1.δd̄1`` (the opposite endpoint of ℓ1) to ``v = ℓ2.δd̄2``, with
attributes produced by F.  Note composition produces *one link per matching
pair* — Example 5 relies on this ("this step produces one link from John to
another user for every common place visited by both").

The class CF (composition functions) is any callable that receives the two
input links — and, since "these attributes may be link attributes or node
attributes", a :class:`CompositionContext` giving access to the endpoint
node records — and returns a mapping of uniquely named attributes for the
output link.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Union

from repro.core.graph import Id, Link, Node, SocialContentGraph
from repro.core.semijoin import Delta, _check_delta
from repro.errors import CompositionError


@dataclass(frozen=True)
class CompositionContext:
    """Everything a composition function may need beyond the two links.

    Attributes
    ----------
    u, v:
        The endpoint node records of the new link (``u`` from G1's side,
        ``v`` from G2's side).
    via:
        The id of the shared node on which the two links matched.
    g1, g2:
        The input graphs, for functions that need further lookups.
    """

    u: Node
    v: Node
    via: Id
    g1: SocialContentGraph
    g2: SocialContentGraph


#: A composition function: ``F(l1, l2)`` or ``F(l1, l2, ctx)`` returning a
#: mapping of attributes for the new link.
CompositionFunction = Union[
    Callable[[Link, Link], Mapping[str, Any]],
    Callable[[Link, Link, CompositionContext], Mapping[str, Any]],
]


def _arity(fn: Callable) -> int:
    """Number of positional parameters F declares (2 or 3)."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins / C callables: assume 3
        return 3
    params = [
        p
        for p in sig.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if any(p.kind == p.VAR_POSITIONAL for p in sig.parameters.values()):
        return 3
    return len(params)


def compose(
    g1: SocialContentGraph,
    g2: SocialContentGraph,
    delta: Delta,
    f: CompositionFunction,
    link_type: str = "composed",
    link_id_prefix: str = "comp",
) -> SocialContentGraph:
    """G1 ∘⟨δ,F⟩ G2 — Definition 5.

    Parameters
    ----------
    delta:
        The directional condition (d1, d2); ``ℓ1.δd1`` must equal ``ℓ2.δd2``.
    f:
        A composition function in class CF.  If its result omits ``type``,
        *link_type* is used so the output link stays well-formed.
    link_type:
        Default type for composed links.
    link_id_prefix:
        New links get deterministic ids ``f"{prefix}:{l1.id}:{l2.id}"`` so
        re-running a composition yields an identical graph.

    Returns
    -------
    The graph induced by the new links: each new link plus its two endpoint
    nodes (taken from G1's side for ``u`` and G2's side for ``v``).
    """
    d1, d2 = _check_delta(delta)
    if g1.is_null_graph() or g2.is_null_graph():
        # No links to compose: the induced graph is empty.
        return SocialContentGraph(catalog=g1.catalog)
    arity = _arity(f)
    if arity not in (2, 3):
        raise CompositionError(
            f"composition function must accept 2 or 3 arguments, got {arity}"
        )

    # Hash-join on the shared endpoint.
    by_join_value: dict[Id, list[Link]] = {}
    for l2 in g2.links():
        by_join_value.setdefault(l2.endpoint(d2), []).append(l2)

    out = SocialContentGraph(catalog=g1.catalog)
    for l1 in g1.links():
        partners = by_join_value.get(l1.endpoint(d1))
        if not partners:
            continue
        u_id = l1.other_endpoint(d1)
        u = g1.node(u_id)
        for l2 in partners:
            v_id = l2.other_endpoint(d2)
            v = g2.node(v_id)
            if arity == 2:
                attrs = f(l1, l2)
            else:
                ctx = CompositionContext(
                    u=u, v=v, via=l1.endpoint(d1), g1=g1, g2=g2
                )
                attrs = f(l1, l2, ctx)
            if attrs is None:
                continue  # F may veto a pair by returning None
            if not isinstance(attrs, Mapping):
                raise CompositionError(
                    "composition function must return a mapping of attributes "
                    f"(or None to skip), got {type(attrs).__name__}"
                )
            new_attrs = dict(attrs)
            new_attrs.setdefault("type", link_type)
            if not out.has_node(u_id):
                out.add_node(u)
            if not out.has_node(v_id):
                out.add_node(v)
            out.add_link(
                Link(f"{link_id_prefix}:{l1.id}:{l2.id}", u_id, v_id, new_attrs)
            )
    return out


# ---------------------------------------------------------------------------
# Ready-made composition functions (members of class CF)
# ---------------------------------------------------------------------------


class CopyAttrs:
    """F that copies selected attributes from the input links.

    ``CopyAttrs(from_l1=('date',), from_l2=('tags',), type='path')`` builds
    output attributes by copying ``date`` from ℓ1 and ``tags`` from ℓ2 and
    setting the given constants.
    """

    def __init__(
        self,
        from_l1: tuple[str, ...] = (),
        from_l2: tuple[str, ...] = (),
        **constants: Any,
    ):
        self.from_l1 = from_l1
        self.from_l2 = from_l2
        self.constants = constants

    def __call__(self, l1: Link, l2: Link) -> Mapping[str, Any]:
        attrs: dict[str, Any] = dict(self.constants)
        for att in self.from_l1:
            values = l1.values(att)
            if values:
                attrs[att] = values
        for att in self.from_l2:
            values = l2.values(att)
            if values:
                attrs[att] = values
        return attrs


class JaccardOnNodeSets:
    """F computing the Jaccard similarity of a set-valued node attribute.

    This is the F of Example 5 step 5: after node aggregation has stored the
    visited-destination set in attribute ``vst`` of each user node, the
    composition of John's visits with other users' visits (δ = (tgt, tgt))
    computes ``sim = |vst(u) ∩ vst(v)| / |vst(u) ∪ vst(v)|`` and assigns it
    to the new John→user link.
    """

    def __init__(self, att: str = "vst", out_att: str = "sim", **constants: Any):
        self.att = att
        self.out_att = out_att
        self.constants = constants

    def __call__(
        self, l1: Link, l2: Link, ctx: CompositionContext
    ) -> Mapping[str, Any]:
        set_u = set(ctx.u.values(self.att))
        set_v = set(ctx.v.values(self.att))
        union_size = len(set_u | set_v)
        sim = len(set_u & set_v) / union_size if union_size else 0.0
        attrs: dict[str, Any] = dict(self.constants)
        attrs[self.out_att] = sim
        return attrs


class CarryScore:
    """F that forwards a numeric attribute of ℓ1 onto the new link.

    This is F′ of Example 5 step 8: "simply copies the value of attribute
    ``sim`` of the link from John to the user, on to the new link from John
    to the destination node and assigns this value to the attribute
    ``sim_sc``."
    """

    def __init__(self, src_att: str = "sim", out_att: str = "sim_sc", **constants: Any):
        self.src_att = src_att
        self.out_att = out_att
        self.constants = constants

    def __call__(self, l1: Link, l2: Link) -> Mapping[str, Any]:
        attrs: dict[str, Any] = dict(self.constants)
        value = l1.value(self.src_att)
        attrs[self.out_att] = 0.0 if value is None else float(value)
        return attrs

"""Serialization of social content graphs (JSON and JSON-lines).

The logical model (§4) is deliberately storage-agnostic; this module gives
the Data Manager — and library users — a portable on-disk format:

* :func:`graph_to_dict` / :func:`graph_from_dict` — plain-dict codec
  (stable, versioned envelope);
* :func:`dump_json` / :func:`load_json` — single-document JSON;
* :func:`dump_jsonl` / :func:`load_jsonl` — one record per line
  (``{"kind": "node"|"link", ...}``), the format that streams and diffs
  well for large graphs.

Round-tripping preserves ids, endpoints and attribute *value sets*
(multi-valued attributes keep their stored order).  Non-JSON scalar types
are rejected loudly rather than silently coerced — including the
non-finite floats (``nan``/``inf``) that ``json.dump`` would otherwise
happily write as bare ``NaN``/``Infinity`` tokens no strict JSON parser
(our own recovery path included) can read back.

Envelope v2 extends v1 for the durability layer
(:mod:`repro.management.persist`): headers may carry an opaque ``meta``
mapping and records may carry extra fields (provenance ``origin``, WAL
sequence numbers).  Readers accept both versions — v1 files load
unchanged.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.core.graph import Link, Node, SocialContentGraph
from repro.errors import GraphError

#: Format version written into every envelope.
FORMAT_VERSION = 2

#: Versions the readers accept (v1 lacked header meta / record extras).
SUPPORTED_VERSIONS = (1, 2)

_JSON_SCALARS = (str, int, float, bool)


def _reject_constant(token: str) -> float:
    raise GraphError(
        f"non-finite JSON constant {token!r} in input — socialscope "
        f"documents are strict JSON (written with allow_nan=False)"
    )


def dumps_strict(payload: Any, **kw: Any) -> str:
    """``json.dumps`` with non-finite floats rejected, not miswritten.

    The stdlib default (``allow_nan=True``) emits ``NaN``/``Infinity``
    literals that are not JSON; every writer in this module (and the WAL
    framing built on it) goes through here so a poisoned attribute value
    fails at *write* time with a clear error instead of corrupting a
    snapshot that recovery chokes on later.
    """
    try:
        return json.dumps(payload, allow_nan=False, **kw)
    except ValueError as exc:
        raise GraphError(
            f"payload holds a non-finite float (nan/inf): {exc}"
        ) from exc


def loads_strict(text: str) -> Any:
    """``json.loads`` that refuses ``NaN``/``Infinity`` written by others."""
    return json.loads(text, parse_constant=_reject_constant)


def _check_values(owner: str, attrs: dict) -> None:
    for att, values in attrs.items():
        for value in values:
            if not isinstance(value, _JSON_SCALARS):
                raise GraphError(
                    f"{owner}: attribute {att!r} holds non-JSON value "
                    f"{value!r} ({type(value).__name__})"
                )
            if isinstance(value, float) and not math.isfinite(value):
                raise GraphError(
                    f"{owner}: attribute {att!r} holds non-finite float "
                    f"{value!r} — nan/inf are not JSON values"
                )


def node_to_dict(node: Node) -> dict[str, Any]:
    """Codec for one node."""
    _check_values(f"node {node.id!r}", dict(node.attrs))
    return {"id": node.id, "attrs": {k: list(v) for k, v in node.attrs.items()}}


def node_from_dict(payload: dict[str, Any]) -> Node:
    """Inverse of :func:`node_to_dict` (extra v2 fields are ignored)."""
    return Node(payload["id"], payload.get("attrs", {}))


def link_to_dict(link: Link) -> dict[str, Any]:
    """Codec for one link."""
    _check_values(f"link {link.id!r}", dict(link.attrs))
    return {
        "id": link.id,
        "src": link.src,
        "tgt": link.tgt,
        "attrs": {k: list(v) for k, v in link.attrs.items()},
    }


def link_from_dict(payload: dict[str, Any]) -> Link:
    """Inverse of :func:`link_to_dict` (extra v2 fields are ignored)."""
    return Link(
        payload["id"], payload["src"], payload["tgt"], payload.get("attrs", {})
    )


def graph_to_dict(graph: SocialContentGraph) -> dict[str, Any]:
    """The whole graph as one JSON-ready dict (deterministic order)."""
    return {
        "format": "socialscope-graph",
        "version": FORMAT_VERSION,
        "nodes": [node_to_dict(n)
                  for n in sorted(graph.nodes(), key=lambda n: repr(n.id))],
        "links": [link_to_dict(l)
                  for l in sorted(graph.links(), key=lambda l: repr(l.id))],
    }


def graph_from_dict(payload: dict[str, Any]) -> SocialContentGraph:
    """Inverse of :func:`graph_to_dict` (validates the envelope)."""
    if payload.get("format") != "socialscope-graph":
        raise GraphError("not a socialscope-graph document")
    if payload.get("version") not in SUPPORTED_VERSIONS:
        raise GraphError(
            f"unsupported format version {payload.get('version')!r} "
            f"(this build reads {SUPPORTED_VERSIONS})"
        )
    graph = SocialContentGraph()
    for node_payload in payload.get("nodes", ()):
        graph.add_node(node_from_dict(node_payload))
    for link_payload in payload.get("links", ()):
        graph.add_link(link_from_dict(link_payload))
    return graph


# ---------------------------------------------------------------------------
# File-level helpers
# ---------------------------------------------------------------------------


def dump_json(graph: SocialContentGraph, path: str | Path) -> None:
    """Write the graph as one JSON document."""
    Path(path).write_text(dumps_strict(graph_to_dict(graph), indent=1))


def load_json(path: str | Path) -> SocialContentGraph:
    """Read a graph written by :func:`dump_json`."""
    return graph_from_dict(loads_strict(Path(path).read_text()))


def jsonl_header(meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """The v2 JSON-lines header record (optionally carrying *meta*)."""
    header: dict[str, Any] = {
        "kind": "header",
        "format": "socialscope-graph",
        "version": FORMAT_VERSION,
    }
    if meta:
        header["meta"] = meta
    return header


def _jsonl_records(graph: SocialContentGraph) -> Iterator[dict[str, Any]]:
    yield jsonl_header()
    for node in sorted(graph.nodes(), key=lambda n: repr(n.id)):
        yield {"kind": "node", **node_to_dict(node)}
    for link in sorted(graph.links(), key=lambda l: repr(l.id)):
        yield {"kind": "link", **link_to_dict(link)}


def dump_jsonl(graph: SocialContentGraph, path: str | Path) -> None:
    """Write the graph as JSON-lines (header + one record per element)."""
    with open(path, "w") as handle:
        for record in _jsonl_records(graph):
            handle.write(dumps_strict(record) + "\n")


def load_jsonl(
    path: str | Path,
    on_header: Callable[[dict[str, Any]], None] | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
) -> SocialContentGraph:
    """Read a graph written by :func:`dump_jsonl`.

    Nodes must precede the links that reference them (the writer
    guarantees this; foreign writers get a clear DanglingLinkError
    otherwise).  The durability layer hooks *on_header* (manifest meta)
    and *on_record* (v2 extras such as per-record ``origin``) to recover
    what the plain graph codec does not model.
    """
    graph = SocialContentGraph()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = loads_strict(line)
            kind = record.get("kind")
            if kind == "header":
                if record.get("version") not in SUPPORTED_VERSIONS:
                    raise GraphError(
                        f"line {line_no}: unsupported version "
                        f"{record.get('version')!r}"
                    )
                if on_header is not None:
                    on_header(record)
            elif kind == "node":
                graph.add_node(node_from_dict(record))
                if on_record is not None:
                    on_record(record)
            elif kind == "link":
                graph.add_link(link_from_dict(record))
                if on_record is not None:
                    on_record(record)
            else:
                raise GraphError(f"line {line_no}: unknown record kind {kind!r}")
    return graph

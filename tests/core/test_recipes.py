"""Integration tests: the paper's worked Examples 4 and 5 + Figure 2."""

from __future__ import annotations

import pytest

from repro.core import (
    Condition,
    Link,
    Node,
    SocialContentGraph,
    example4_search,
    example5_collaborative_filtering,
    figure2_collaborative_filtering,
    recommendations_from,
)


@pytest.fixture
def denver_graph():
    """A graph tailored to Example 4: John, friends, destinations near
    Denver (and one far away), visits, and extra activities."""
    g = SocialContentGraph()
    g.add_node(Node(101, type="user", name="John"))
    for uid, name in [(1, "Amy"), (2, "Ben"), (3, "Cleo"), (4, "Stranger")]:
        g.add_node(Node(uid, type="user", name=name))
    g.add_node(Node("coors", type="item, destination",
                    name="Coors Field", keywords="near denver baseball"))
    g.add_node(Node("museum", type="item, destination",
                    name="Ballpark Museum", keywords="near denver baseball"))
    g.add_node(Node("paris", type="item, destination",
                    name="Louvre", keywords="paris museum"))
    # friendships (John -> friend)
    g.add_link(Link("f-amy", 101, 1, type="connect, friend"))
    g.add_link(Link("f-ben", 101, 2, type="connect, friend"))
    g.add_link(Link("f-cleo", 101, 3, type="connect, friend"))
    # visits
    g.add_link(Link("v1", 1, "coors", type="act, visit"))     # Amy: near Denver
    g.add_link(Link("v2", 2, "paris", type="act, visit"))     # Ben: not near
    g.add_link(Link("v3", 4, "museum", type="act, visit"))    # Stranger
    # other activities by Amy and Ben
    g.add_link(Link("t1", 1, "coors", type="act, tag", tags="baseball"))
    g.add_link(Link("t2", 2, "paris", type="act, review", rating=4))
    return g


class TestExample4:
    def test_friends_who_visited_near_denver(self, denver_graph):
        result = example4_search(denver_graph, 101)
        # Amy is the only friend with a near-Denver visit.
        assert result.has_link("f-amy")      # John -> Amy friend link (G3)
        assert result.has_link("v1")          # Amy's qualifying visit (G4)
        assert not result.has_link("f-ben")   # Ben visited Paris only
        assert not result.has_link("v3")      # Stranger is not a friend

    def test_includes_all_friend_activities(self, denver_graph):
        result = example4_search(denver_graph, 101)
        # G6: *all* activities of qualifying friends — Amy's tag included.
        assert result.has_link("t1")
        assert not result.has_link("t2")  # Ben doesn't qualify

    def test_contains_john_and_places(self, denver_graph):
        result = example4_search(denver_graph, 101)
        assert result.has_node(101)
        assert result.has_node("coors")
        assert not result.has_node("paris")

    def test_custom_place_condition(self, denver_graph):
        result = example4_search(
            denver_graph, 101,
            place_condition=Condition({"type": "destination"}, keywords="paris"),
        )
        assert result.has_link("f-ben")
        assert not result.has_link("f-amy")

    def test_no_friends_empty(self, denver_graph):
        result = example4_search(denver_graph, 4)  # Stranger has no friends
        assert result.num_links == 0


class TestExample5:
    def test_recommendations(self, tiny_travel_graph):
        result = example5_collaborative_filtering(tiny_travel_graph, 101)
        recs = dict(recommendations_from(result, 101))
        # Similar users (>0.5): Ann (2/3), Cat (1.0).  Bob (0.25) excluded.
        # d1: avg(2/3, 1) = 5/6; d3: same; d2: Ann only = 2/3.
        assert recs["d1"] == pytest.approx(5 / 6)
        assert recs["d3"] == pytest.approx(5 / 6)
        assert recs["d2"] == pytest.approx(2 / 3)
        assert "d4" not in recs  # only Bob visited d4

    def test_matches_direct_computation(self, tiny_travel_graph):
        """The algebra pipeline must equal a from-scratch CF computation."""
        g = tiny_travel_graph
        visits: dict[int, set] = {}
        for link in g.links():
            if link.has_type("visit"):
                visits.setdefault(link.src, set()).add(link.tgt)
        john = visits[101]
        sims = {}
        for user, seen in visits.items():
            if user == 101:
                continue
            jac = len(john & seen) / len(john | seen)
            if jac > 0.5:
                sims[user] = jac
        expected: dict[str, list[float]] = {}
        for user, sim in sims.items():
            for dest in visits[user]:
                expected.setdefault(dest, []).append(sim)
        expected_scores = {d: sum(v) / len(v) for d, v in expected.items()}

        result = example5_collaborative_filtering(g, 101)
        recs = dict(recommendations_from(result, 101))
        assert recs == pytest.approx(expected_scores)

    def test_threshold_parameter(self, tiny_travel_graph):
        result = example5_collaborative_filtering(
            tiny_travel_graph, 101, sim_threshold=0.2
        )
        recs = dict(recommendations_from(result, 101))
        assert "d4" in recs  # Bob (0.25) now included

    def test_exclude_visited(self, tiny_travel_graph):
        result = example5_collaborative_filtering(tiny_travel_graph, 101)
        recs = recommendations_from(result, 101, exclude={"d1", "d3"})
        assert [d for d, _ in recs] == ["d2"]

    def test_user_with_no_visits(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        g.add_node(Node(999, type="user", name="Newbie"))
        result = example5_collaborative_filtering(g, 999)
        assert recommendations_from(result, 999) == []


class TestFigure2Equivalence:
    def test_pattern_equals_multistep(self, tiny_travel_graph):
        multi = example5_collaborative_filtering(tiny_travel_graph, 101)
        pattern = figure2_collaborative_filtering(tiny_travel_graph, 101)
        m = dict(recommendations_from(multi, 101))
        p = dict(recommendations_from(pattern, 101))
        assert m == pytest.approx(p)

    def test_equivalence_with_lower_threshold(self, tiny_travel_graph):
        multi = example5_collaborative_filtering(
            tiny_travel_graph, 101, sim_threshold=0.2
        )
        pattern = figure2_collaborative_filtering(
            tiny_travel_graph, 101, sim_threshold=0.2
        )
        m = dict(recommendations_from(multi, 101))
        p = dict(recommendations_from(pattern, 101))
        assert m == pytest.approx(p)

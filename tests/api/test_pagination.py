"""Deterministic pagination: page windows and cursor walks partition the
ranking with no duplicated or dropped items and stable tie-breaks."""

from __future__ import annotations

import pytest

from repro.api import SearchRequest, Session
from repro.workloads import ALEXIA, JOHN, TravelSiteConfig, build_travel_site

PAGE_SIZE = 4


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def session(travel):
    return Session.from_graph(travel.graph)


def full_ranking(session, user_id, text):
    """The complete combined ranking for a query, via the discovery layer."""
    session._ensure_fresh()
    ranking = session.discoverer.rank(
        session._parse(SearchRequest(user_id=user_id, text=text))
    )
    return [s.item_id for s in ranking.items]


class TestPageWindows:
    @pytest.mark.parametrize("user_id,text", [
        (JOHN, "Denver attractions"),
        (ALEXIA, "history"),
        (JOHN, ""),  # recommendation mode paginates too
    ])
    def test_pages_partition_the_ranking(self, session, user_id, text):
        expected = full_ranking(session, user_id, text)
        collected: list = []
        page = 1
        while True:
            response = session.run(SearchRequest(
                user_id=user_id, text=text,
                page=page, page_size=PAGE_SIZE,
            ))
            collected.extend(response.items)
            if not response.page_info.has_next:
                break
            page += 1
        assert collected == expected  # order, no dups, nothing dropped
        assert len(set(collected)) == len(collected)

    def test_rerunning_a_page_is_deterministic(self, session):
        request = SearchRequest(
            user_id=JOHN, text="Denver attractions", page=2, page_size=3,
        )
        first = session.run(request)
        again = session.run(request)
        assert first.items == again.items
        assert [e.item_id for e in first.page.flat] == \
               [e.item_id for e in again.page.flat]

    def test_beyond_end_page_is_empty(self, session):
        total = len(full_ranking(session, JOHN, "Denver attractions"))
        beyond = total // PAGE_SIZE + 2
        response = session.run(SearchRequest(
            user_id=JOHN, text="Denver attractions",
            page=beyond, page_size=PAGE_SIZE,
        ))
        assert response.items == ()
        assert not response.page_info.has_next
        assert response.page_info.returned == 0

    def test_page_info_bookkeeping(self, session):
        response = session.run(SearchRequest(
            user_id=JOHN, text="Denver attractions", page=2, page_size=3,
        ))
        info = response.page_info
        assert info.page == 2
        assert info.offset == 3
        assert info.page_size == 3
        assert info.has_prev
        assert info.total_pages == -(-info.total_items // 3)


class TestCursorWalk:
    def test_cursor_chain_equals_page_walk(self, session):
        by_pages: list = []
        page = 1
        while True:
            response = session.run(SearchRequest(
                user_id=ALEXIA, text="history",
                page=page, page_size=PAGE_SIZE,
            ))
            by_pages.append(response.items)
            if not response.page_info.has_next:
                break
            page += 1

        by_cursor = []
        response = session.run(SearchRequest(
            user_id=ALEXIA, text="history", page_size=PAGE_SIZE,
        ))
        by_cursor.append(response.items)
        while response.page_info.next_cursor:
            response = session.run(SearchRequest(
                user_id=ALEXIA, text="history",
                cursor=response.page_info.next_cursor,
            ))
            by_cursor.append(response.items)
        assert by_cursor == by_pages

    def test_builder_pages_iterator(self, session):
        responses = list(
            session.query(ALEXIA).text("history").page_size(PAGE_SIZE).pages()
        )
        assert len(responses) >= 2
        flattened = [i for r in responses for i in r.items]
        assert flattened == full_ranking(session, ALEXIA, "history")
        assert responses[-1].page_info.next_cursor is None

    def test_pages_iterator_respects_max_pages(self, session):
        responses = list(
            session.query(ALEXIA).text("history")
            .page_size(2).pages(max_pages=2)
        )
        assert len(responses) == 2

    def test_last_page_has_no_cursor(self, session):
        big = session.run(SearchRequest(
            user_id=JOHN, text="Denver attractions", page_size=10_000,
        ))
        assert big.page_info.next_cursor is None
        assert not big.page_info.has_next

    def test_stale_cursor_rejected_after_refresh(self, travel):
        from repro.core import Node
        from repro.errors import QueryError

        session = Session.from_graph(travel.graph)
        first = session.run(SearchRequest(
            user_id=JOHN, text="Denver attractions", page_size=3,
        ))
        cursor = first.page_info.next_cursor
        assert cursor is not None
        session.data_manager.add_node(Node(
            "x:late", type="item, destination",
            name="Late Denver Attraction", keywords="denver attraction",
        ))
        with pytest.raises(QueryError, match="stale cursor"):
            session.run(SearchRequest(
                user_id=JOHN, text="Denver attractions", cursor=cursor,
            ))
        # restarting pagination sees the new ranking
        fresh = session.run(SearchRequest(
            user_id=JOHN, text="Denver attractions", page_size=3,
        ))
        assert fresh.page_info.next_cursor != cursor


class TestKBudget:
    def test_k_caps_pagination(self, session):
        pages = list(
            session.query(JOHN).text("Denver attractions")
            .limit(4).page_size(2).pages()
        )
        assert len(pages) == 2
        assert [len(p.items) for p in pages] == [2, 2]
        assert pages[0].page_info.total_items == 4
        assert pages[0].page_info.total_pages == 2
        assert pages[-1].page_info.next_cursor is None

    def test_k_budget_matches_unpaged_ranking_prefix(self, session):
        whole = session.run(SearchRequest(
            user_id=JOHN, text="Denver attractions", k=4,
        ))
        paged = list(
            session.query(JOHN).text("Denver attractions")
            .limit(4).page_size(2).pages()
        )
        assert [i for p in paged for i in p.items] == list(whole.items)

    def test_discover_respects_budget_with_page_size(self, session):
        msg = session.discover(SearchRequest(
            user_id=JOHN, text="Denver attractions", k=4,
            page_size=2, page=2,
        ))
        assert len(msg.items) == 2  # second (and last) window of the budget

#!/usr/bin/env python
"""Content management models + Open Cartel federation (paper §6.1).

Simulates a social site ("facebook-sim") plus a travel content site, runs
the three management models of Table 2, then shows live Open-Cartel-style
integration: permissioned pulls, write-back, and activity-driven refresh.

Run:  python examples/federation.py
"""

from repro.management import (
    ALL_SCOPES,
    DataManager,
    RemoteSocialSite,
    Scenario,
    run_all_models,
    uniform_profiles,
    SyncScheduler,
)

# ---------------------------------------------------------------- Table 2
scenario = Scenario(
    users=list(range(1, 41)),
    friendships=[(i, i + 1) for i in range(1, 40)] + [(1, 20), (5, 35)],
    content_sites=("travel", "news", "photos"),
)
print("=== The three content-management models (Table 2) ===")
header = (f"{'model':<15} {'user interacts with':<20} {'profiles':>8} "
          f"{'dup conns':>10} {'can analyze':>12} {'api r/w':>10}")
print(header)
print("-" * len(header))
for outcome in run_all_models(scenario):
    print(f"{outcome.model:<15} {outcome.interaction_point:<20} "
          f"{outcome.profiles_created:>8} {outcome.duplicate_connections:>10} "
          f"{str(outcome.content_site_can_analyze):>12} "
          f"{outcome.api_reads:>5}/{outcome.api_writes}")

# ------------------------------------------------- live federation demo
print("\n=== Open Cartel federation, step by step ===")
social = RemoteSocialSite("facebook-sim")
for uid in range(1, 11):
    social.register_user(uid, f"user{uid}", interests=("travel",))
for uid in range(1, 10):
    social.connect(uid, uid + 1)

dm = DataManager(site_name="travel-site")
# Users grant the travel site access (OAuth-style consent).
for uid in range(1, 11):
    social.grant(uid, "travel-site", set(ALL_SCOPES))
report = dm.attach_remote(social)
print(f"imported from {report.site}: {report.users} users, "
      f"{report.connections} connections ({social.calls.reads} API reads)")
print(f"provenance: {dm.provenance_summary()}")

# Write-back: a connection made on the travel site propagates home.
dm.integrator.push_connection(social, 1, 7)
print(f"pushed local connection 1-7 back; "
      f"user1's remote network is now {sorted(social.get_connections(1, 'travel-site'))}")

# ------------------------------------- activity-driven refresh scheduling
print("\n=== Activity-driven sync vs uniform (under an API budget) ===")
# Heavy users 1-3 stream two activities every tick; the rest are quiet.
def generate_tick_activity(tick: int) -> None:
    for uid in (1, 2, 3):
        social.record_activity(uid, "tag", f"item:{uid}:{tick}:a")
        social.record_activity(uid, "tag", f"item:{uid}:{tick}:b")
    if tick % 5 == 0:
        for uid in range(4, 11):
            social.record_activity(uid, "visit", f"item:{uid}:{tick}")

from repro.management import UserActivityProfile

aware = {uid: UserActivityProfile(user_id=uid,
                                  refresh_interval=1 if uid <= 3 else 5)
         for uid in range(1, 11)}
scheduler = SyncScheduler(social, dm.integrator, aware)
for tick in range(12):
    generate_tick_activity(tick)
    scheduler.run_tick(tick, budget=3)
print(f"activity-aware: refreshes={scheduler.metrics.refreshes}, "
      f"mean staleness={scheduler.metrics.mean_staleness:.2f}")

social2 = RemoteSocialSite("facebook-sim-2")
dm2 = DataManager(site_name="travel-site")
for uid in range(1, 11):
    social2.register_user(uid, f"user{uid}")
    social2.grant(uid, "travel-site", set(ALL_SCOPES))
dm2.attach_remote(social2)
uniform = uniform_profiles(list(range(1, 11)), interval=3)
scheduler2 = SyncScheduler(social2, dm2.integrator, uniform)

def generate_tick_activity2(tick: int) -> None:
    for uid in (1, 2, 3):
        social2.record_activity(uid, "tag", f"item:{uid}:{tick}:a")
        social2.record_activity(uid, "tag", f"item:{uid}:{tick}:b")
    if tick % 5 == 0:
        for uid in range(4, 11):
            social2.record_activity(uid, "visit", f"item:{uid}:{tick}")

for tick in range(12):
    generate_tick_activity2(tick)
    scheduler2.run_tick(tick, budget=3)
print(f"uniform:        refreshes={scheduler2.metrics.refreshes}, "
      f"mean staleness={scheduler2.metrics.mean_staleness:.2f}")
print("(activity-aware scheduling keeps the graph fresher on the same budget)")

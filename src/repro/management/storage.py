"""Physical storage for social content graphs (the Data Manager's engine).

The paper (§3): "the maintenance and retrieval of the social content graph
through the Data Manager, which abstracts away the physical implementation
of the graph."  :class:`GraphStore` is that physical implementation: an
in-memory record store with

* primary key access for nodes and links,
* secondary indexes on type values and on arbitrary registered attributes,
* adjacency indexes (out/in) for traversals,
* provenance bookkeeping (which *source* owns each record: local, an
  external site, or a derivation),
* maintained statistics for the optimizer (:class:`repro.core.stats.GraphStats`).

The logical layer (:class:`repro.core.graph.SocialContentGraph`) is
produced on demand via :meth:`snapshot` / :meth:`view`; algebra operators
never see the store.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core import Id, Link, Node, SocialContentGraph
from repro.core.stats import GraphStats
from repro.errors import (
    DanglingLinkError,
    ManagementError,
    UnknownLinkError,
    UnknownNodeError,
)

#: Provenance values for the ``origin`` of records (paper §3: information
#: may be locally owned, externally integrated, or derived).
LOCAL = "local"
DERIVED = "derived"


@dataclass
class StoreStats:
    """Running statistics maintained incrementally on every write."""

    node_types: Counter = field(default_factory=Counter)
    link_types: Counter = field(default_factory=Counter)
    writes: int = 0
    deletes: int = 0

    def as_graph_stats(self, num_nodes: int, num_links: int) -> GraphStats:
        """Adapt to the optimizer's GraphStats."""
        return GraphStats(
            num_nodes=num_nodes,
            num_links=num_links,
            node_types=Counter(self.node_types),
            link_types=Counter(self.link_types),
        )


class GraphStore:
    """In-memory physical store with secondary indexes and provenance."""

    def __init__(self, indexed_attributes: Iterable[str] = ()):
        self._nodes: dict[Id, Node] = {}
        self._links: dict[Id, Link] = {}
        self._out: dict[Id, set[Id]] = {}
        self._in: dict[Id, set[Id]] = {}
        self._node_type_index: dict[str, set[Id]] = {}
        self._link_type_index: dict[str, set[Id]] = {}
        self._attr_indexes: dict[str, dict[Any, set[Id]]] = {
            att: {} for att in indexed_attributes
        }
        self._origins: dict[tuple[str, Id], str] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------ write
    def upsert_node(self, node: Node, origin: str = LOCAL) -> Node:
        """Insert or replace a node record, maintaining all indexes."""
        old = self._nodes.get(node.id)
        if old is not None:
            self._deindex_node(old)
        self._nodes[node.id] = node
        self._out.setdefault(node.id, set())
        self._in.setdefault(node.id, set())
        self._index_node(node)
        self._origins[("node", node.id)] = origin
        self.stats.writes += 1
        return node

    def upsert_link(self, link: Link, origin: str = LOCAL) -> Link:
        """Insert or replace a link record (endpoints must exist)."""
        for endpoint in (link.src, link.tgt):
            if endpoint not in self._nodes:
                raise DanglingLinkError(link.id, endpoint)
        old = self._links.get(link.id)
        if old is not None:
            if (old.src, old.tgt) != (link.src, link.tgt):
                raise ManagementError(
                    f"link {link.id!r} cannot change endpoints on upsert"
                )
            self._deindex_link(old)
        self._links[link.id] = link
        self._out[link.src].add(link.id)
        self._in[link.tgt].add(link.id)
        self._index_link(link)
        self._origins[("link", link.id)] = origin
        self.stats.writes += 1
        return link

    def delete_link(self, link_id: Id) -> None:
        """Remove a link and its index entries."""
        link = self._links.pop(link_id, None)
        if link is None:
            raise UnknownLinkError(link_id)
        self._deindex_link(link)
        self._out[link.src].discard(link_id)
        self._in[link.tgt].discard(link_id)
        self._origins.pop(("link", link_id), None)
        self.stats.deletes += 1

    def delete_node(self, node_id: Id) -> None:
        """Remove a node and cascade to incident links."""
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        incident = set(self._out.get(node_id, ())) | set(self._in.get(node_id, ()))
        for link_id in incident:
            if link_id in self._links:
                self.delete_link(link_id)
        self._deindex_node(node)
        del self._nodes[node_id]
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        self._origins.pop(("node", node_id), None)
        self.stats.deletes += 1

    # -------------------------------------------------------------- indexing
    def _index_node(self, node: Node) -> None:
        for t in node.types:
            self._node_type_index.setdefault(str(t), set()).add(node.id)
            self.stats.node_types[str(t)] += 1
        for att, index in self._attr_indexes.items():
            for value in node.values(att):
                index.setdefault(value, set()).add(node.id)

    def _deindex_node(self, node: Node) -> None:
        for t in node.types:
            self._node_type_index.get(str(t), set()).discard(node.id)
            self.stats.node_types[str(t)] -= 1
        for att, index in self._attr_indexes.items():
            for value in node.values(att):
                index.get(value, set()).discard(node.id)

    def _index_link(self, link: Link) -> None:
        for t in link.types:
            self._link_type_index.setdefault(str(t), set()).add(link.id)
            self.stats.link_types[str(t)] += 1

    def _deindex_link(self, link: Link) -> None:
        for t in link.types:
            self._link_type_index.get(str(t), set()).discard(link.id)
            self.stats.link_types[str(t)] -= 1

    # ------------------------------------------------------------------ read
    def node(self, node_id: Id) -> Node:
        """Primary-key node lookup."""
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        return node

    def link(self, link_id: Id) -> Link:
        """Primary-key link lookup."""
        link = self._links.get(link_id)
        if link is None:
            raise UnknownLinkError(link_id)
        return link

    def has_node(self, node_id: Id) -> bool:
        """True if the node exists."""
        return node_id in self._nodes

    def has_link(self, link_id: Id) -> bool:
        """True if the link exists."""
        return link_id in self._links

    @property
    def num_nodes(self) -> int:
        """Node count."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Link count."""
        return len(self._links)

    def nodes_of_type(self, type_name: str) -> Iterator[Node]:
        """Secondary-index scan over a node type."""
        for node_id in sorted(self._node_type_index.get(type_name, ()), key=repr):
            yield self._nodes[node_id]

    def links_of_type(self, type_name: str) -> Iterator[Link]:
        """Secondary-index scan over a link type."""
        for link_id in sorted(self._link_type_index.get(type_name, ()), key=repr):
            yield self._links[link_id]

    def find_nodes(self, att: str, value: Any) -> Iterator[Node]:
        """Attribute-index lookup (attribute must be registered)."""
        index = self._attr_indexes.get(att)
        if index is None:
            raise ManagementError(
                f"attribute {att!r} is not indexed; registered: "
                f"{sorted(self._attr_indexes)}"
            )
        for node_id in sorted(index.get(value, ()), key=repr):
            yield self._nodes[node_id]

    def out_links(self, node_id: Id) -> Iterator[Link]:
        """Adjacency scan: outgoing links."""
        for link_id in self._out.get(node_id, ()):
            yield self._links[link_id]

    def in_links(self, node_id: Id) -> Iterator[Link]:
        """Adjacency scan: incoming links."""
        for link_id in self._in.get(node_id, ()):
            yield self._links[link_id]

    def origin_of(self, kind: str, record_id: Id) -> str | None:
        """Provenance of a record ('local', 'derived', or a site name)."""
        return self._origins.get((kind, record_id))

    def records_from(self, origin: str) -> tuple[set[Id], set[Id]]:
        """(node ids, link ids) owned by *origin*."""
        nodes = {rid for (kind, rid), o in self._origins.items()
                 if kind == "node" and o == origin}
        links = {rid for (kind, rid), o in self._origins.items()
                 if kind == "link" and o == origin}
        return nodes, links

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> SocialContentGraph:
        """A full logical graph over the current store contents."""
        graph = SocialContentGraph()
        for node in self._nodes.values():
            graph.add_node(node)
        for link in self._links.values():
            graph.add_link(link)
        return graph

    def graph_stats(self) -> GraphStats:
        """Optimizer statistics reflecting the current contents."""
        return self.stats.as_graph_stats(self.num_nodes, self.num_links)

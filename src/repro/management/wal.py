"""The activity write-ahead log: CRC-framed, segment-rotated, replayable.

Social content sites are write-heavy — votes, tags and comments arrive
continuously (PAPERS.md: Lerman's social-browsing measurements), so the
durability story cannot be "reload last night's snapshot": recovery is
*snapshot + replay the activity tail*.  This module is that tail.

Format
------

One record per line::

    <crc32 of payload, 8 hex chars> <compact JSON payload>\\n

The payload always carries a monotone ``"seq"`` (assigned by the writer)
and an ``"op"`` (``node`` / ``link`` / ``del_node`` / ``del_link``); the
rest is the record codec from :mod:`repro.core.serialize` plus the
record's provenance ``origin``.  Strict JSON throughout
(:func:`repro.core.serialize.dumps_strict`) — a non-finite float fails at
append time, never at recovery time.

Segments are named ``wal-<start seq, 12 digits>.log`` and rotate once
they pass ``segment_max_bytes``; rotation fsyncs the finished segment
(and the directory entry) before the next one opens, so a rotated
segment is durable in order.  ``sync()`` fsyncs the active segment —
checkpoints call it so the manifest never references records the disk
does not hold.

Recovery (:func:`read_wal`) distinguishes two kinds of damage:

* a **torn tail** — the last record(s) of the final segment are partial
  or fail their CRC, with no valid record after them: the crash landed
  mid-append.  The tail is reported (and optionally truncated away) and
  replay proceeds with everything before it;
* **mid-log corruption** — a bad record *followed by* valid ones, or
  damage in a non-final segment: that is not a crash artifact, and
  recovery refuses with :class:`~repro.errors.WalCorruptedError` rather
  than silently dropping acknowledged writes.

Replay is idempotent by construction: every record carries its ``seq``
and appliers skip records at or below the store's ``applied_seq`` high
watermark, so replaying a segment twice (or replaying records the
snapshot already covers) is a no-op.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.faults import fault_point
from repro.core.serialize import dumps_strict, loads_strict
from repro.errors import PersistenceError, WalCorruptedError

#: Operation tags one WAL record can carry.
OP_NODE = "node"
OP_LINK = "link"
OP_DEL_NODE = "del_node"
OP_DEL_LINK = "del_link"

OPS = (OP_NODE, OP_LINK, OP_DEL_NODE, OP_DEL_LINK)

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def segment_name(start_seq: int) -> str:
    """The file name of the segment whose first record is *start_seq*."""
    return f"{_SEGMENT_PREFIX}{start_seq:012d}{_SEGMENT_SUFFIX}"


def list_segments(directory: str | Path) -> list[Path]:
    """All WAL segments under *directory*, in seq order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith(_SEGMENT_PREFIX)
        and p.name.endswith(_SEGMENT_SUFFIX)
    )


def frame_record(payload: dict[str, Any]) -> str:
    """One CRC-framed WAL line (newline included)."""
    body = dumps_strict(payload, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n"


def unframe_record(line: str) -> dict[str, Any] | None:
    """Parse one framed line; ``None`` when the frame does not verify.

    ``None`` covers every torn-tail shape — short line, missing
    separator, CRC mismatch, truncated JSON — because at the framing
    layer they are indistinguishable; the *reader* decides whether a bad
    frame is a tail (truncate) or mid-log damage (refuse).
    """
    line = line.rstrip("\n")
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        record = loads_strict(body)
    except Exception:
        return None
    if not isinstance(record, dict):
        return None
    return record


@dataclass(frozen=True)
class WalTail:
    """Where a torn tail starts: the segment and the byte offset of the
    first unreadable frame (everything before it replayed cleanly)."""

    segment: Path
    offset: int
    #: records successfully read before the tear, across all segments
    records_before: int


class WalWriter:
    """Appends CRC-framed activity records into rotating segments.

    The writer owns the sequence counter: ``append`` stamps each payload
    with the next ``seq`` and returns it.  A writer opened over an
    existing log continues *after* the given ``next_seq`` watermark in a
    fresh segment — it never appends into a segment another incarnation
    wrote (a truncated-then-extended segment could otherwise interleave
    two crash histories).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        next_seq: int = 1,
        segment_max_bytes: int = 1 << 20,
        fsync_every_append: bool = False,
    ):
        if next_seq < 1:
            raise PersistenceError(
                f"next_seq must be >= 1, got {next_seq!r}"
            )
        if segment_max_bytes < 1:
            raise PersistenceError(
                f"segment_max_bytes must be positive, got "
                f"{segment_max_bytes!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_every_append = fsync_every_append
        self._next_seq = next_seq
        self._closed = False
        self._handle = None
        self._segment_path: Path | None = None
        self._segment_bytes = 0

    # -- segment lifecycle -------------------------------------------------

    def _open_segment(self) -> None:
        self._segment_path = self.directory / segment_name(self._next_seq)
        if self._segment_path.exists():
            # An empty segment is a crash artifact (opened, nothing
            # flushed) — safe to supersede.  One with records is not.
            if self._segment_path.stat().st_size > 0:
                raise PersistenceError(
                    f"segment {self._segment_path} already exists — "
                    f"refusing to overwrite another writer's records"
                )
            self._segment_path.unlink()
        self._handle = open(self._segment_path, "w")
        self._segment_bytes = 0

    def _fsync_handle(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        fault_point("wal.fsync", path=self._segment_path)
        os.fsync(self._handle.fileno())

    def _fsync_directory(self) -> None:
        # POSIX: a new file is durable only once its directory entry is.
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def rotate(self) -> None:
        """Seal the active segment durably; the next append opens a new one."""
        if self._handle is not None:
            self._fsync_handle()
            self._handle.close()
            self._handle = None
            self._segment_path = None
            self._fsync_directory()

    def sync(self) -> None:
        """Make everything appended so far durable (fsync, no rotation)."""
        if self._handle is not None:
            self._fsync_handle()

    def close(self) -> None:
        """Seal and stop; the writer cannot append afterwards (the seq
        counters stay readable — a successor continues from last_seq)."""
        self.rotate()
        self._closed = True

    # -- appending ---------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next append will carry."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """The highest sequence number appended so far (0 before any)."""
        return self._next_seq - 1

    def append(self, op: str, payload: dict[str, Any]) -> int:
        """Append one record; returns its assigned ``seq``.

        The line is written and flushed to the OS before returning (a
        process crash loses nothing acknowledged); ``fsync_every_append``
        upgrades that to full durability per record at the obvious cost.
        """
        if self._closed:
            raise PersistenceError("WAL writer is closed")
        if op not in OPS:
            raise PersistenceError(f"unknown WAL op {op!r}; have {OPS}")
        if self._handle is None:
            self._open_segment()
        assert self._handle is not None
        seq = self._next_seq
        record = {"seq": seq, "op": op, **payload}
        line = frame_record(record)
        self._handle.write(line)
        self._handle.flush()
        if self.fsync_every_append:
            self._fsync_handle()
        self._next_seq += 1
        self._segment_bytes += len(line.encode("utf-8"))
        if self._segment_bytes >= self.segment_max_bytes:
            self.rotate()
        return seq

    def append_many(self, records: Iterable[tuple[str, dict[str, Any]]]) -> int:
        """Append a batch; returns the last assigned seq (0 for empty)."""
        last = self.last_seq
        for op, payload in records:
            last = self.append(op, payload)
        return last


# ---------------------------------------------------------------------------
# Reading / recovery
# ---------------------------------------------------------------------------


def _read_segment(path: Path) -> tuple[list[dict[str, Any]], int | None]:
    """(records, torn_offset): torn_offset is where the first bad frame
    starts, or None for a clean segment.  Raises on mid-file damage."""
    records: list[dict[str, Any]] = []
    offset = 0
    torn_at: int | None = None
    with open(path, "rb") as handle:
        for raw in handle:
            line = raw.decode("utf-8", errors="replace")
            record = unframe_record(line)
            if record is None or "seq" not in record or "op" not in record:
                if torn_at is None:
                    torn_at = offset
            elif torn_at is not None:
                # valid frame after a bad one: not a crash tail
                raise WalCorruptedError(
                    f"{path}: corrupt record at byte {torn_at} is followed "
                    f"by valid records — mid-log damage, refusing to "
                    f"silently drop acknowledged writes"
                )
            else:
                records.append(record)
            offset += len(raw)
    return records, torn_at


def read_wal(
    directory: str | Path,
) -> tuple[list[dict[str, Any]], WalTail | None]:
    """Every replayable record under *directory*, in seq order.

    A torn tail on the **final** segment is tolerated and described by
    the returned :class:`WalTail`; damage anywhere else raises
    :class:`~repro.errors.WalCorruptedError`.
    """
    segments = list_segments(directory)
    all_records: list[dict[str, Any]] = []
    tail: WalTail | None = None
    for index, segment in enumerate(segments):
        records, torn_at = _read_segment(segment)
        if torn_at is not None:
            if index != len(segments) - 1:
                raise WalCorruptedError(
                    f"{segment}: torn records in a non-final segment — "
                    f"the following segment exists, so this is not a "
                    f"crash tail"
                )
            tail = WalTail(
                segment=segment,
                offset=torn_at,
                records_before=len(all_records) + len(records),
            )
        all_records.extend(records)
    return all_records, tail


def truncate_torn_tail(tail: WalTail) -> None:
    """Cut a torn tail off its segment (and drop the segment if empty)."""
    if tail.offset == 0:
        tail.segment.unlink()
        return
    with open(tail.segment, "rb+") as handle:
        handle.truncate(tail.offset)
        handle.flush()
        os.fsync(handle.fileno())


def prune_segments(directory: str | Path, upto_seq: int) -> list[Path]:
    """Delete segments every record of which is covered by *upto_seq*.

    Called after a snapshot commits: records at or below the snapshot's
    ``applied_seq`` watermark are redundant with the snapshot, so any
    segment whose *successor's* start seq is ``<= upto_seq + 1`` (i.e.
    the segment holds nothing after the watermark) can go.  The active
    tail segment always survives.  Returns the deleted paths.
    """
    segments = list_segments(directory)
    deleted: list[Path] = []
    for segment, successor in zip(segments, segments[1:]):
        next_start = int(
            successor.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        )
        if next_start <= upto_seq + 1:
            segment.unlink()
            deleted.append(segment)
        else:
            break  # segments are ordered; later ones hold newer records
    return deleted


def iter_tail(
    records: Iterable[dict[str, Any]], applied_seq: int
) -> Iterator[dict[str, Any]]:
    """Records strictly after the *applied_seq* watermark (idempotency)."""
    for record in records:
        if record["seq"] > applied_seq:
            yield record

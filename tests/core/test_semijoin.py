"""Unit tests for ⋉δ and the anti-semi-join (paper Definition 6)."""

from __future__ import annotations

import pytest

from repro.core import (
    Link,
    Node,
    SocialContentGraph,
    anti_semi_join,
    select_links,
    select_nodes,
    semi_join,
)
from repro.errors import AlgebraError


class TestSemiJoin:
    def test_null_graph_right_side(self, tiny_travel_graph):
        # Example 4's idiom: G ⋉(src,src) σN_id=101(G) = John's outgoing links.
        g = tiny_travel_graph
        john = select_nodes(g, {"id": 101})
        result = semi_join(g, john, ("src", "src"))
        assert all(l.src == 101 for l in result.links())
        assert result.num_links == 4

    def test_direction_tgt_src(self, tiny_travel_graph):
        # Links into destinations: G ⋉(tgt,src) σN_type=destination(G).
        g = tiny_travel_graph
        dests = select_nodes(g, {"type": "destination"})
        result = semi_join(g, dests, ("tgt", "src"))
        assert result.num_links == 10  # the visit links
        assert all(str(l.tgt).startswith("d") for l in result.links())

    def test_link_to_link_matching(self, tiny_travel_graph):
        g = tiny_travel_graph
        friends = select_links(g, {"type": "friend"})
        visits = select_links(g, {"type": "visit"})
        # friend links whose tgt is someone who visited something
        result = semi_join(friends, visits, ("tgt", "src"))
        assert result.link_ids() == {"f1", "f2", "f3"}

    def test_no_match_returns_empty(self, tiny_travel_graph):
        g = tiny_travel_graph
        nobody = select_nodes(g, {"id": 999999})
        result = semi_join(g, nobody, ("src", "src"))
        assert result.is_empty()

    def test_null_graph_left_side(self, tiny_travel_graph):
        # Filtering a node set by who has visits: null ⋉ visits.
        g = tiny_travel_graph
        users = select_nodes(g, {"type": "user"})
        visits = select_links(g, {"type": "visit"})
        result = semi_join(users, visits, ("src", "src"))
        assert result.is_null_graph()
        assert result.node_ids() == {101, 102, 103, 104}

    def test_output_is_subgraph_of_left(self, tiny_travel_graph):
        g = tiny_travel_graph
        john = select_nodes(g, {"id": 101})
        result = semi_join(g, john, ("src", "src"))
        for link in result.links():
            assert g.has_link(link.id)
        for node in result.nodes():
            assert g.has_node(node.id)

    def test_invalid_direction_rejected(self, tiny_travel_graph):
        with pytest.raises(AlgebraError):
            semi_join(tiny_travel_graph, tiny_travel_graph, ("middle", "src"))


class TestAntiSemiJoin:
    def test_complements_semi_join(self, tiny_travel_graph):
        g = tiny_travel_graph
        john = select_nodes(g, {"id": 101})
        kept = semi_join(g, john, ("src", "src"))
        dropped = anti_semi_join(g, john, ("src", "src"))
        assert kept.link_ids() | dropped.link_ids() == g.link_ids()
        assert kept.link_ids() & dropped.link_ids() == set()

    def test_id_matching_mode(self):
        g1 = SocialContentGraph()
        for n in ("a", "b"):
            g1.add_node(Node(n, type="item"))
        g1.add_link(Link("l1", "a", "b", type="x"))
        g1.add_link(Link("l2", "a", "b", type="y"))
        g2 = SocialContentGraph()
        for n in ("a", "b"):
            g2.add_node(Node(n, type="item"))
        g2.add_link(Link("l1", "a", "b", type="x"))
        result = anti_semi_join(g1, g2, on="id")
        assert result.link_ids() == {"l2"}

    def test_null_graph_left(self, tiny_travel_graph):
        g = tiny_travel_graph
        users = select_nodes(g, {"type": "user"})
        visits = select_links(g, {"type": "visit"})
        result = anti_semi_join(users, visits, ("src", "src"))
        assert result.is_null_graph() and result.node_ids() == set()

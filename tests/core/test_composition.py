"""Unit tests for ∘⟨δ,F⟩ and class CF (paper Definition 5)."""

from __future__ import annotations

import pytest

from repro.core import (
    CarryScore,
    CopyAttrs,
    JaccardOnNodeSets,
    Link,
    Node,
    SocialContentGraph,
    compose,
)
from repro.errors import CompositionError


@pytest.fixture
def friend_visit_graphs():
    """G1: u1-friend->u2; G2: u2-visit->d1,d2 — the paper's link-agg example
    setup ('users and their friends' composed with 'users and cities')."""
    g1 = SocialContentGraph()
    for n, t in [("u1", "user"), ("u2", "user")]:
        g1.add_node(Node(n, type=t))
    g1.add_link(Link("f", "u1", "u2", type="friend", since=2008))

    g2 = SocialContentGraph()
    g2.add_node(Node("u2", type="user"))
    for d in ("d1", "d2"):
        g2.add_node(Node(d, type="city"))
        g2.add_link(Link(f"v-{d}", "u2", d, type="visit"))
    return g1, g2


class TestCompose:
    def test_friend_visit_composition(self, friend_visit_graphs):
        g1, g2 = friend_visit_graphs
        # δ=(tgt, src): friend link's target must equal visit link's source.
        result = compose(
            g1, g2, ("tgt", "src"),
            CopyAttrs(from_l1=("since",), type="user_friend_item"),
        )
        assert result.num_links == 2
        for link in result.links():
            assert link.src == "u1" and link.tgt in ("d1", "d2")
            assert link.has_type("user_friend_item")
            assert link.value("since") == 2008

    def test_one_link_per_matching_pair(self):
        # Two links sharing endpoints on each side: 2x2 = 4 composed links.
        g1 = SocialContentGraph()
        g2 = SocialContentGraph()
        for g in (g1, g2):
            for n in ("a", "b", "c"):
                g.add_node(Node(n, type="x"))
        g1.add_link(Link("l1", "a", "b", type="t"))
        g1.add_link(Link("l2", "a", "b", type="t"))
        g2.add_link(Link("r1", "b", "c", type="t"))
        g2.add_link(Link("r2", "b", "c", type="t"))
        result = compose(g1, g2, ("tgt", "src"), lambda l1, l2: {})
        assert result.num_links == 4

    def test_deterministic_link_ids(self, friend_visit_graphs):
        g1, g2 = friend_visit_graphs
        a = compose(g1, g2, ("tgt", "src"), lambda l1, l2: {})
        b = compose(g1, g2, ("tgt", "src"), lambda l1, l2: {})
        assert a.same_as(b)

    def test_delta_src_tgt(self, friend_visit_graphs):
        # δ=(src, tgt): match friend.src against visit.tgt — no matches here.
        g1, g2 = friend_visit_graphs
        result = compose(g1, g2, ("src", "tgt"), lambda l1, l2: {})
        assert result.is_empty()

    def test_f_can_veto_with_none(self, friend_visit_graphs):
        g1, g2 = friend_visit_graphs
        result = compose(
            g1, g2, ("tgt", "src"),
            lambda l1, l2: {} if l2.tgt == "d1" else None,
        )
        assert result.num_links == 1

    def test_f_must_return_mapping(self, friend_visit_graphs):
        g1, g2 = friend_visit_graphs
        with pytest.raises(CompositionError):
            compose(g1, g2, ("tgt", "src"), lambda l1, l2: 42)

    def test_null_graph_input_gives_empty(self, friend_visit_graphs):
        g1, _ = friend_visit_graphs
        null = SocialContentGraph()
        null.add_node(Node("u2", type="user"))
        assert compose(g1, null, ("tgt", "src"), lambda a, b: {}).is_empty()

    def test_endpoint_nodes_come_from_respective_sides(self, friend_visit_graphs):
        g1, g2 = friend_visit_graphs
        result = compose(g1, g2, ("tgt", "src"), lambda l1, l2: {})
        assert result.node("u1") == g1.node("u1")
        assert result.node("d1") == g2.node("d1")


class TestCompositionFunctions:
    def test_jaccard_on_node_sets(self):
        g1 = SocialContentGraph()
        g1.add_node(Node("john", type="user", vst=("d1", "d3")))
        g1.add_node(Node("p", type="place"))
        g1.add_link(Link("jv", "john", "p", type="visit"))
        g2 = SocialContentGraph()
        g2.add_node(Node("ann", type="user", vst=("d1", "d2", "d3")))
        g2.add_node(Node("p", type="place"))
        g2.add_link(Link("av", "ann", "p", type="visit"))
        result = compose(g1, g2, ("tgt", "tgt"), JaccardOnNodeSets("vst", "sim"))
        (link,) = result.links()
        assert link.value("sim") == pytest.approx(2 / 3)
        assert link.src == "john" and link.tgt == "ann"

    def test_carry_score(self):
        g1 = SocialContentGraph()
        for n in ("a", "b"):
            g1.add_node(Node(n, type="x"))
        g1.add_link(Link("m", "a", "b", type="match", sim=0.8))
        g2 = SocialContentGraph()
        for n in ("b", "c"):
            g2.add_node(Node(n, type="x"))
        g2.add_link(Link("v", "b", "c", type="visit"))
        result = compose(g1, g2, ("tgt", "src"), CarryScore("sim", "sim_sc"))
        (link,) = result.links()
        assert link.value("sim_sc") == 0.8

    def test_copy_attrs_constants(self):
        fn = CopyAttrs(type="abc", weight=2)
        out = fn(Link("x", 1, 2, type="t"), Link("y", 2, 3, type="t"))
        assert out["type"] == "abc" and out["weight"] == 2

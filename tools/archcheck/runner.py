"""Orchestrates the rule families over a source tree.

Library entry point is :func:`run_check`; the CLI in ``__main__``
wraps it.  Kept separate so the archcheck self-tests (and the
benchmarks conftest gate) can run individual rule families over fixture
trees without shelling out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from tools.archcheck.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from tools.archcheck.concurrency import check_concurrency
from tools.archcheck.config import Config, load_config
from tools.archcheck.determinism import check_determinism
from tools.archcheck.findings import Finding, Module, collect_modules
from tools.archcheck.layering import check_layering
from tools.archcheck.purity import check_purity

RULE_FAMILIES = {
    "layering": check_layering,
    "concurrency": check_concurrency,
    "determinism": check_determinism,
    "purity": check_purity,
}


@dataclass
class Report:
    """Outcome of one archcheck run."""

    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.active and not self.stale

    def render(self) -> str:
        lines: list[str] = []
        for finding in sorted(
            self.active, key=lambda f: (f.path, f.line, f.rule)
        ):
            lines.append(finding.render())
        for finding in sorted(
            self.suppressed, key=lambda f: (f.path, f.line, f.rule)
        ):
            lines.append(f"[baselined] {finding.render()}")
        for entry in self.stale:
            lines.append(
                f"STALE baseline entry {entry.fingerprint!r}: no finding "
                f"matches it any more — delete it ({entry.reason})"
            )
        lines.append(
            f"archcheck: {len(self.active)} active, "
            f"{len(self.suppressed)} baselined, "
            f"{len(self.stale)} stale baseline entries"
        )
        return "\n".join(lines)


def run_rules(
    modules: list[Module],
    config: Config,
    rules: tuple[str, ...] = tuple(RULE_FAMILIES),
) -> list[Finding]:
    """Raw findings from the selected rule families, baseline-free."""
    findings: list[Finding] = []
    for name in rules:
        findings.extend(RULE_FAMILIES[name](modules, config))
    return findings


def check_paths(
    paths: list[Path],
    repo_root: Path,
    config: Config,
    rules: tuple[str, ...] = tuple(RULE_FAMILIES),
    baseline_path: Path | None = None,
) -> Report:
    modules: list[Module] = []
    for path in paths:
        root = path if path.is_dir() else path.parent
        modules.extend(
            collect_modules(root, repo_root, layer_root=config.layer_root)
        )
    findings = run_rules(modules, config, rules)
    entries = load_baseline(baseline_path) if baseline_path else []
    active, suppressed, stale = apply_baseline(findings, entries)
    return Report(active=active, suppressed=suppressed, stale=stale)


def run_check(
    paths: list[str],
    repo_root: Path | None = None,
    rules: tuple[str, ...] = tuple(RULE_FAMILIES),
    baseline: str | None = "tools/archcheck/baseline.json",
) -> Report:
    """CLI-shaped wrapper: strings in, config discovered from pyproject."""
    root = repo_root or Path.cwd()
    config = load_config(root / "pyproject.toml")
    baseline_path = (root / baseline) if baseline else None
    return check_paths(
        [Path(p) if Path(p).is_absolute() else root / p for p in paths],
        repo_root=root,
        config=config,
        rules=rules,
        baseline_path=baseline_path,
    )

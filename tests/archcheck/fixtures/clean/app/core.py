"""Fixture: a clean core module — no findings from any rule family."""


def fold(values):
    return sum(values)

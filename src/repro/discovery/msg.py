"""The Meaningful Social Graph (MSG) — the discovery layer's output (§3).

    "The result is a social content sub-graph, called Meaningful Social
    Graph (MSG), that is semantically and socially relevant to a given
    user and query."

An MSG is a genuine :class:`~repro.core.graph.SocialContentGraph` — the
querying user, the relevant items (annotated with semantic / social /
combined scores), the endorsing users, and the links among them (the social
provenance §7 builds groups and explanations from) — plus convenience
accessors the presentation layer uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id, Link, SocialContentGraph
from repro.discovery.query import Query
from repro.discovery.strategies import SocialScores


@dataclass
class ScoredItem:
    """One result item with its score decomposition."""

    item_id: Id
    semantic: float
    social: float
    combined: float


@dataclass
class MeaningfulSocialGraph:
    """The discovery result: subgraph + scores + provenance."""

    graph: SocialContentGraph
    query: Query
    items: list[ScoredItem] = field(default_factory=list)
    social: SocialScores | None = None
    used_expert_fallback: bool = False

    @property
    def item_ids(self) -> list[Id]:
        """Result item ids, best first."""
        return [s.item_id for s in self.items]

    def score_of(self, item_id: Id) -> float:
        """Combined score of one result item (0 when absent)."""
        for scored in self.items:
            if scored.item_id == item_id:
                return scored.combined
        return 0.0

    def endorsers_of(self, item_id: Id) -> dict[Id, float]:
        """Social provenance: endorsing users and their weights."""
        if self.social is None:
            return {}
        return dict(self.social.endorsers.get(item_id, {}))

    def taggers_of(self, item_id: Id) -> set[Id]:
        """Users with an activity link onto the item *within the MSG*."""
        return {
            l.src
            for l in self.graph.in_links(item_id)
            if l.has_type("act")
        }


def assemble_msg(
    base: SocialContentGraph,
    query: Query,
    scored_items: list[ScoredItem],
    social: SocialScores,
    used_expert_fallback: bool,
) -> MeaningfulSocialGraph:
    """Cut the MSG subgraph out of the base graph.

    Included: the user, every result item (annotated with scores), every
    endorsing user, the user's connect links to endorsers, endorsers'
    activity links onto result items, and items' ``belong`` links (topics,
    cities) so structural grouping has material to work with.
    """
    msg = SocialContentGraph(catalog=base.catalog)
    if base.has_node(query.user_id):
        msg.add_node(base.node(query.user_id))
    item_set = {s.item_id for s in scored_items}
    for scored in scored_items:
        node = base.node(scored.item_id).with_attrs(
            semantic_score=round(scored.semantic, 6),
            social_score=round(scored.social, 6),
            score=round(scored.combined, 6),
        )
        msg.add_node(node)
    endorser_set: set[Id] = set()
    for scored in scored_items:
        endorser_set.update(social.endorsers.get(scored.item_id, {}))
    for endorser in endorser_set:
        if base.has_node(endorser) and not msg.has_node(endorser):
            msg.add_node(base.node(endorser))
    for link in base.links():
        if link.has_type("act") and link.src in endorser_set and link.tgt in item_set:
            msg.add_link(link)
        elif (
            link.has_type("connect")
            and link.src == query.user_id
            and link.tgt in endorser_set
        ):
            msg.add_link(link)
        elif link.has_type("belong") and link.src in item_set:
            if not msg.has_node(link.tgt):
                msg.add_node(base.node(link.tgt))
            msg.add_link(link)
    return MeaningfulSocialGraph(
        graph=msg,
        query=query,
        items=scored_items,
        social=social,
        used_expert_fallback=used_expert_fallback,
    )

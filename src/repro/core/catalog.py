"""The evolving catalog of basic node and link types (paper §4).

    "We also maintain an evolving catalog of basic types, including ``user``,
    ``item``, ``topic``, ``group`` for nodes and ``connect`` (e.g., friend),
    ``act`` (e.g., tag, review, click, etc.), ``match``, ``belong`` for
    links."

The catalog is *advisory*: the typing system is schema-less and new types can
be created freely (e.g. by content analysis).  The catalog records, for each
basic type, its kind (node/link) and known refinements, and offers helpers to
classify arbitrary type tuples into the paper's three overlay sub-graphs
(activity graph, network graph, topical graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

# ---------------------------------------------------------------------------
# Basic node types
# ---------------------------------------------------------------------------

USER = "user"
ITEM = "item"
TOPIC = "topic"
GROUP = "group"

BASIC_NODE_TYPES: frozenset[str] = frozenset({USER, ITEM, TOPIC, GROUP})

# ---------------------------------------------------------------------------
# Basic link types and their common refinements
# ---------------------------------------------------------------------------

CONNECT = "connect"  # social connections: friend, contact, classmate...
ACT = "act"          # activities: tag, review, click, visit, rate, share...
MATCH = "match"      # derived similarity / matching links
BELONG = "belong"    # membership links into topics / groups

BASIC_LINK_TYPES: frozenset[str] = frozenset({CONNECT, ACT, MATCH, BELONG})

#: Common refinements seen in the paper's examples.
DEFAULT_REFINEMENTS: dict[str, frozenset[str]] = {
    CONNECT: frozenset({"friend", "contact", "classmate", "colleague", "follows"}),
    ACT: frozenset({"tag", "review", "click", "visit", "rate", "share", "browse"}),
    MATCH: frozenset({"similar", "sim_user", "sim_item"}),
    BELONG: frozenset({"member", "topic_of", "category_of", "contains"}),
}


@dataclass
class TypeCatalog:
    """Mutable, evolving registry of node/link types.

    The Content Analyzer registers new derived types here (e.g. a freshly
    mined ``topic`` refinement); the Data Manager consults it to route links
    into the activity/network/topical overlay views.
    """

    node_types: set[str] = field(default_factory=lambda: set(BASIC_NODE_TYPES))
    link_types: set[str] = field(default_factory=lambda: set(BASIC_LINK_TYPES))
    refinements: dict[str, set[str]] = field(
        default_factory=lambda: {k: set(v) for k, v in DEFAULT_REFINEMENTS.items()}
    )

    # -- registration -------------------------------------------------------

    def register_node_type(self, type_name: str) -> None:
        """Add a new basic node type (idempotent)."""
        self.node_types.add(type_name)

    def register_link_type(self, type_name: str, base: str | None = None) -> None:
        """Add a new link type, optionally as a refinement of *base*.

        Registering ``register_link_type('endorse', base='act')`` makes
        ``endorse`` links participate in the activity overlay graph.
        """
        if base is not None:
            if base not in self.link_types:
                self.link_types.add(base)
            self.refinements.setdefault(base, set()).add(type_name)
        else:
            self.link_types.add(type_name)

    # -- classification -----------------------------------------------------

    def base_of(self, type_values: Iterable[str]) -> str | None:
        """Return the basic link type implied by a link's type tuple.

        A link typed ``('act', 'tag')`` is based on ``act``; a link typed
        just ``('friend',)`` resolves through the refinement table to
        ``connect``.  Returns ``None`` when nothing matches.
        """
        values = set(type_values)
        for base in values & self.link_types & BASIC_LINK_TYPES:
            return base
        for base, refs in self.refinements.items():
            if values & refs:
                return base
        # Custom bases registered without refinement info.
        for base in values & self.link_types:
            return base
        return None

    def is_activity(self, type_values: Iterable[str]) -> bool:
        """True when the type tuple denotes a user-on-item activity link."""
        return self.base_of(type_values) == ACT

    def is_connection(self, type_values: Iterable[str]) -> bool:
        """True when the type tuple denotes a social connection link."""
        return self.base_of(type_values) == CONNECT

    def is_topical(self, type_values: Iterable[str]) -> bool:
        """True when the type tuple denotes a belong/topic membership link."""
        return self.base_of(type_values) == BELONG

    def is_match(self, type_values: Iterable[str]) -> bool:
        """True when the type tuple denotes a derived match/similarity link."""
        return self.base_of(type_values) == MATCH


#: A process-wide default catalog; graphs hold their own reference but
#: share this one unless told otherwise.
DEFAULT_CATALOG = TypeCatalog()

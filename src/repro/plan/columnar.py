"""Columnar shard views and vectorized selection.

The row-at-a-time executor spends most of a large σN/σL testing nodes a
columnar layout could rule out wholesale: every predicate test re-reads
the same attribute dictionaries, every shard view re-materialises the
same per-type node lists, and every operator boundary rebuilds a full
:class:`~repro.core.graph.SocialContentGraph` of records the next
operator immediately re-filters.  This module is the execution substrate
underneath the plan layer's scan family:

* :class:`ColumnarShardView` — one partition's population held as
  columns: a row-ordered node array, partition-local **type buckets**
  (contiguous position ranges where the population permits, plain sorted
  position arrays otherwise), lazily built **dictionary-encoded attribute
  columns** (rows → interned value-tuple codes), lazily built **term
  postings** (token → positions, the keyword-scope pruning set), and
  lazily built **attribute-value postings** (scalar value → positions,
  the physical form behind the attribute-index access path).  Everything
  derived is cut once per graph generation and shared by every plan that
  executes against it.
* :class:`VectorCondition` — a selection condition compiled once per
  physical operator into a vectorized evaluator: bucket intersections for
  type pins, code-table lookups for attribute predicates (the predicate
  runs once per *distinct* value tuple, then broadcasts over the column),
  posting unions for keyword scopes, and a row-wise residual for the
  opaque rest (lambdas, disjunctions).  Operators exchange the resulting
  compact position sets; real :class:`~repro.core.graph.Node` records are
  only gathered — and scored — for the survivors, so a graph is assembled
  once, at the pipeline boundary that needs one.

Parity contract: for any condition and scorer, ``VectorCondition.select``
returns exactly the records (same objects or equal copies, same order)
that :func:`repro.core.selection.select_matching_nodes` returns over the
same population — the differential suite in
``tests/plan/test_columnar.py`` holds the two equal.  Vectorized
predicate evaluation calls the *same* ``Predicate.matches`` logic per
distinct value, so the semantics cannot drift.

NumPy is used when available (it ships with the toolchain); without it
every entry point degrades to the row-wise kernels with identical
results.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

try:  # vectorized path; the row-wise fallback below needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always bakes numpy in
    _np = None

from repro.core.attrs import SCORE_ATTR
from repro.core.conditions import (
    AttrCompare,
    AttrEquals,
    Condition,
    HasAttr,
    HasType,
    Predicate,
    TruePredicate,
)
from repro.core.graph import Link, Node, SocialContentGraph
from repro.core.scoring import resolve_scorer
from repro.core.selection import select_matching_links, select_matching_nodes
from repro.core.text import term_variants, tokenize


def _positions_array(positions: list) -> Any:
    """A compact, sorted position set (ascending row order)."""
    if _np is not None:
        return _np.asarray(positions, dtype=_np.intp)
    return positions


class AttrColumn:
    """One attribute's dictionary-encoded column over a view's rows.

    ``codes[row]`` indexes into ``distinct`` — the interned value tuples,
    with the empty tuple (attribute absent) always present as code 0.  A
    predicate over the attribute evaluates once per distinct tuple and
    broadcasts the boolean over the codes, which is where the columnar
    win comes from: a 20k-row population typically carries a few dozen
    distinct type/category/rating tuples.
    """

    __slots__ = ("codes", "distinct", "tables")

    def __init__(self, records: Sequence[Any], att: str):
        # *records* are Nodes or Links — the column only reads ``.attrs``,
        # so the same encoding serves σN and σL populations.
        interned: dict[tuple, int] = {(): 0}
        codes = [0] * len(records)
        for row, node in enumerate(records):
            values = node.attrs.get(att, ())
            code = interned.get(values)
            if code is None:
                code = interned.setdefault(values, len(interned))
            codes[row] = code
        self.distinct: tuple[tuple, ...] = tuple(interned)
        self.codes = (
            _np.asarray(codes, dtype=_np.intp) if _np is not None else codes
        )
        #: structural predicate key → cached per-distinct-code truth
        #: table.  Keyed by the predicate's structural repr (faithful for
        #: the column-evaluable predicate classes), not object identity,
        #: so the cache survives plan eviction and can never serve a
        #: recycled-address collision.
        self.tables: dict[str, Any] = {}


class _ValueStub:
    """A minimal element exposing one attribute's values to a predicate.

    Lets :class:`VectorCondition` reuse the *exact* ``Predicate.matches``
    implementations per distinct column value instead of re-implementing
    comparison semantics (numeric coercion, superset equality, absent
    attributes) a second time.
    """

    __slots__ = ("att", "tuple_values")

    def __init__(self, att: str):
        self.att = att
        self.tuple_values: tuple = ()

    def values(self, name: str) -> tuple:
        return self.tuple_values if name == self.att else ()

    def value(self, name: str, default: Any = None) -> Any:
        values = self.values(name)
        return values[0] if values else default


def _predicate_attribute(predicate: Predicate) -> str | None:
    """The single attribute a column-evaluable predicate reads, or None.

    ``id`` predicates read the element identity (not an attribute column)
    and stay row-wise; composite/opaque predicates return ``None``.
    """
    if isinstance(predicate, (AttrEquals, AttrCompare, HasAttr)):
        return predicate.att if predicate.att != "id" else None
    return None


class ColumnarShardView:
    """One partition's scatter view, held column-wise.

    ``nodes`` (and ``links``) are the row stores in graph iteration
    order; all derived structures — type buckets, attribute columns,
    term/value postings — build lazily on first use and live as long as
    the view (one graph generation).
    """

    __slots__ = (
        "nodes", "links",
        "_type_buckets", "_type_node_lists", "_link_type_lists",
        "_columns", "_term_postings", "_attr_postings",
        "_link_type_buckets", "_link_columns", "_link_term_postings",
    )

    def __init__(self, nodes: list[Node] | None = None,
                 links: list[Link] | None = None):
        self.nodes: list[Node] = nodes if nodes is not None else []
        self.links: list[Link] = links if links is not None else []
        self._type_buckets: dict[Any, Any] | None = None
        self._type_node_lists: dict[Any, list[Node]] = {}
        self._link_type_lists: dict[Any, list[Link]] | None = None
        self._columns: dict[str, AttrColumn] = {}
        self._term_postings: dict[str, Any] | None = None
        self._attr_postings: dict[str, dict[Any, Any]] = {}
        self._link_type_buckets: dict[Any, Any] | None = None
        self._link_columns: dict[str, AttrColumn] = {}
        self._link_term_postings: dict[str, Any] | None = None

    # -- node-side columns ----------------------------------------------------

    def type_buckets(self) -> dict[Any, Any]:
        """type value → sorted row positions (the partition-local index).

        Positions are contiguous ranges whenever the population arrives
        grouped by type (the common bulk-load layout) — they are stored
        as arrays either way, but stay cheap to intersect because they
        are always ascending.
        """
        if self._type_buckets is None:
            buckets: dict[Any, list[int]] = {}
            for row, node in enumerate(self.nodes):
                for type_value in node.attrs["type"]:
                    buckets.setdefault(type_value, []).append(row)
            self._type_buckets = {
                value: _positions_array(rows) for value, rows in buckets.items()
            }
        return self._type_buckets

    def type_bucket(self, type_value: Any) -> Any | None:
        """Positions of the rows carrying *type_value* (None bucket = ∅)."""
        return self.type_buckets().get(type_value)

    def type_bucket_nodes(self, type_value: Any) -> list[Node]:
        """The bucket materialised as records (cached: covered scans
        return this list verbatim on every execution)."""
        cached = self._type_node_lists.get(type_value)
        if cached is None:
            bucket = self.type_bucket(type_value)
            nodes = self.nodes
            cached = [nodes[row] for row in bucket] if bucket is not None else []
            self._type_node_lists[type_value] = cached
        return cached

    def column(self, att: str) -> AttrColumn:
        """The dictionary-encoded column of *att* (built on first use)."""
        column = self._columns.get(att)
        if column is None:
            column = AttrColumn(self.nodes, att)
            self._columns[att] = column
        return column

    def term_postings(self) -> dict[str, Any]:
        """token → row positions whose text contains the token.

        One tokenisation pass over the partition, paid only by the first
        keyword-scoped plan of a generation; every later keyword scope
        prunes its candidate set from these postings instead of
        re-tokenising the population.
        """
        if self._term_postings is None:
            postings: dict[str, list[int]] = {}
            for row, node in enumerate(self.nodes):
                for token in set(tokenize(node.text())):
                    postings.setdefault(token, []).append(row)
            self._term_postings = {
                token: _positions_array(rows)
                for token, rows in postings.items()
            }
        return self._term_postings

    def attr_postings(self, att: str) -> dict[Any, Any]:
        """scalar value → row positions whose *att* values contain it.

        The per-shard sorted postings behind the attribute-index access
        path: the same shape the
        :class:`~repro.management.storage.GraphStore` maintains for its
        registered attributes, cut from the live view so derived nodes
        participate too.
        """
        postings = self._attr_postings.get(att)
        if postings is None:
            raw: dict[Any, list[int]] = {}
            for row, node in enumerate(self.nodes):
                for value in node.attrs.get(att, ()):
                    raw.setdefault(value, []).append(row)
            postings = {
                value: _positions_array(rows) for value, rows in raw.items()
            }
            self._attr_postings[att] = postings
        return postings

    def attr_posting_nodes(self, att: str, value: Any) -> list[Node]:
        """Records whose *att* values contain *value* (row order)."""
        bucket = self.attr_postings(att).get(value)
        if bucket is None:
            return []
        nodes = self.nodes
        return [nodes[row] for row in bucket]

    # -- link-side columns ----------------------------------------------------

    def link_type_buckets(self) -> dict[Any, Any]:
        """link type value → sorted row positions into ``links``.

        The σL twin of :meth:`type_buckets`: the positional form the
        vectorized link path intersects (the record-list form below stays
        for the row-wise pruned kernel).
        """
        if self._link_type_buckets is None:
            buckets: dict[Any, list[int]] = {}
            for row, link in enumerate(self.links):
                for type_value in link.attrs["type"]:
                    buckets.setdefault(type_value, []).append(row)
            self._link_type_buckets = {
                value: _positions_array(rows) for value, rows in buckets.items()
            }
        return self._link_type_buckets

    def link_type_bucket(self, type_value: Any) -> Any | None:
        """Positions of the links carrying *type_value* (None bucket = ∅)."""
        return self.link_type_buckets().get(type_value)

    def link_column(self, att: str) -> AttrColumn:
        """The dictionary-encoded link column of *att* (built on first use)."""
        column = self._link_columns.get(att)
        if column is None:
            column = AttrColumn(self.links, att)
            self._link_columns[att] = column
        return column

    def link_term_postings(self) -> dict[str, Any]:
        """token → link row positions whose text contains the token."""
        if self._link_term_postings is None:
            postings: dict[str, list[int]] = {}
            for row, link in enumerate(self.links):
                for token in set(tokenize(link.text())):
                    postings.setdefault(token, []).append(row)
            self._link_term_postings = {
                token: _positions_array(rows)
                for token, rows in postings.items()
            }
        return self._link_term_postings

    # -- precomputed-index adoption (process workers) -------------------------

    def adopt_precomputed(
        self,
        type_buckets: dict[Any, Any] | None = None,
        term_postings: dict[str, Any] | None = None,
        link_type_buckets: dict[Any, Any] | None = None,
    ) -> None:
        """Install pre-built position indexes instead of deriving them.

        The process backend ships each shard's type buckets, term
        postings and link-type buckets as one shared-memory slab; worker
        processes rebuild their views around the attached positions
        (zero-copy) rather than re-bucketing and re-tokenising the
        population.  The adopted dicts must be exactly what the lazy
        builders would produce — the coordinator packs them from its own
        views, so they are.
        """
        if type_buckets is not None:
            self._type_buckets = type_buckets
        if term_postings is not None:
            self._term_postings = term_postings
        if link_type_buckets is not None:
            self._link_type_buckets = link_type_buckets

    # -- link-side buckets ----------------------------------------------------

    def link_type_lists(self) -> dict[Any, list[Link]]:
        """link type value → links of the partition carrying it."""
        if self._link_type_lists is None:
            lists: dict[Any, list[Link]] = {}
            for link in self.links:
                for type_value in link.attrs["type"]:
                    lists.setdefault(type_value, []).append(link)
            self._link_type_lists = lists
        return self._link_type_lists

    def link_population(self, type_value: Any | None) -> list[Link]:
        """Links a selection pinning *type_value* must consider."""
        if type_value is None:
            return self.links
        return self.link_type_lists().get(type_value, [])

    # -- back-compat with the PR 4 row view -----------------------------------

    def population(self, type_name: Any | None) -> list[Node]:
        """Nodes a selection pinning *type_name* must consider."""
        if type_name is None:
            return self.nodes
        return self.type_bucket_nodes(type_name)


def cut_columnar_views(
    graph: SocialContentGraph,
    num_shards: int,
    shard_of: Callable[[Any, int], int],
) -> tuple[ColumnarShardView, ...]:
    """Partition a graph's nodes and links into columnar scatter views.

    Nodes hash by id through *shard_of*; links ride with their source
    node (the same placement the partitioned store uses, so outgoing
    adjacency stays view-local).  One pass per graph generation pays for
    every columnar scan of that generation.
    """
    views = tuple(ColumnarShardView() for _ in range(num_shards))
    if num_shards == 1:
        view = views[0]
        view.nodes.extend(graph.nodes())
        view.links.extend(graph.links())
        return views
    for node in graph.nodes():
        views[shard_of(node.id, num_shards)].nodes.append(node)
    for link in graph.links():
        views[shard_of(link.src, num_shards)].links.append(link)
    return views


class VectorCondition:
    """A selection condition compiled for columnar evaluation.

    Splits the condition's conjuncts into three tiers:

    * **bucket predicates** (type pins) — intersect the partition-local
      type buckets;
    * **column predicates** (attribute equality/comparison/presence) —
      evaluate once per distinct interned value tuple, broadcast over the
      column codes;
    * **residual predicates** (lambdas, nested boolean combinations,
      ``id`` tests) — row-wise over the already-pruned survivors.

    Keyword scopes prune through the view's term postings (the exact
    token-membership semantics of ``Condition.keyword_ok``); scoring runs
    only over the final survivors.  Compiled once per physical operator
    and reused across shards, executions and generations — the object is
    a pure function of the condition.
    """

    __slots__ = ("cond", "bucket_types", "column_preds", "residual",
                 "_shippable")

    def __init__(self, cond: Condition):
        self._shippable: bool | None = None
        self.cond = cond
        bucket_types: list[Any] = []
        column_preds: list[tuple[str, Predicate]] = []
        residual: list[Predicate] = []
        for predicate in cond.predicates:
            if isinstance(predicate, TruePredicate):
                continue
            if isinstance(predicate, HasType):
                bucket_types.append(predicate.type_name)
                continue
            att = _predicate_attribute(predicate)
            if att is not None:
                column_preds.append((att, predicate))
            else:
                residual.append(predicate)
        self.bucket_types = tuple(bucket_types)
        self.column_preds = tuple(column_preds)
        self.residual = tuple(residual)

    # -- evaluation ------------------------------------------------------------

    def _column_table(self, column: AttrColumn, att: str,
                      predicate: Predicate) -> Any:
        """Per-distinct-code truth table of *predicate* over *column*.

        Cached on the column under the predicate's structural repr —
        repeated executions of a cached plan (or of any plan carrying an
        equal predicate) reuse the table instead of re-evaluating the
        predicate per distinct value on every call.  The reprs of the
        column-evaluable predicate classes (:class:`AttrEquals`,
        :class:`AttrCompare`, :class:`HasAttr`) are faithful to their
        semantics, so equal keys imply equal tables.
        """
        key = repr(predicate)
        cached = column.tables.get(key)
        if cached is not None:
            return cached
        stub = _ValueStub(att)
        table = []
        matches = predicate.matches
        for values in column.distinct:
            stub.tuple_values = values
            table.append(matches(stub))
        if _np is not None:
            table = _np.asarray(table, dtype=bool)
        column.tables[key] = table
        return table

    def _keyword_mask(self, postings: dict[str, Any], size: int) -> Any:
        """Union of the query terms' posting sets, as a row mask."""
        mask = _np.zeros(size, dtype=bool)
        for term in self.cond.keywords:
            for variant in term_variants(term):
                rows = postings.get(variant)
                if rows is not None:
                    mask[rows] = True
        return mask

    def _masked_positions(
        self,
        size: int,
        bucket: Callable[[Any], Any | None],
        column: Callable[[str], AttrColumn],
        postings: Callable[[], dict[str, Any]],
    ) -> Any:
        """The shared vectorized core: buckets ∧ columns ∧ keywords.

        Parameterised by the view accessors so the node and link paths
        run the identical mask algebra over their own structures.
        """
        if size == 0:
            return _np.empty(0, dtype=_np.intp)
        mask: Any = None
        for type_value in self.bucket_types:
            rows = bucket(type_value)
            if rows is None or len(rows) == 0:
                return _np.empty(0, dtype=_np.intp)
            typed = _np.zeros(size, dtype=bool)
            typed[rows] = True
            mask = typed if mask is None else mask & typed
        for att, predicate in self.column_preds:
            col = column(att)
            table = self._column_table(col, att, predicate)
            hits = table[col.codes]
            mask = hits if mask is None else mask & hits
        if self.cond.has_keywords:
            keyword = self._keyword_mask(postings(), size)
            mask = keyword if mask is None else mask & keyword
        if mask is None:
            return _np.arange(size, dtype=_np.intp)
        return _np.nonzero(mask)[0]

    def candidate_positions(self, view: ColumnarShardView) -> Any | None:
        """Sorted node row positions surviving every vectorizable conjunct.

        ``None`` means the vectorized path is unavailable (no NumPy) and
        the caller should fall back to the row kernel.  Residual
        predicates are *not* applied here — the caller row-tests them
        over this pruned set.
        """
        if _np is None:
            return None
        return self._masked_positions(
            len(view.nodes), view.type_bucket, view.column,
            view.term_postings,
        )

    def candidate_link_positions(self, view: ColumnarShardView) -> Any | None:
        """Sorted *link* row positions surviving the vectorizable conjuncts.

        The σL mirror of :meth:`candidate_positions`: type pins intersect
        the link-type buckets, attribute predicates broadcast over the
        link columns, keyword scopes prune through the link term
        postings.  Residuals stay with the caller, as on the node side.
        """
        if _np is None:
            return None
        return self._masked_positions(
            len(view.links), view.link_type_bucket, view.link_column,
            view.link_term_postings,
        )

    def _filter_residual(self, records: Sequence[Any], positions: Any) -> Any:
        """Row-test the residual predicates over the candidate positions."""
        residual = self.residual
        if not residual:
            return positions
        return _positions_array([
            int(row) for row in positions
            if all(p.matches(records[row]) for p in residual)
        ])

    def node_survivors(self, view: ColumnarShardView) -> Sequence[int]:
        """Final surviving node rows: vectorized candidates ∧ residuals.

        The position-set form of :meth:`select` — what a process worker
        ships back over the pipe.  Row order is the view's node order, so
        a coordinator holding an identically-cut view gathers the very
        records :meth:`select` would.  Without NumPy the same set falls
        out of a row-wise pass.
        """
        positions = self.candidate_positions(view)
        if positions is None:
            cond = self.cond
            return [row for row, node in enumerate(view.nodes)
                    if cond.satisfied_by(node)]
        return self._filter_residual(view.nodes, positions)

    def link_survivors(self, view: ColumnarShardView) -> Sequence[int]:
        """Final surviving link rows (the σL twin of node_survivors)."""
        positions = self.candidate_link_positions(view)
        if positions is None:
            cond = self.cond
            return [row for row, link in enumerate(view.links)
                    if cond.satisfied_by(link)]
        return self._filter_residual(view.links, positions)

    def gather_nodes(self, view: ColumnarShardView,
                     positions: Sequence[int],
                     scorer: Any = None) -> list[Node]:
        """Materialise (and score) surviving node rows, in row order."""
        nodes = view.nodes
        cond = self.cond
        want_scores = scorer is not None or cond.has_keywords
        selected: list[Node] = []
        append = selected.append
        if not want_scores:
            for row in positions:
                append(nodes[row])
            return selected
        scoring = resolve_scorer(scorer)
        keywords = cond.keywords
        for row in positions:
            node = nodes[row]
            append(node._with_normalized(
                {SCORE_ATTR: (float(scoring(node, keywords)),)}
            ))
        return selected

    def gather_links(self, view: ColumnarShardView,
                     positions: Sequence[int],
                     scorer: Any = None) -> list[Link]:
        """Materialise (and score) surviving link rows, in row order."""
        links = view.links
        cond = self.cond
        want_scores = scorer is not None or cond.has_keywords
        selected: list[Link] = []
        append = selected.append
        if not want_scores:
            for row in positions:
                append(links[row])
            return selected
        scoring = resolve_scorer(scorer)
        keywords = cond.keywords
        for row in positions:
            link = links[row]
            append(link.with_score(scoring(link, keywords)))
        return selected

    def shippable(self) -> bool:
        """True when the condition can cross a process boundary whole.

        The picklability contract of the process backend: bucket types,
        column predicates, keyword terms and residual predicates all ride
        inside the condition, so one successful pickle of the condition
        proves the entire compiled program ships.  Opaque residuals —
        closure lambdas, bound methods — fail here and pin the operator
        to the in-process (threads) path.  Cached: the object is a pure
        function of the condition.
        """
        cached = self._shippable
        if cached is None:
            try:
                pickle.dumps(self.cond, protocol=pickle.HIGHEST_PROTOCOL)
                cached = True
            except Exception:
                cached = False
            self._shippable = cached
        return cached

    def select(self, view: ColumnarShardView, scorer: Any = None) -> list[Node]:
        """σN over one view: the columnar twin of the row kernel.

        Returns exactly what
        :func:`~repro.core.selection.select_matching_nodes` returns over
        ``view.nodes`` — same records, same order — having tested only
        the rows the columns could not exclude.
        """
        positions = self.candidate_positions(view)
        if positions is None:  # no NumPy: row kernel over the pruned bucket
            population = (
                view.type_bucket_nodes(self.bucket_types[0])
                if self.bucket_types else view.nodes
            )
            return select_matching_nodes(population, self.cond, scorer)
        return self.gather_nodes(
            view, self._filter_residual(view.nodes, positions), scorer
        )

    def select_links(self, view: ColumnarShardView, scorer: Any = None,
                     prune_type: Any | None = None) -> list[Link]:
        """σL over one view's link population, vectorized like σN.

        Type pins, attribute predicates and keyword scopes evaluate over
        the link columns (buckets, dictionary codes, term postings);
        residuals row-test the pruned survivors — exactly the σN shape.
        Returns what :func:`~repro.core.selection.select_matching_links`
        returns over the (*prune_type*-pruned) population: same records,
        same order.
        """
        positions = self.candidate_link_positions(view)
        if positions is None:  # no NumPy: row kernel over the pruned bucket
            return select_matching_links(
                view.link_population(prune_type), self.cond, scorer
            )
        return self.gather_links(
            view, self._filter_residual(view.links, positions), scorer
        )


@dataclass(frozen=True)
class ScanProgram:
    """A compiled scan, in the form that crosses a process boundary.

    What the coordinator ships to a :class:`~repro.plan.parallel`
    worker instead of the operator object: the selection kind and the
    condition (from which the worker recompiles the identical
    :class:`VectorCondition` — bucket types, per-code truth tables,
    posting keys and residual predicates are all pure functions of it).
    Scorers never ship: workers return position sets and the coordinator
    gathers and scores from its own identically-ordered view, so scoring
    semantics cannot fork across the boundary.
    """

    #: "nodes" (σN) or "links" (σL)
    kind: str
    cond: Condition


def run_scan_program(view: ColumnarShardView, program: ScanProgram) -> list[int]:
    """Execute a shipped program over a worker-resident view.

    Returns the surviving row positions as plain ints — the compact
    result that crosses the pipe back.  Positions index the view's row
    order, which matches the coordinator's by the slab contract.
    """
    vector = VectorCondition(program.cond)
    rows = (
        vector.link_survivors(view) if program.kind == "links"
        else vector.node_survivors(view)
    )
    return [int(row) for row in rows]


def union_null_graph(
    base: SocialContentGraph, parts: Iterable[list[Node]]
) -> SocialContentGraph:
    """Merge per-shard selection results into one null graph.

    The single point where a columnar pipeline materialises node records
    into a graph — the bulk construction itself lives with the graph
    (:meth:`SocialContentGraph.null_graph_unique`), and shard partitions
    are disjoint by construction, so chaining the parts satisfies its
    uniqueness contract.
    """
    from itertools import chain

    return base.null_graph_unique(chain.from_iterable(parts))


def union_link_subgraph(
    base: SocialContentGraph, parts: Iterable[list[Link]]
) -> SocialContentGraph:
    """Merge per-shard link-selection results into one induced subgraph.

    Mirrors :meth:`SocialContentGraph.subgraph_from_links`: the selected
    links plus their endpoint records pulled from *base* — endpoints may
    live in any shard, which is why the merge reads the base graph rather
    than the views.
    """
    out = SocialContentGraph(catalog=base.catalog)
    nodes = out._nodes
    base_node = base.node
    adopt_link = out._adopt_fresh_link
    for part in parts:
        for link in part:
            for endpoint in (link.src, link.tgt):
                if endpoint not in nodes:
                    nodes[endpoint] = base_node(endpoint)
            adopt_link(link)
    return out

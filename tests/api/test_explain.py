"""Session behavior under ``explain=True`` and the serving plan cache.

Covers the satellite contract: responses carry a plan, pagination and
cursors behave exactly as without EXPLAIN, and compiled plans invalidate
on ``invalidate()`` and on Data-Manager resync.
"""

from __future__ import annotations

import pytest

from repro.api import SearchRequest, Session
from repro.core import Node
from repro.plan import PlanExplain
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture()
def session(travel):
    return Session.from_graph(travel.graph)


class TestExplainResponses:
    def test_plan_absent_by_default(self, session):
        response = session.run(SearchRequest(user_id=JOHN, text="denver"))
        assert response.plan is None

    def test_explain_carries_estimated_vs_actual_per_operator(self, session):
        response = session.run(
            SearchRequest(user_id=JOHN, text="denver", explain=True)
        )
        plan = response.plan
        assert isinstance(plan, PlanExplain)
        assert plan.access_path in ("index", "scan")
        assert len(plan.operators) >= 2  # σN over input(G)
        for profile in plan.operators:
            assert profile.estimated.nodes >= 0
            assert profile.actual is not None and profile.actual.nodes >= 0
        base = plan.operators[-1]
        assert base.op == "input(G)"
        assert base.actual.nodes == session.graph.num_nodes
        assert "input(G)" in plan.text and "est" in plan.text

    def test_explain_reports_the_access_decision(self, session):
        indexed = session.run(
            SearchRequest(user_id=JOHN, text="denver", explain=True)
        )
        scanned = session.run(
            SearchRequest(user_id=JOHN, text="denver", use_index=False,
                          explain=True)
        )
        assert indexed.plan.access_path == "index"
        assert indexed.index_used
        assert scanned.plan.access_path == "scan"
        assert not scanned.index_used
        assert indexed.plan.decisions and indexed.plan.decisions[0].chosen == "index"

    def test_recommendation_explains_as_scan(self, session):
        response = session.run(SearchRequest(user_id=JOHN, explain=True))
        assert response.plan.access_path == "scan"
        assert response.plan.decisions == ()  # nothing to cost: no keywords

    def test_results_identical_with_and_without_explain(self, session):
        plain = session.run(SearchRequest(user_id=JOHN, text="museum history"))
        explained = session.run(
            SearchRequest(user_id=JOHN, text="museum history", explain=True)
        )
        assert explained.items == plain.items
        assert explained.page_info == plain.page_info

    def test_pagination_and_cursors_unchanged_under_explain(self, session):
        first = session.run(SearchRequest(
            user_id=JOHN, text="denver", page_size=3, explain=True,
        ))
        assert first.page_info.next_cursor is not None
        # continue from an explain response without explain, and vice versa
        second = session.run(SearchRequest(
            user_id=JOHN, text="denver", cursor=first.page_info.next_cursor,
        ))
        second_explained = session.run(SearchRequest(
            user_id=JOHN, text="denver", cursor=first.page_info.next_cursor,
            explain=True,
        ))
        assert second.items == second_explained.items
        assert set(first.items).isdisjoint(second.items)
        assert second.page_info.offset == 3

    def test_builder_explain_toggle(self, session):
        response = session.query(JOHN).text("denver").explain().run()
        assert response.plan is not None
        assert session.query(JOHN).text("denver").build().explain is False


class TestServingPlanCache:
    def test_repeated_requests_hit_the_plan_cache(self, session):
        request = SearchRequest(user_id=JOHN, text="Denver attractions")
        session.run(request)
        compiles = session.stats.plan_compiles
        session.run(request)
        session.run(request)
        assert session.stats.plan_cache_hits >= 2
        assert session.stats.plan_compiles == compiles  # no recompilation

    def test_distinct_queries_compile_distinct_plans(self, session):
        session.run(SearchRequest(user_id=JOHN, text="museum"))
        before = session.stats.plan_compiles
        session.run(SearchRequest(user_id=JOHN, text="baseball"))
        assert session.stats.plan_compiles == before + 1

    def test_invalidate_forces_recompilation(self, session):
        request = SearchRequest(user_id=JOHN, text="denver")
        session.run(request)
        session.run(request)
        hits_before = session.stats.plan_cache_hits
        compiles_before = session.stats.plan_compiles
        session.invalidate()
        session.run(request)
        assert session.stats.plan_compiles == compiles_before + 1
        assert session.stats.plan_cache_hits == hits_before

    def test_datamanager_resync_invalidates_plans(self, session):
        request = SearchRequest(user_id=JOHN, text="special")
        session.run(request)
        compiles_before = session.stats.plan_compiles
        session.data_manager.add_node(Node(
            "x:new", type="item, destination", name="Special Spot",
            keywords="special denver",
        ))
        response = session.run(request)
        assert session.stats.plan_compiles == compiles_before + 1
        # and the recompiled plan sees the new item
        assert "x:new" in response.items

    def test_explain_reports_cache_state(self, session):
        request = SearchRequest(user_id=JOHN, text="art galleries", explain=True)
        first = session.run(request)
        second = session.run(request)
        assert first.plan.cache_hit is False
        assert second.plan.cache_hit is True

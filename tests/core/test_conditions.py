"""Unit tests for the condition language (paper §5.1)."""

from __future__ import annotations

import pytest

from repro.core import (
    And,
    AttrCompare,
    AttrEquals,
    Condition,
    HasAttr,
    HasType,
    Lambda,
    Link,
    Node,
    Not,
    Or,
    TruePredicate,
    as_condition,
)
from repro.errors import ConditionError


@pytest.fixture
def denver():
    return Node(2, type="item, city", name="Denver", keywords="skiing",
                rating=0.7, tags=("rockies", "baseball"))


class TestAttrEquals:
    def test_superset_semantics(self, denver):
        # att=val1,...,valk satisfied when values(att) ⊇ {val1..valk}
        assert AttrEquals("tags", "rockies").matches(denver)
        assert AttrEquals("tags", ("rockies", "baseball")).matches(denver)
        assert not AttrEquals("tags", ("rockies", "skiing")).matches(denver)

    def test_type_membership(self, denver):
        assert AttrEquals("type", "city").matches(denver)
        assert AttrEquals("type", "item, city").matches(denver)
        assert not AttrEquals("type", "user").matches(denver)

    def test_id_pseudo_attribute(self, denver):
        assert AttrEquals("id", 2).matches(denver)
        assert not AttrEquals("id", 3).matches(denver)

    def test_absent_attribute(self, denver):
        assert not AttrEquals("missing", "x").matches(denver)


class TestAttrCompare:
    def test_numeric_comparisons(self, denver):
        assert AttrCompare("rating", ">=", 0.5).matches(denver)
        assert AttrCompare("rating", "<", 0.8).matches(denver)
        assert not AttrCompare("rating", ">", 0.7).matches(denver)

    def test_string_number_coercion(self, denver):
        # The paper writes rating >= '0.5' with a string literal.
        assert AttrCompare("rating", ">=", "0.5").matches(denver)

    def test_ne_means_no_value_equals(self, denver):
        assert AttrCompare("id", "!=", 101).matches(denver)
        assert not AttrCompare("id", "!=", 2).matches(denver)
        # multi-valued: tags != 'rockies' fails because one value equals it
        assert not AttrCompare("tags", "!=", "rockies").matches(denver)
        assert AttrCompare("tags", "!=", "paris").matches(denver)

    def test_ne_vacuous_on_absent(self, denver):
        assert AttrCompare("missing", "!=", "x").matches(denver)

    def test_absent_fails_ordering(self, denver):
        assert not AttrCompare("missing", ">", 0).matches(denver)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            AttrCompare("x", "~=", 1)


class TestCombinators:
    def test_and_or_not(self, denver):
        city = HasType("city")
        user = HasType("user")
        assert (city & ~user).matches(denver)
        assert (user | city).matches(denver)
        assert not And(city, user).matches(denver)
        assert Or(user, city).matches(denver)
        assert Not(user).matches(denver)

    def test_lambda(self, denver):
        assert Lambda(lambda e: e.value("name") == "Denver").matches(denver)

    def test_has_attr(self, denver):
        assert HasAttr("rating").matches(denver)
        assert not HasAttr("population").matches(denver)
        assert HasAttr("id").matches(denver)

    def test_true_predicate(self, denver):
        assert TruePredicate().matches(denver)


class TestCondition:
    def test_structural_mapping(self, denver):
        cond = Condition({"type": "city", "rating__ge": 0.5})
        assert cond.satisfied_by(denver)
        assert not Condition({"type": "city", "rating__ge": 0.9}).satisfied_by(denver)

    def test_suffix_operators(self, denver):
        assert Condition({"rating__lt": 1}).satisfied_by(denver)
        assert Condition({"rating__le": 0.7}).satisfied_by(denver)
        assert Condition({"rating__gt": 0.1}).satisfied_by(denver)
        assert Condition({"id__ne": 101}).satisfied_by(denver)
        assert Condition({"rating__eq": 0.7}).satisfied_by(denver)

    def test_keywords_scope_selection(self, denver):
        assert Condition(keywords="Denver attraction").satisfied_by(denver)
        assert not Condition(keywords="Paris museum").satisfied_by(denver)

    def test_keywords_tokenized(self):
        cond = Condition(keywords="Denver Attractions!")
        assert cond.keywords == ("denver", "attractions")

    def test_keywords_from_list_of_phrases(self):
        cond = Condition(keywords=["near Denver", "baseball"])
        assert cond.keywords == ("near", "denver", "baseball")

    def test_empty_condition_matches_all(self, denver):
        assert Condition().satisfied_by(denver)

    def test_condition_on_links(self):
        link = Link(12, 1, 2, type="act, tag", tags="rockies baseball")
        assert Condition({"type": "tag"}).satisfied_by(link)
        assert Condition(keywords="rockies").satisfied_by(link)

    def test_conjoin(self, denver):
        a = Condition({"type": "city"})
        b = Condition({"rating__ge": 0.5}, keywords="skiing")
        both = a.conjoin(b)
        assert both.satisfied_by(denver)
        assert both.keywords == ("skiing",)
        assert len(both.predicates) == 2

    def test_as_condition_coercions(self, denver):
        assert as_condition(None).satisfied_by(denver)
        assert as_condition({"type": "city"}).satisfied_by(denver)
        assert as_condition(HasType("city")).satisfied_by(denver)
        cond = Condition({"type": "city"})
        assert as_condition(cond) is cond

    def test_as_condition_rejects_keywords_with_condition(self):
        with pytest.raises(ConditionError):
            as_condition(Condition(), keywords="x")

    def test_repr_is_informative(self):
        cond = Condition({"type": "city"}, keywords="denver")
        assert "type" in repr(cond) and "denver" in repr(cond)

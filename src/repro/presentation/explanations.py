"""Explanations for results and groups (paper §7.2).

Content-based:

    Expl(u, i) = {i′ ∈ I | ItemSim(i, i′) > 0 & i′ ∈ Items(u)}
    weight: ItemSim(i, i′) × rating(u, i′)

Collaborative filtering:

    Expl(u, i) = {u′ ∈ U | UserSim(u, u′) > 0 & i ∈ Items(u′)}
    weight: UserSim(u, u′) × rating(u′, i)

plus the aggregate renderings the paper suggests ("60% of your friends
endorsed this item", "This item is similar to 75% of items you visited
before") and group-level explanations aggregated from item explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.similarity import jaccard
from repro.core import Id, SocialContentGraph

CONTENT_BASED = "content"
COLLABORATIVE = "cf"


@dataclass
class Explanation:
    """One item's explanation: supporting users or items with weights."""

    item_id: Id
    kind: str  # CONTENT_BASED or COLLABORATIVE
    supporters: dict[Id, float] = field(default_factory=dict)
    aggregate_text: str = ""

    @property
    def is_empty(self) -> bool:
        """True when nothing supports the item."""
        return not self.supporters

    def top(self, k: int = 3) -> list[tuple[Id, float]]:
        """Strongest supporters."""
        ranked = sorted(
            self.supporters.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        return ranked[:k]


def _items_of(graph: SocialContentGraph, user: Id) -> set[Id]:
    return {l.tgt for l in graph.out_links(user) if l.has_type("act")}


def _rating(graph: SocialContentGraph, user: Id, item: Id) -> float:
    """rating(u, i): stored rating if present, 1.0 if acted, else 0."""
    best = 0.0
    for link in graph.out_links(user):
        if link.tgt != item or not link.has_type("act"):
            continue
        value = link.value("rating")
        if value is not None:
            best = max(best, float(value))
        else:
            best = max(best, 1.0)
    return best


def item_similarity(graph: SocialContentGraph, a: Id, b: Id) -> float:
    """ItemSim(i, i′): derived ``sim_item`` link weight when present,
    tagger-set Jaccard otherwise."""
    for link in graph.out_links(a):
        if link.tgt == b and link.has_type("sim_item"):
            return float(link.value("sim", 0.0))
    taggers_a = {l.src for l in graph.in_links(a) if l.has_type("act")}
    taggers_b = {l.src for l in graph.in_links(b) if l.has_type("act")}
    return jaccard(taggers_a, taggers_b)


def user_similarity(graph: SocialContentGraph, a: Id, b: Id) -> float:
    """UserSim(u, u′): derived ``sim_user`` link weight when present,
    item-set Jaccard otherwise (0 when unrelated, as §7.2 requires)."""
    for link in graph.out_links(a):
        if link.tgt == b and link.has_type("sim_user"):
            return float(link.value("sim", 0.0))
    return jaccard(_items_of(graph, a), _items_of(graph, b))


def explain_content_based(
    graph: SocialContentGraph, user: Id, item: Id
) -> Explanation:
    """§7.2 content-based explanation with ItemSim × rating weights."""
    explanation = Explanation(item_id=item, kind=CONTENT_BASED)
    past = _items_of(graph, user)
    for past_item in sorted(past, key=repr):
        if past_item == item:
            continue
        sim = item_similarity(graph, item, past_item)
        if sim <= 0:
            continue
        weight = sim * _rating(graph, user, past_item)
        if weight > 0:
            explanation.supporters[past_item] = round(weight, 6)
    if past:
        similar = sum(
            1 for p in past if p != item and item_similarity(graph, item, p) > 0
        )
        pct = round(100 * similar / len(past))
        explanation.aggregate_text = (
            f"This item is similar to {pct}% of items you visited before"
        )
    return explanation


def explain_collaborative(
    graph: SocialContentGraph,
    user: Id,
    item: Id,
    friends_only: bool = False,
) -> Explanation:
    """§7.2 CF explanation with UserSim × rating weights.

    ``friends_only`` restricts U to the user's direct connections, which
    also powers the "% of your friends endorsed this item" aggregate.
    """
    explanation = Explanation(item_id=item, kind=COLLABORATIVE)
    if friends_only:
        population = {
            l.tgt for l in graph.out_links(user) if l.has_type("connect")
        }
    else:
        population = {
            n.id for n in graph.nodes_of_type("user") if n.id != user
        }
    endorsing = set()
    for other in sorted(population, key=repr):
        if item not in _items_of(graph, other):
            continue
        endorsing.add(other)
        sim = user_similarity(graph, user, other)
        if sim <= 0:
            continue
        weight = sim * _rating(graph, other, item)
        if weight > 0:
            explanation.supporters[other] = round(weight, 6)
    if friends_only and population:
        pct = round(100 * len(endorsing) / len(population))
        explanation.aggregate_text = (
            f"{pct}% of your friends endorsed this item"
        )
    elif endorsing:
        explanation.aggregate_text = (
            f"{len(endorsing)} travelers like you endorsed this item"
        )
    return explanation


@dataclass
class GroupExplanation:
    """§7.2's group-level explanation: aggregation over item explanations."""

    label: str
    top_supporters: list[tuple[Id, float]] = field(default_factory=list)
    coverage: float = 0.0  # fraction of items with non-empty explanations
    text: str = ""


def explain_group(
    graph: SocialContentGraph,
    user: Id,
    label: str,
    items: list[Id],
    kind: str = COLLABORATIVE,
) -> GroupExplanation:
    """Aggregate item explanations into one concise group explanation.

    Supporters' weights sum across the group's items; the text reports the
    dominant supporter and explanation coverage — "converting individual
    explanations ... into a concise explanation at a group level".
    """
    totals: dict[Id, float] = {}
    covered = 0
    for item in items:
        if kind == COLLABORATIVE:
            explanation = explain_collaborative(graph, user, item)
        else:
            explanation = explain_content_based(graph, user, item)
        if not explanation.is_empty:
            covered += 1
        for supporter, weight in explanation.supporters.items():
            totals[supporter] = totals.get(supporter, 0.0) + weight
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    coverage = covered / len(items) if items else 0.0
    if ranked:
        leader = ranked[0][0]
        name = (
            graph.node(leader).value("name", str(leader))
            if graph.has_node(leader)
            else str(leader)
        )
        text = (
            f"{name} is the strongest endorser behind this group; "
            f"{round(100 * coverage)}% of its items come with endorsements"
        )
    else:
        text = "no endorsement data for this group"
    return GroupExplanation(
        label=label,
        top_supporters=ranked[:5],
        coverage=coverage,
        text=text,
    )

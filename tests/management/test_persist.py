"""Site snapshots: atomic write, CRC verification, recovery continuity."""

import json

import pytest

from repro.core import Link, Node
from repro.errors import PersistenceError
from repro.management import DataManager, read_manifest, write_snapshot
from repro.management.persist import MANIFEST_NAME
from repro.management.storage import DERIVED


def seeded_manager(shards=1, users=10):
    dm = DataManager(shards=shards)
    for i in range(users):
        dm.add_node(Node(f"u{i}", type="user", name=f"user {i}"))
    for i in range(users):
        dm.add_node(Node(f"d{i}", type="item", name=f"place {i}",
                         keywords=f"topic{i % 3} travel"))
    for i in range(users - 1):
        dm.add_link(Link(f"f{i}", f"u{i}", f"u{i + 1}",
                         type="connect, friend"))
    for i in range(users):
        dm.add_link(Link(f"v{i}", f"u{i}", f"d{(i + 1) % users}",
                         type="act, visit"))
    return dm


def same_graphs(a, b):
    return a.graph().same_as(b.graph())


# ------------------------------------------------------------- round trip


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_graph_survives_identically(self, tmp_path, shards):
        dm = seeded_manager(shards=shards)
        write_snapshot(dm, tmp_path)
        recovered, report = DataManager.recover(tmp_path)
        assert same_graphs(recovered, dm)
        assert recovered.num_shards == shards
        assert report.replayed == 0 and not report.tail_truncated

    def test_manifest_shape(self, tmp_path):
        dm = seeded_manager(shards=2)
        manifest = write_snapshot(dm, tmp_path, extra={"note": "hi"})
        assert manifest == read_manifest(tmp_path)
        assert manifest["num_shards"] == 2
        assert len(manifest["shards"]) == 2
        assert manifest["extra"] == {"note": "hi"}
        total_nodes = sum(entry["nodes"] for entry in manifest["shards"])
        assert total_nodes == dm.graph().num_nodes

    def test_provenance_survives(self, tmp_path):
        dm = seeded_manager()
        dm.add_node(Node("t0", type="topic", name="travel"), origin=DERIVED)
        dm.add_link(Link("s0", "d0", "t0", type="sim_topic"), origin=DERIVED)
        write_snapshot(dm, tmp_path)
        recovered, _ = DataManager.recover(tmp_path)
        assert recovered.provenance_summary() == dm.provenance_summary()

    def test_counters_never_move_backwards(self, tmp_path):
        dm = seeded_manager()
        before_version = dm.version
        before_epoch = dm.graph().mutation_epoch
        write_snapshot(dm, tmp_path)
        recovered, _ = DataManager.recover(tmp_path)
        assert recovered.version >= before_version
        assert recovered.graph().mutation_epoch >= before_epoch


# ---------------------------------------------------------------- refusal


class TestRefusal:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PersistenceError, match="no snapshot manifest"):
            DataManager.recover(tmp_path)

    def test_wrong_format(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": "something-else", "version": 1})
        )
        with pytest.raises(PersistenceError, match="not a"):
            read_manifest(tmp_path)

    def test_future_version(self, tmp_path):
        dm = seeded_manager()
        manifest = write_snapshot(dm, tmp_path)
        manifest["version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="unsupported snapshot"):
            DataManager.recover(tmp_path)

    def test_checksum_mismatch(self, tmp_path):
        dm = seeded_manager()
        write_snapshot(dm, tmp_path)
        shard = tmp_path / "shard-0000.jsonl"
        shard.write_text(shard.read_text().replace("user 3", "user X"))
        with pytest.raises(PersistenceError, match="checksum mismatch"):
            DataManager.recover(tmp_path)

    def test_missing_shard_file(self, tmp_path):
        dm = seeded_manager(shards=2)
        write_snapshot(dm, tmp_path)
        (tmp_path / "shard-0001.jsonl").unlink()
        with pytest.raises(PersistenceError, match="missing"):
            DataManager.recover(tmp_path)


# -------------------------------------------------- checkpoint + WAL tail


class TestCheckpointAndTail:
    def test_tail_replays_past_snapshot(self, tmp_path):
        dm = seeded_manager(shards=2)
        dm.enable_wal(tmp_path / "wal")
        dm.checkpoint(tmp_path)
        dm.add_node(Node("u99", type="user", name="late arrival"))
        dm.add_link(Link("f99", "u99", "u0", type="connect, friend"))
        dm.delete_link("f0")
        dm.delete_node("d9")
        dm.wal.sync()
        recovered, report = DataManager.recover(tmp_path)
        assert report.replayed == 4
        assert same_graphs(recovered, dm)
        assert recovered.applied_seq == dm.applied_seq

    def test_checkpoint_prunes_covered_segments(self, tmp_path):
        dm = seeded_manager()
        dm.enable_wal(tmp_path / "wal", segment_max_bytes=64)
        for i in range(10):
            dm.add_node(Node(f"x{i}", type="user", name=f"extra {i}"))
        dm.checkpoint(tmp_path)
        from repro.management.wal import read_wal

        records, tail = read_wal(tmp_path / "wal")
        assert tail is None
        # everything on disk is covered by the snapshot watermark
        assert all(r["seq"] <= dm.applied_seq for r in records)
        recovered, report = DataManager.recover(tmp_path)
        assert report.replayed == 0
        assert same_graphs(recovered, dm)

    def test_recovered_manager_keeps_journaling(self, tmp_path):
        dm = seeded_manager()
        dm.enable_wal(tmp_path / "wal")
        dm.checkpoint(tmp_path)
        recovered, _ = DataManager.recover(tmp_path)
        assert recovered.wal is not None
        recovered.add_node(Node("after", type="user", name="post restart"))
        recovered.wal.sync()
        second, report = DataManager.recover(tmp_path)
        assert report.replayed == 1
        assert second.graph().node("after").attrs["name"] == ("post restart",)

    def test_double_recovery_is_idempotent(self, tmp_path):
        dm = seeded_manager(shards=2)
        dm.enable_wal(tmp_path / "wal")
        dm.checkpoint(tmp_path)
        dm.add_node(Node("u99", type="user", name="late"))
        dm.wal.sync()
        first, _ = DataManager.recover(tmp_path, resume_wal=False)
        second, _ = DataManager.recover(tmp_path, resume_wal=False)
        assert same_graphs(first, second)

    def test_torn_tail_truncated_and_survivors_served(self, tmp_path):
        dm = seeded_manager()
        dm.enable_wal(tmp_path / "wal")
        dm.checkpoint(tmp_path)
        dm.add_node(Node("kept", type="user", name="made it"))
        dm.wal.sync()
        from repro.management.wal import list_segments

        with open(list_segments(tmp_path / "wal")[-1], "a") as handle:
            handle.write("deadbeef {\"seq\": 999, \"op\": \"node")
        recovered, report = DataManager.recover(tmp_path)
        assert report.tail_truncated
        assert report.replayed == 1
        assert recovered.graph().node("kept") is not None
        # the truncation is durable: a second recovery sees a clean log
        again, report2 = DataManager.recover(tmp_path, resume_wal=False)
        assert not report2.tail_truncated
        assert same_graphs(again, recovered)

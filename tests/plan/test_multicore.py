"""The process backend: parity, shipping, invalidation, degrade, fork.

The acceptance net of the multicore executor: every query answers
identically (1e-9 on scores) across {sequential, threads, processes} ×
{1, 2, 7 shards}; slab generations invalidate worker-resident columns
on in-place writes; a poisoned worker degrades the execution to the
in-process path mid-plan without changing the answer; the σL residual
vectorization and the sharded endorsement merge hold parity against
their row-wise references; and a forked :class:`WorkerPool` revalidates
instead of deadlocking on inherited executor state.
"""

from __future__ import annotations

import os
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

import factories
from repro.core import Condition, Node, input_graph
from repro.core.conditions import AttrCompare, HasAttr, Lambda, Or
from repro.core.selection import select_matching_links
from repro.discovery import InformationDiscoverer, parse_query
from repro.plan import (
    CostModel,
    EndorsementMergeOp,
    QueryPlanner,
    VectorCondition,
    WorkerPool,
)
from repro.plan.columnar import cut_columnar_views
from repro.core.partition import shard_of

TOL = 1e-9

#: σN conditions exercising cover, prune, postings and residual regimes.
NODE_CONDITIONS = (
    Condition({"type": "item"}),
    Condition({"type": "item"}, keywords="topic0"),
    Condition({"type": "user"}),
    Condition({"name": "item 1"}),
    Condition({"type": "item"}, keywords="topic1 thing"),
)


def process_planner(graph, shards, mode="processes",
                    min_rows=0.0) -> QueryPlanner:
    """A planner with sharding unthrottled and the process floor set."""
    planner = QueryPlanner(
        graph,
        cost_model=CostModel(shard_scan_min_nodes=0.0,
                             process_min_rows=min_rows),
        parallelism=mode,
    )
    if shards > 1:
        planner.attach_shards(shards)
    return planner


# ---------------------------------------------------------------------------
# Cross-backend parity
# ---------------------------------------------------------------------------


class TestCrossBackendParity:
    """{sequential, threads, processes} × {1, 2, 7 shards} — one answer."""

    def test_scan_matrix_matches_monolithic(self):
        graph = factories.social_site_graph(num_users=10, num_items=16)
        exprs = [input_graph("G").select_nodes(c) for c in NODE_CONDITIONS]
        mono = QueryPlanner(graph)
        reference = [mono.execute(e).result for e in exprs]
        for shards in (1, 2, 7):
            for mode in ("never", "threads", "processes"):
                planner = process_planner(graph, shards, mode)
                try:
                    for expr, ref in zip(exprs, reference):
                        got = planner.execute(expr)
                        assert got.result.same_as(ref), (shards, mode)
                finally:
                    planner.close()

    def test_ranking_parity_across_backends(self):
        graph = factories.social_site_graph()
        query = parse_query("u0", "topic0 thing")
        for strategy in ("friends", "similar_users", "item_based"):
            reference = InformationDiscoverer(graph).rank(
                query, strategy=strategy
            )
            for shards in (2, 7):
                for mode in ("threads", "processes"):
                    discoverer = InformationDiscoverer(graph)
                    planner = discoverer.planner
                    planner.cost_model = CostModel(shard_scan_min_nodes=0.0)
                    planner.attach_shards(shards)
                    planner.parallelism = mode
                    try:
                        got = discoverer.rank(query, strategy=strategy)
                        assert [s.item_id for s in got.items] == [
                            s.item_id for s in reference.items
                        ]
                        for a, b in zip(got.items, reference.items):
                            assert a.combined == pytest.approx(
                                b.combined, abs=TOL
                            )
                            assert a.social == pytest.approx(
                                b.social, abs=TOL
                            )
                        assert got.social.scores == pytest.approx(
                            reference.social.scores, abs=TOL
                        )
                    finally:
                        planner.close()

    def test_process_execution_tags_executor_and_workers(self):
        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 3)
        try:
            # covered scans never ship; a keyword scan is prune-only
            execution = planner.execute(input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="topic0")
            ))
            assert execution.executor.startswith("processes(")
            rendered = execution.render()
            assert "pid:" in rendered
            assert "ship=" in rendered and "scan=" in rendered
        finally:
            planner.close()


# ---------------------------------------------------------------------------
# Slab generations: in-place writes invalidate worker-resident columns
# ---------------------------------------------------------------------------


class TestEpochInvalidation:
    def test_in_place_writes_reship_and_answer_fresh(self):
        graph = factories.social_site_graph(num_items=6)
        planner = process_planner(graph, 2)
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="thing")
        )
        try:
            before = planner.execute(expr)
            assert before.result.num_nodes == 6
            pool = planner.process_pool
            assert pool.ships_run == 1
            # same epoch: the resident slabs serve without a re-ship
            planner.execute(expr)
            assert pool.ships_run == 1
            graph.add_node(Node("i-live", type="item", name="in-place",
                                keywords="topic0 thing"))
            after = planner.execute(expr)
            assert after.result.has_node("i-live")
            assert after.result.num_nodes == 7
            assert pool.ships_run == 2
            graph.remove_node("i-live")
            assert not planner.execute(expr).result.has_node("i-live")
            assert pool.ships_run == 3
        finally:
            planner.close()


# ---------------------------------------------------------------------------
# Runtime degrade: a poisoned worker must not change the answer
# ---------------------------------------------------------------------------


class TestDegradeToThreads:
    def test_poisoned_worker_degrades_mid_plan(self):
        from repro.testing import armed_faults, worker_killer

        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 2)
        seq = QueryPlanner(graph)
        poisoned = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="topic0")
        )
        try:
            # healthy run first, so workers exist to poison
            warm = input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="thing")
            )
            planner.execute(warm)
            pool = planner.process_pool
            # A worker killed *between* plans is reaped and respawned at
            # the next slab ship (the pool self-heals), so breaking the
            # pool needs a deterministic mid-plan death: the fault point
            # fires right before the next pipe request.
            with armed_faults(
                {"parallel.worker_request": worker_killer(times=1)}
            ):
                execution = planner.execute(poisoned)
            assert execution.result.same_as(seq.execute(poisoned).result)
            assert "degraded→threads" in execution.executor
            assert pool.broken
            # broken pool: later plans skip the backend entirely
            later = input_graph("G").select_nodes({"name": "item 1"})
            again = planner.execute(later)
            assert not again.executor.startswith("processes")
            assert again.result.same_as(seq.execute(later).result)
        finally:
            planner.close()

    def test_reset_recovers_the_pool(self):
        from repro.testing import armed_faults, worker_killer

        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 2)
        try:
            planner.execute(input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="thing")
            ))
            pool = planner.process_pool
            bad = input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="topic0")
            )
            # deterministic mid-plan worker death (between-plans kills
            # are reaped and respawned at ship time — see above)
            with armed_faults(
                {"parallel.worker_request": worker_killer(times=1)}
            ):
                planner.execute(bad)
            assert pool.broken
            pool.reset()
            assert not pool.broken
            ships_before = pool.ships_run
            fresh = input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="topic1")
            )
            execution = planner.execute(fresh)
            assert execution.executor.startswith("processes(")
            assert pool.ships_run == ships_before + 1
            assert execution.result.same_as(
                QueryPlanner(graph).execute(fresh).result
            )
        finally:
            planner.close()


class TestSelfHealing:
    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_breaker_probe_respawns_workers_after_cooldown(self):
        """The ladder heals itself: open → half-open probe → respawn."""
        from repro.testing import armed_faults, worker_killer

        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 2)
        seq = QueryPlanner(graph)
        try:
            planner.execute(input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="thing")
            ))
            pool = planner.process_pool
            pool.breaker.cooldown_s = 0.05  # fast probe for the test
            bad = input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="topic0")
            )
            # deterministic mid-plan worker death (between-plans kills
            # are reaped and respawned at ship time, never tripping the
            # breaker)
            with armed_faults(
                {"parallel.worker_request": worker_killer(times=1)}
            ):
                planner.execute(bad)
            assert pool.broken
            # within the cooldown the backend is skipped, no probe spent
            skipped = planner.execute(input_graph("G").select_nodes(
                {"name": "item 1"}
            ))
            assert not skipped.executor.startswith("processes")
            time.sleep(0.06)
            # cooldown elapsed: the next eligible plan is the recovery
            # probe — dead workers are reaped, respawned, re-shipped
            fresh = input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="topic1")
            )
            execution = planner.execute(fresh)
            assert execution.executor.startswith("processes(")
            assert not pool.broken
            assert pool.breaker.stats().recoveries == 1
            assert execution.result.same_as(seq.execute(fresh).result)
        finally:
            planner.close()

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_worker_kill_fault_degrades_without_changing_answers(self):
        """The chaos fault point kills the worker mid-request; parity holds."""
        from repro.testing import armed_faults, worker_killer

        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 2)
        seq = QueryPlanner(graph)
        expr = input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="topic0")
        )
        try:
            planner.execute(input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="thing")
            ))
            with armed_faults(
                {"parallel.worker_request": worker_killer(times=1)}
            ):
                execution = planner.execute(expr)
            assert execution.result.same_as(seq.execute(expr).result)
            assert "degraded→threads" in execution.executor
            assert "pool:processes→threads" in execution.resilience
            assert planner.process_pool.broken
        finally:
            planner.close()


# ---------------------------------------------------------------------------
# Shipping eligibility: picklability and the auto row floor
# ---------------------------------------------------------------------------


class TestShippability:
    def test_opaque_residuals_pin_the_plan_to_threads(self):
        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 2)
        threshold = 0.0  # closure state: the lambda cannot pickle
        expr = input_graph("G").select_nodes(Condition(
            {"type": "item"},
            predicates=[Lambda(lambda n: (n.score or 1.0) > threshold)],
        ))
        try:
            plan, _ = planner.compile(expr)
            assert not plan.process_shippable
            execution = planner.execute(expr)
            assert not execution.executor.startswith("processes")
            assert execution.result.same_as(
                QueryPlanner(graph).execute(expr).result
            )
        finally:
            planner.close()

    def test_threads_mode_never_spawns_processes(self):
        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 2, mode="threads")
        try:
            planner.execute(input_graph("G").select_nodes({"type": "item"}))
            assert planner._process_pool is None
        finally:
            planner.close()

    def test_auto_mode_respects_the_row_floor(self):
        graph = factories.social_site_graph(num_users=10, num_items=16)
        # default floor (50k rows × shards): this site is far below it
        planner = process_planner(graph, 2, mode="auto",
                                  min_rows=50_000.0)
        try:
            execution = planner.execute(input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="topic0")
            ))
            assert not execution.executor.startswith("processes")
            assert planner._process_pool is None
            # floor cleared: the same planner escalates
            planner.cost_model = CostModel(shard_scan_min_nodes=0.0,
                                           process_min_rows=1.0)
            execution = planner.execute(input_graph("G").select_nodes(
                Condition({"type": "item"}, keywords="thing")
            ))
            assert execution.executor.startswith("processes(")
        finally:
            planner.close()


# ---------------------------------------------------------------------------
# Concurrency: one pool, many plans in flight
# ---------------------------------------------------------------------------


class TestProcessPoolStorm:
    def test_concurrent_executes_share_one_pool(self, deadlock_watchdog):
        graph = factories.social_site_graph(num_users=10, num_items=16)
        planner = process_planner(graph, 3)
        exprs = [
            input_graph("G").select_nodes(cond)
            for cond in NODE_CONDITIONS
        ] * 2
        seq = QueryPlanner(graph)
        references = [seq.execute(e).result for e in exprs]
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(exprs))

        def run(i: int) -> None:
            try:
                barrier.wait(timeout=30)
                got = planner.execute(exprs[i])
                assert got.result.same_as(references[i]), i
            except BaseException as error:  # noqa: BLE001 — collected
                errors.append(error)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(exprs))]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            assert not errors
            assert planner.process_pool.ships_run == 1  # one resident slab
        finally:
            planner.close()


# ---------------------------------------------------------------------------
# WorkerPool fork revalidation
# ---------------------------------------------------------------------------


class TestForkRevalidation:
    def test_stale_pid_swaps_executor_and_lock(self):
        pool = WorkerPool(max_workers=1)
        assert pool.submit(lambda: 1).result(timeout=10) == 1
        stale_executor = pool._executor
        stale_lock = pool._lock
        pool._pid = -1  # what a fork-inherited copy looks like
        assert pool.submit(lambda: 42).result(timeout=10) == 42
        assert pool._pid == os.getpid()
        assert pool._executor is not stale_executor
        assert pool._lock is not stale_lock
        pool.shutdown()

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="platform has no os.fork")
    def test_forked_child_submits_without_deadlocking(self):
        pool = WorkerPool(max_workers=2)
        # warm the executor so the child inherits real (dead) threads
        assert pool.submit(lambda: 1).result(timeout=10) == 1
        child = os.fork()
        if child == 0:
            # child: a hang here (the pre-fix behavior: work queued to
            # threads that do not exist) is caught by the parent's
            # timeout below; report pass/fail via the exit status only
            try:
                ok = pool.submit(lambda: 42).result(timeout=10) == 42
            except BaseException:
                ok = False
            os._exit(0 if ok else 1)
        deadline = time.monotonic() + 30
        status: int | None = None
        while time.monotonic() < deadline:
            done, status = os.waitpid(child, os.WNOHANG)
            if done == child:
                break
            time.sleep(0.05)
        else:
            os.kill(child, 9)
            os.waitpid(child, 0)
            pytest.fail("forked child hung on the inherited worker pool")
        pool.shutdown()
        assert status is not None
        assert os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0


# ---------------------------------------------------------------------------
# σL residual vectorization: parity against the row-wise kernel
# ---------------------------------------------------------------------------


@st.composite
def link_scan_workloads(draw):
    """A random site plus a σL condition mixing every predicate regime."""
    graph = factories.social_site_graph(
        num_users=draw(st.integers(min_value=1, max_value=6)),
        num_items=draw(st.integers(min_value=1, max_value=9)),
        friends_per_user=draw(st.integers(min_value=0, max_value=3)),
        acts_per_user=draw(st.integers(min_value=0, max_value=4)),
        with_sim_links=draw(st.booleans()),
    )
    structural = {}
    if draw(st.booleans()):
        structural["type"] = draw(
            st.sampled_from(["act", "friend", "sim_item", "nosuch"])
        )
    if draw(st.booleans()):
        # columnar comparison over the (often absent) sim attribute
        structural["sim__ge"] = draw(
            st.floats(min_value=0.0, max_value=0.6, allow_nan=False)
        )
    predicates = []
    if draw(st.booleans()):
        # an Or never vectorizes: forces the residual row-test path
        predicates.append(Or(AttrCompare("sim", ">", 0.3), HasAttr("ts")))
    return graph, Condition(structural, predicates=predicates)


class TestLinkResidualVectorization:
    @settings(max_examples=40, deadline=None)
    @given(link_scan_workloads(), st.sampled_from([1, 3]))
    def test_select_links_matches_row_wise_matches(self, workload, shards):
        graph, cond = workload
        vector = VectorCondition(cond)
        for view in cut_columnar_views(graph, shards, shard_of):
            expected = select_matching_links(list(view.links), cond)
            got = vector.select_links(view)
            assert [l.id for l in got] == [l.id for l in expected]
            for a, b in zip(got, expected):
                if b.score is not None:
                    assert a.score == pytest.approx(b.score, abs=TOL)

    @settings(max_examples=25, deadline=None)
    @given(link_scan_workloads())
    def test_survivor_positions_match_predicate_matches(self, workload):
        graph, cond = workload
        (view,) = cut_columnar_views(graph, 1, shard_of)
        survivors = VectorCondition(cond).link_survivors(view)
        expected = [row for row, link in enumerate(view.links)
                    if cond.satisfied_by(link)]
        assert [int(row) for row in survivors] == expected


# ---------------------------------------------------------------------------
# Sharded endorsement merges
# ---------------------------------------------------------------------------


def _friends_social_expr(user: str = "u0"):
    """A SocialScoreE eligible for the §6.2 endorsement-merge lowering.

    The merge form exists only for the friends strategy on empty-keyword
    queries (the basis-weight correctness boundary), so that is the
    regime the sharded merge must hold parity in.
    """
    from repro.core.expr import ConnectionBasisE, SocialScoreE

    G = input_graph("G")
    candidates = G.select_nodes({"type": "item"})
    basis = ConnectionBasisE(G, user_id=user, keywords=())
    return SocialScoreE(
        G, candidates, basis, strategy="friends", user_id=user,
        keywords=(), sim_threshold=0.1, act_type="visit",
    )


class TestShardedEndorsementMerge:
    def test_ranking_parity_across_shard_counts_and_strategies(self):
        graph = factories.social_site_graph()
        for strategy in ("friends", "similar_users", "item_based"):
            for text in ("topic0", ""):
                query = parse_query("u0", text)
                reference = InformationDiscoverer(graph).rank(
                    query, strategy=strategy
                )
                for shards in (2, 7):
                    discoverer = InformationDiscoverer(graph)
                    planner = discoverer.planner
                    planner.cost_model = CostModel(shard_scan_min_nodes=0.0)
                    planner.attach_shards(shards)
                    got = discoverer.rank(query, strategy=strategy)
                    assert [s.item_id for s in got.items] == [
                        s.item_id for s in reference.items
                    ], (strategy, shards, text)
                    assert got.social.scores == pytest.approx(
                        reference.social.scores, abs=TOL
                    )
                    for item, per_user in reference.social.endorsers.items():
                        assert got.social.endorsers[item] == pytest.approx(
                            per_user, abs=TOL
                        )

    def test_sharded_posting_merge_matches_monolithic(self):
        from repro.core.social import decode_social_result

        graph = factories.social_site_graph()
        expr = _friends_social_expr()
        reference = decode_social_result(
            QueryPlanner(graph).execute(expr, access="index").result
        )
        assert reference.scores  # the regime is non-degenerate
        for shards in (2, 7):
            planner = QueryPlanner(
                graph, cost_model=CostModel(shard_scan_min_nodes=0.0)
            )
            planner.attach_shards(shards)
            got = decode_social_result(
                planner.execute(expr, access="index").result
            )
            # candidate order is shard-concatenated; scores compare as a
            # mapping (the ranking-parity test pins the sorted order)
            assert set(got.scores) == set(reference.scores), shards
            for item, score in reference.scores.items():
                assert got.scores[item] == pytest.approx(score, abs=TOL)
            assert set(got.endorsers) == set(reference.endorsers)
            for item, per_user in reference.endorsers.items():
                assert got.endorsers[item] == pytest.approx(
                    per_user, abs=TOL
                )

    def test_merge_operator_carries_the_shard_count(self):
        graph = factories.social_site_graph()
        planner = QueryPlanner(
            graph, cost_model=CostModel(shard_scan_min_nodes=0.0)
        )
        planner.attach_shards(4)
        plan, _ = planner.compile(_friends_social_expr(), access="index")
        merges = [op for op in plan._walk(plan.root, set())
                  if isinstance(op, EndorsementMergeOp)]
        assert merges and all(op.num_shards == 4 for op in merges)
        assert any("×4" in op.form for op in merges)

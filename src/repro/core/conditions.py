"""The condition language of the algebra (paper §5.1).

    "The condition C consists of a list of structural conditions (e.g.,
    {type='city', rating >= '0.5'}) and a set of keywords (e.g., 'Denver
    attraction').  Satisfaction of the structural conditions by a node is
    defined in the obvious manner: a node v is said to satisfy a structural
    condition of the form att=val1, ..., valk, if the set of v's values for
    att is a superset of the values {val1, ..., valk}."

Structural predicates are Boolean; keywords *scope* the selection (an element
with no keyword match is not selected) and additionally drive the scoring
function S.  This matches §4: "Structural predicates are interpreted in the
usual Boolean sense, while content conditions are used to compute semantic
relevance".

The public entry point is :class:`Condition`; predicates compose with
``&``, ``|`` and ``~``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Union

from repro.core.attrs import parse_values
from repro.core.graph import Link, Node
from repro.core.text import keyword_terms, term_variants, tokenize
from repro.errors import ConditionError

Element = Union[Node, Link]


class Predicate:
    """Base class for structural predicates over nodes or links."""

    def matches(self, element: Element) -> bool:
        """True when *element* satisfies this predicate."""
        raise NotImplementedError

    def __call__(self, element: Element) -> bool:
        return self.matches(element)

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class TruePredicate(Predicate):
    """Matches everything (the empty structural condition)."""

    def matches(self, element: Element) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class AttrEquals(Predicate):
    """``att = val1, ..., valk`` with the paper's superset semantics.

    The element's value *set* for ``att`` must be a superset of the required
    values.  The pseudo-attribute ``id`` compares against the element id.
    """

    def __init__(self, att: str, value: Any):
        self.att = att
        self.required = parse_values(value)

    def matches(self, element: Element) -> bool:
        if self.att == "id":
            return len(self.required) == 1 and element.id == self.required[0]
        have = set(element.values(self.att))
        return have.issuperset(self.required)

    def __repr__(self) -> str:
        vals = ",".join(repr(v) for v in self.required)
        return f"{self.att}={vals}"


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class AttrCompare(Predicate):
    """``att <op> value`` for a scalar comparison operator.

    Semantics over multi-valued attributes: the predicate holds when *some*
    value satisfies the comparison, except ``!=`` which holds when *no*
    value equals the operand (this matches the paper's use of ``id != 101``
    to mean "everyone but John").  Absent attributes fail every comparison
    except ``!=``, which they satisfy vacuously.
    """

    def __init__(self, att: str, op: str, value: Any):
        if op not in _OPS:
            raise ConditionError(f"unknown comparison operator {op!r}")
        self.att = att
        self.op = op
        self.value = value

    def matches(self, element: Element) -> bool:
        if self.att == "id":
            have: tuple[Any, ...] = (element.id,)
        else:
            have = element.values(self.att)
        if self.op == "!=":
            return all(not _safe_cmp("==", v, self.value) for v in have)
        return any(_safe_cmp(self.op, v, self.value) for v in have)

    def __repr__(self) -> str:
        return f"{self.att}{self.op}{self.value!r}"


def _safe_cmp(op: str, a: Any, b: Any) -> bool:
    """Comparison that coerces numeric strings and never raises TypeError.

    The paper writes ``rating >= '0.5'`` — string literals compared against
    numeric attributes — so we coerce both sides to float when either side
    is numeric-like, and fall back to string comparison otherwise.
    """
    fa, fb = _as_number(a), _as_number(b)
    if fa is not None and fb is not None:
        return _OPS[op](fa, fb)
    try:
        return _OPS[op](a, b)
    except TypeError:
        return _OPS[op](str(a), str(b))


def _as_number(value: Any) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


class HasAttr(Predicate):
    """The element carries attribute *att* (with at least one value)."""

    def __init__(self, att: str):
        self.att = att

    def matches(self, element: Element) -> bool:
        if self.att == "id":
            return True
        return bool(element.values(self.att))

    def __repr__(self) -> str:
        return f"has({self.att})"


class HasType(Predicate):
    """Shorthand for ``type=<name>`` membership (not superset of a list)."""

    def __init__(self, type_name: str):
        self.type_name = type_name

    def matches(self, element: Element) -> bool:
        return element.has_type(self.type_name)

    def __repr__(self) -> str:
        return f"type~{self.type_name}"


class Lambda(Predicate):
    """Escape hatch wrapping an arbitrary callable predicate."""

    def __init__(self, fn: Callable[[Element], bool], label: str = "λ"):
        self.fn = fn
        self.label = label

    def matches(self, element: Element) -> bool:
        return bool(self.fn(element))

    def __repr__(self) -> str:
        return self.label


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def matches(self, element: Element) -> bool:
        return all(p.matches(element) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def matches(self, element: Element) -> bool:
        return any(p.matches(element) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, inner: Predicate):
        self.inner = inner

    def matches(self, element: Element) -> bool:
        return not self.inner.matches(element)

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


# ---------------------------------------------------------------------------
# Condition = structural predicates + keywords
# ---------------------------------------------------------------------------

_SUFFIX_OPS = {
    "__eq": "==",
    "__ne": "!=",
    "__lt": "<",
    "__le": "<=",
    "__gt": ">",
    "__ge": ">=",
}


class Condition:
    """A full selection condition: structural predicates plus keywords.

    Construction mirrors the paper's notation::

        Condition({'type': 'city', 'rating__ge': 0.5}, keywords='Denver attraction')

    Plain keys use superset-equality semantics (:class:`AttrEquals`); a
    ``__ge``/``__le``/``__gt``/``__lt``/``__ne``/``__eq`` suffix selects a
    comparison (:class:`AttrCompare`).  Prebuilt :class:`Predicate` objects
    can be passed via *predicates*.

    An element **satisfies** the condition when every structural predicate
    holds and, if keywords are present, at least one keyword term occurs in
    the element's text.
    """

    def __init__(
        self,
        structural: Mapping[str, Any] | None = None,
        keywords: str | Iterable[str] | None = None,
        predicates: Iterable[Predicate] = (),
    ):
        parts: list[Predicate] = list(predicates)
        for key, value in (structural or {}).items():
            parts.append(self._predicate_for(key, value))
        self.predicates: tuple[Predicate, ...] = tuple(parts)
        if keywords is None:
            self.keywords: tuple[str, ...] = ()
        elif isinstance(keywords, str):
            self.keywords = tuple(tokenize(keywords))
        else:
            self.keywords = tuple(keyword_terms(keywords))

    @staticmethod
    def _predicate_for(key: str, value: Any) -> Predicate:
        for suffix, op in _SUFFIX_OPS.items():
            if key.endswith(suffix):
                return AttrCompare(key[: -len(suffix)], op, value)
        return AttrEquals(key, value)

    # -- satisfaction --------------------------------------------------------

    def structural_ok(self, element: Element) -> bool:
        """True when every structural predicate holds."""
        return all(p.matches(element) for p in self.predicates)

    def keyword_ok(self, element: Element) -> bool:
        """True when no keywords are present, or at least one term matches.

        Matching is up to the naive singular/plural variants of each term
        ("attractions" scopes to elements mentioning "attraction").
        """
        if not self.keywords:
            return True
        text_terms = set(tokenize(element.text()))
        return any(
            variant in text_terms
            for term in self.keywords
            for variant in term_variants(term)
        )

    def satisfied_by(self, element: Element) -> bool:
        """Full satisfaction test (structural AND keyword scope)."""
        return self.structural_ok(element) and self.keyword_ok(element)

    def __call__(self, element: Element) -> bool:
        return self.satisfied_by(element)

    @property
    def has_keywords(self) -> bool:
        """True when the condition carries content keywords."""
        return bool(self.keywords)

    def conjoin(self, other: "Condition") -> "Condition":
        """Conjunction of two conditions (used by selection fusion).

        Structural predicates are concatenated; keyword sets are unioned.
        Note keyword union keeps the OR-of-terms scope semantics, so fusion
        of two *keyword* selections is only equivalence-preserving when at
        most one side has keywords — the optimizer checks this.
        """
        merged = Condition()
        merged.predicates = self.predicates + other.predicates
        merged.keywords = tuple(dict.fromkeys(self.keywords + other.keywords))
        return merged

    def __repr__(self) -> str:
        preds = " & ".join(map(repr, self.predicates)) or "TRUE"
        if self.keywords:
            return f"C[{preds}; kw={' '.join(self.keywords)}]"
        return f"C[{preds}]"


def as_condition(
    condition: Condition | Mapping[str, Any] | Predicate | None,
    keywords: str | Iterable[str] | None = None,
) -> Condition:
    """Coerce user input into a :class:`Condition`.

    Accepts an existing condition, a structural mapping, a bare predicate,
    or ``None`` (meaning "everything", possibly with keywords).
    """
    if isinstance(condition, Condition):
        if keywords is not None:
            raise ConditionError(
                "pass keywords inside the Condition, not alongside one"
            )
        return condition
    if isinstance(condition, Predicate):
        return Condition(predicates=(condition,), keywords=keywords)
    if condition is None or isinstance(condition, Mapping):
        return Condition(condition, keywords=keywords)
    raise ConditionError(f"cannot interpret condition {condition!r}")

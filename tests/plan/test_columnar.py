"""Columnar shard views and vectorized selection: parity, lowering, caches.

The acceptance contract of the columnar substrate: for any condition,
scorer, shard count and strategy, the columnar execution path produces
exactly what the legacy row-at-a-time path produces — verified with a
hypothesis differential harness over random conditions and the shared
site factory across shard counts {1, 2, 7} and all three social
strategies (1e-9 on scores).  Plus structural tests for the new access
paths (attribute postings, sharded link scans), top-k pushdown, the
``(generation, mutation_epoch)`` invalidation of columnar views, the
byte-bounded memo/cache accounting, and the site-wide cache stats
endpoint.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import factories
from repro.api import SearchRequest, Session, SessionConfig
from repro.core import Condition, Link, Node, SocialContentGraph, input_graph
from repro.core.conditions import Lambda, Or, HasType
from repro.core.selection import select_links, select_nodes
from repro.core.stats import CardinalityFeedback, GraphStats
from repro.discovery import InformationDiscoverer, parse_query
from repro.management import DataManager
from repro.plan import (
    ATTR_INDEX,
    AttrIndexScanOp,
    ColumnarShardView,
    CostModel,
    QueryPlanner,
    ResultMemo,
    SharedPlanCache,
    ShardedLinkScanOp,
    ShardedScanOp,
    VectorCondition,
)
from repro.plan.columnar import cut_columnar_views
from repro.core.partition import shard_of

TOL = 1e-9

VOCAB = ("topic0", "topic1", "thing", "offkey")


def columnar_planner(graph, shards=1, parallelism="never",
                     min_nodes=0.0, **model_kw) -> QueryPlanner:
    planner = QueryPlanner(
        graph,
        cost_model=CostModel(shard_scan_min_nodes=min_nodes,
                             shard_link_min_links=min_nodes, **model_kw),
        parallelism=parallelism,
    )
    if shards > 1:
        planner.attach_shards(shards)
    return planner


def legacy_planner(graph) -> QueryPlanner:
    """The PR 4 row-at-a-time reference executor."""
    return QueryPlanner(graph, cost_model=CostModel(columnar=False),
                        parallelism="never")


# ---------------------------------------------------------------------------
# VectorCondition kernel parity
# ---------------------------------------------------------------------------


@st.composite
def populations(draw):
    """Node populations with mixed types, multi-valued and odd attrs."""
    graph = SocialContentGraph()
    count = draw(st.integers(min_value=0, max_value=30))
    for i in range(count):
        attrs = {
            "type": draw(st.sampled_from(
                ["item", "user", "item, destination", "user, traveler"]
            )),
            "name": f"spot {i}",
        }
        if draw(st.booleans()):
            attrs["rating"] = draw(st.sampled_from(
                [0.1, 0.5, "0.7", 1, 3, "bad"]
            ))
        if draw(st.booleans()):
            attrs["keywords"] = " ".join(draw(st.lists(
                st.sampled_from(VOCAB), max_size=3
            )))
        graph.add_node(Node(i, **attrs))
    return graph


@st.composite
def conditions(draw):
    structural = {}
    if draw(st.booleans()):
        structural["type"] = draw(st.sampled_from(["item", "user",
                                                   "destination"]))
    if draw(st.booleans()):
        structural["rating__ge"] = draw(st.sampled_from([0.2, "0.5", 2]))
    if draw(st.booleans()):
        structural["name"] = draw(st.sampled_from(["spot 1", "spot 99"]))
    keywords = draw(st.sampled_from(
        [None, "topic0", "topic0 thing", "offkey topics"]
    ))
    predicates = []
    if draw(st.booleans()):  # an opaque residual predicate
        predicates.append(Lambda(lambda e: str(e.id) != "3", "not-3"))
    if draw(st.booleans()):  # a nested disjunction (never vectorized)
        predicates.append(Or(HasType("item"), HasType("user")))
    return Condition(structural, keywords=keywords,
                     predicates=tuple(predicates))


class TestVectorConditionParity:
    @settings(max_examples=60, deadline=None)
    @given(populations(), conditions(), st.booleans())
    def test_select_matches_row_kernel(self, graph, condition, scored):
        scorer = (lambda e, kw: float(len(kw) + (e.id if isinstance(
            e.id, int) else 0))) if scored else None
        expected = select_nodes(graph, condition, scorer)
        view = cut_columnar_views(graph, 1, shard_of)[0]
        got = VectorCondition(condition).select(view, scorer)
        assert [n.id for n in got] == [n.id for n in expected.nodes()]
        for node in got:
            assert node == expected.node(node.id)

    @settings(max_examples=25, deadline=None)
    @given(populations(), conditions(), st.sampled_from([2, 7]))
    def test_sharded_union_matches_monolithic(self, graph, condition,
                                              shards):
        expr = input_graph("G").select_nodes(condition)
        mono = legacy_planner(graph).execute(expr)
        got = columnar_planner(graph, shards).execute(expr)
        assert got.result.same_as(mono.result)


# ---------------------------------------------------------------------------
# End-to-end differential parity: columnar vs legacy ranking
# ---------------------------------------------------------------------------


@st.composite
def site_queries(draw):
    graph = factories.social_site_graph(
        num_users=draw(st.integers(min_value=1, max_value=6)),
        num_items=draw(st.integers(min_value=1, max_value=9)),
        friends_per_user=draw(st.integers(min_value=0, max_value=3)),
        acts_per_user=draw(st.integers(min_value=0, max_value=4)),
        with_sim_links=draw(st.booleans()),
    )
    user = f"u{draw(st.integers(min_value=0, max_value=5))}"
    text = " ".join(draw(st.lists(st.sampled_from(VOCAB), max_size=2)))
    strategy = draw(st.sampled_from(["friends", "similar_users",
                                     "item_based"]))
    return graph, user, text, strategy


class TestColumnarRankingParity:
    """legacy row executor vs columnar × {1, 2, 7} shards — one ranking."""

    @settings(max_examples=25, deadline=None)
    @given(site_queries())
    def test_every_shard_count_ranks_identically(self, workload):
        graph, user, text, strategy = workload
        reference_discoverer = InformationDiscoverer(graph)
        reference_discoverer.planner.cost_model = CostModel(columnar=False)
        reference = reference_discoverer.rank(
            parse_query(user, text), strategy=strategy
        )
        for shards in (1, 2, 7):
            discoverer = InformationDiscoverer(graph)
            discoverer.planner.cost_model = CostModel(
                shard_scan_min_nodes=0.0
            )
            if shards > 1:
                discoverer.planner.attach_shards(shards)
            got = discoverer.rank(parse_query(user, text), strategy=strategy)
            assert [s.item_id for s in got.items] == [
                s.item_id for s in reference.items
            ]
            for a, b in zip(got.items, reference.items):
                assert a.combined == pytest.approx(b.combined, abs=TOL)
                assert a.semantic == pytest.approx(b.semantic, abs=TOL)
                assert a.social == pytest.approx(b.social, abs=TOL)
            assert got.social.scores == pytest.approx(
                reference.social.scores, abs=TOL
            )

    @settings(max_examples=15, deadline=None)
    @given(site_queries(), st.integers(min_value=1, max_value=4))
    def test_topk_pushdown_is_a_prefix_of_the_full_ranking(self, workload,
                                                           k):
        graph, user, text, strategy = workload
        discoverer = InformationDiscoverer(graph)
        full = discoverer.rank(parse_query(user, text), strategy=strategy)
        bounded = discoverer.rank(parse_query(user, text), strategy=strategy,
                                  limit=k)
        assert bounded.items == full.items[:k]
        # provenance still covers every surviving item, not just the top k
        assert bounded.social.scores == full.social.scores


# ---------------------------------------------------------------------------
# In-place write invalidation of columnar views
# ---------------------------------------------------------------------------


class TestColumnarInvalidation:
    """Columnar views must die on ``(generation, mutation_epoch)`` moves.

    The regression this guards: attribute columns and postings are cut
    per generation — an in-place attribute write (replace_node) bumps
    only the mutation epoch, and a stale column would keep serving the
    pre-write value forever.
    """

    def test_in_place_attribute_write_invalidates_columns(self):
        graph = factories.social_site_graph(num_items=6)
        planner = columnar_planner(graph)
        expr = input_graph("G").select_nodes({"type": "item",
                                              "name": "item 1"})
        env = {"G": graph}  # memo bypassed: exercises the views directly
        before = planner.execute(expr, env=env)
        assert [n.id for n in before.result.nodes()] == ["i1"]
        graph.replace_node(graph.node("i1").with_attrs(name="renamed"))
        after = planner.execute(expr, env=env)
        assert after.result.is_empty()
        renamed = planner.execute(
            input_graph("G").select_nodes({"name": "renamed"}), env=env
        )
        assert [n.id for n in renamed.result.nodes()] == ["i1"]

    def test_in_place_writes_invalidate_attr_postings(self):
        graph = factories.social_site_graph(num_items=6)
        planner = columnar_planner(graph)
        planner.attach_attribute_index(("name",))
        expr = input_graph("G").select_nodes({"type": "item",
                                              "name": "fresh"})
        env = {"G": graph}
        assert planner.execute(expr, env=env).result.is_empty()
        graph.add_node(Node("i-live", type="item", name="fresh"))
        after = planner.execute(expr, env=env)
        assert [n.id for n in after.result.nodes()] == ["i-live"]

    def test_in_place_link_writes_invalidate_link_buckets(self):
        graph = factories.social_site_graph(num_users=4, num_items=4)
        planner = columnar_planner(graph, shards=3)
        expr = input_graph("G").select_links({"type": "sim_item"})
        env = {"G": graph}
        before = planner.execute(expr, env=env)
        graph.add_link(Link("s-live", "i3", "i0", type="sim_item", sim=0.9))
        after = planner.execute(expr, env=env)
        assert after.result.has_link("s-live")
        assert after.result.num_links == before.result.num_links + 1


# ---------------------------------------------------------------------------
# Attribute-index access path
# ---------------------------------------------------------------------------


def attr_graph(num_items: int = 400) -> SocialContentGraph:
    """Items where ``category="rare"`` is selective enough (2 of 400)
    that postings beat even the vectorized columnar scan."""
    g = SocialContentGraph()
    for i in range(num_items):
        g.add_node(Node(i, type="item", name=f"spot {i}",
                        category="rare" if i % 200 == 0 else "common"))
    return g


class TestAttrIndexPath:
    def test_selective_values_lower_to_postings(self):
        planner = columnar_planner(attr_graph())
        planner.attach_attribute_index(("category",))
        plan, _ = planner.compile(
            input_graph("G").select_nodes({"type": "item",
                                           "category": "rare"})
        )
        ops = [op for op in plan._walk(plan.root, set())
               if isinstance(op, AttrIndexScanOp)]
        assert ops and ops[0].att == "category" and ops[0].value == "rare"
        (decision,) = [d for d in plan.decisions if d.chosen == ATTR_INDEX]
        assert "postings" in decision.reason

    def test_common_values_stay_on_the_columnar_scan(self):
        planner = columnar_planner(attr_graph())
        planner.attach_attribute_index(("category",))
        plan, _ = planner.compile(
            input_graph("G").select_nodes({"type": "item",
                                           "category": "common"})
        )
        assert not any(isinstance(op, AttrIndexScanOp)
                       for op in plan._walk(plan.root, set()))

    def test_posting_path_matches_the_scan_exactly(self):
        graph = attr_graph()
        planner = columnar_planner(graph)
        planner.attach_attribute_index(("category",))
        expr = input_graph("G").select_nodes(
            Condition({"type": "item", "category": "rare"},
                      keywords="spot")
        )
        via_postings = planner.execute(expr)
        assert via_postings.plan.decisions[0].chosen == ATTR_INDEX
        via_scan = planner.execute(expr, access="scan")
        assert via_postings.result.same_as(via_scan.result)

    def test_unregistered_attributes_never_take_the_path(self):
        planner = columnar_planner(attr_graph())
        plan, _ = planner.compile(
            input_graph("G").select_nodes({"category": "rare"})
        )
        assert not any(isinstance(op, AttrIndexScanOp)
                       for op in plan._walk(plan.root, set()))

    def test_missing_provider_degrades_to_scan(self):
        from repro.plan import compile_plan

        graph = attr_graph()
        plan = compile_plan(
            input_graph("G").select_nodes({"type": "item",
                                           "category": "rare"}),
            GraphStats.of(graph, indexed_attrs=("category",)),
            cost_model=CostModel(shard_scan_min_nodes=0.0),
            indexed_attrs=frozenset({"category"}),
        )
        assert any(isinstance(op, AttrIndexScanOp)
                   for op in plan._walk(plan.root, set()))
        execution = plan.execute({"G": graph})  # no attr provider
        assert execution.degraded_ops == 1
        assert {n.id for n in execution.result.nodes()} == {0, 200}

    def test_observed_actuals_feed_the_attr_correction(self):
        graph = attr_graph()
        planner = columnar_planner(graph)
        planner.attach_attribute_index(("category",))
        planner.execute(input_graph("G").select_nodes(
            {"type": "item", "category": "rare"}
        ))
        key = CardinalityFeedback.attr_key("category", "rare")
        assert key in planner.feedback.snapshot()

    def test_attr_correction_observes_postings_not_residual_output(self):
        # a residual conjunct keeps almost nothing: the posting estimate
        # must NOT be ratcheted down by the other predicates' selectivity
        graph = attr_graph()
        planner = columnar_planner(graph)
        planner.attach_attribute_index(("category",))
        expr = input_graph("G").select_nodes(
            {"type": "item", "category": "rare", "name": "spot 0"}
        )
        for _ in range(4):
            execution = planner.execute(expr)
            assert execution.result.num_nodes == 1  # residual kept one
            planner.refresh(planner.graph)  # recompile → re-observe
        key = CardinalityFeedback.attr_key("category", "rare")
        # postings gathered == postings estimated (2), so the correction
        # stays at (or returns to) neutral instead of hitting the floor
        assert planner.feedback.factor(key) == pytest.approx(1.0, abs=0.01)

    def test_session_mirrors_the_stores_registered_attributes(self):
        dm = DataManager(indexed_attributes=("name", "category"))
        dm.load_graph(factories.social_site_graph())
        session = Session(dm)
        assert session.planner.indexed_attrs == {"name", "category"}


# ---------------------------------------------------------------------------
# Sharded link scans
# ---------------------------------------------------------------------------


class TestShardedLinkScan:
    @settings(max_examples=20, deadline=None)
    @given(site_queries(), st.sampled_from([1, 2, 7]))
    def test_link_selection_parity(self, workload, shards):
        graph, _user, _text, _strategy = workload
        for condition in (
            {"type": "act"}, {"type": "connect"},
            Condition({"type": "act"}, keywords="visit"), {"sim__ge": 0.3},
        ):
            expected = select_links(
                graph, condition if isinstance(condition, Condition)
                else Condition(condition)
            )
            planner = columnar_planner(graph, shards)
            got = planner.execute(input_graph("G").select_links(condition))
            assert got.result.same_as(expected)

    def test_lowering_prunes_to_link_type_buckets(self):
        graph = factories.social_site_graph()
        planner = columnar_planner(graph, 3)
        plan, _ = planner.compile(
            input_graph("G").select_links({"type": "act"})
        )
        ops = [op for op in plan._walk(plan.root, set())
               if isinstance(op, ShardedLinkScanOp)]
        assert ops and ops[0].prune_type == "act"
        assert "sharded-links×3" in plan.render()

    def test_small_link_populations_stay_unsharded(self):
        graph = factories.social_site_graph()
        planner = columnar_planner(graph, 3, min_nodes=10_000.0)
        plan, _ = planner.compile(
            input_graph("G").select_links({"type": "act"})
        )
        assert not any(isinstance(op, ShardedLinkScanOp)
                       for op in plan._walk(plan.root, set()))

    def test_link_scan_feeds_the_semi_join(self):
        graph = factories.social_site_graph()
        expr = input_graph("G").select_links({"type": "act"}).semi_join(
            input_graph("G").select_nodes({"id": "u0"}), ("src", "src")
        )
        sharded = columnar_planner(graph, 3).execute(expr)
        legacy = legacy_planner(graph).execute(expr)
        assert sharded.result.same_as(legacy.result)

    def test_foreign_environment_degrades(self):
        graph = factories.social_site_graph()
        other = factories.social_site_graph(num_items=3)
        planner = columnar_planner(graph, 3)
        expr = input_graph("G").select_links({"type": "act"})
        execution = planner.execute(expr, env={"G": other})
        assert execution.degraded_ops == 1
        assert execution.result.same_as(
            legacy_planner(other).execute(expr).result
        )


# ---------------------------------------------------------------------------
# Top-k pushdown through the session
# ---------------------------------------------------------------------------


class TestTopKPushdown:
    def test_explicit_k_rides_on_the_execution(self):
        session = Session.from_graph(factories.social_site_graph())
        response = session.run(
            SearchRequest(user_id="u0", text="topic0", k=3, explain=True)
        )
        assert response.plan.topk == 3
        assert "top-k=3" in response.plan.text

    def test_page_windows_without_k_keep_the_full_ranking(self):
        session = Session.from_graph(factories.social_site_graph())
        response = session.run(
            SearchRequest(user_id="u0", text="topic0", page_size=2,
                          explain=True)
        )
        assert response.plan.topk is None

    def test_bounded_pages_equal_unbounded_pages(self):
        graph = factories.social_site_graph(num_users=7, num_items=9)
        session = Session.from_graph(graph)
        bounded = session.run(SearchRequest(user_id="u0", text="thing", k=4))
        unbounded = session.run(SearchRequest(user_id="u0", text="thing"))
        assert list(bounded.items) == list(unbounded.items)[:4]


# ---------------------------------------------------------------------------
# Memory accounting: ResultMemo and SharedPlanCache byte budgets
# ---------------------------------------------------------------------------


class TestMemoryAccounting:
    def test_result_memo_evicts_past_the_byte_budget(self):
        from repro.plan.cache import estimate_graph_bytes

        small = factories.item_graph(4)
        budget = estimate_graph_bytes(small) * 2 + 1
        memo = ResultMemo(max_entries=100, max_bytes=budget)
        memo["a"] = factories.item_graph(4)
        memo["b"] = factories.item_graph(4)
        assert len(memo) == 2 and memo.evictions == 0
        memo["c"] = factories.item_graph(4)
        assert len(memo) == 2 and memo.evictions == 1
        assert "a" not in memo  # LRU order: the oldest entry died
        assert memo.get("b") is not None and memo.get("c") is not None
        assert memo.bytes <= budget

    def test_result_memo_lru_order_respects_gets(self):
        memo = ResultMemo(max_entries=2, max_bytes=1 << 30)
        memo["a"] = factories.item_graph(2)
        memo["b"] = factories.item_graph(2)
        memo.get("a")  # touch: "b" becomes the eviction victim
        memo["c"] = factories.item_graph(2)
        assert "a" in memo and "c" in memo and "b" not in memo

    def test_shared_cache_byte_budget_evicts_plans(self):
        graph = factories.item_graph(4)
        planner_cache = SharedPlanCache(maxsize=1024, admit_after=1,
                                        max_bytes=1)  # one plan max
        planner = QueryPlanner(graph, cache=planner_cache)
        planner.execute(input_graph("G").select_nodes({"type": "item"}))
        planner.execute(input_graph("G").select_nodes({"type": "user"}))
        stats = planner_cache.stats
        assert stats.size == 1  # the budget keeps exactly one resident
        assert stats.evictions >= 1
        assert stats.bytes > 0

    def test_plan_cache_stats_report_bytes(self):
        graph = factories.item_graph(4)
        cache = SharedPlanCache()
        planner = QueryPlanner(graph, cache=cache)
        planner.execute(input_graph("G").select_nodes({"type": "item"}))
        assert cache.stats.bytes > 0


# ---------------------------------------------------------------------------
# The site-wide cache-stats management endpoint
# ---------------------------------------------------------------------------


class TestPlanCacheEndpoint:
    def test_datamanager_surfaces_shared_cache_counters(self):
        from repro.plan import shared_plan_cache

        shared_plan_cache().reset()
        dm = DataManager()
        dm.load_graph(factories.social_site_graph())
        session = Session(dm)
        session.run(SearchRequest(user_id="u0", text="topic0"))
        session.run(SearchRequest(user_id="u0", text="topic0"))
        stats = dm.plan_cache_stats()
        assert stats["compiles"] >= 1
        assert stats["hits"] >= 1
        assert stats["size"] >= 1
        assert stats["bytes"] > 0
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert {"evictions", "admission_rejections"} <= stats.keys()


# ---------------------------------------------------------------------------
# Cardinality feedback reaches the strategy picker's inputs
# ---------------------------------------------------------------------------


class TestSocialFeedback:
    def test_basis_actuals_correct_the_expected_basis_size(self):
        # a site whose served bases are far smaller than the histogram
        # mean suggests: every factory user carries 5 connections, but
        # the actual querying user is a loner — observed bases are empty
        graph = factories.social_site_graph(num_users=8, num_items=8,
                                            friends_per_user=5)
        graph.add_node(Node("lone", type="user", name="loner"))
        discoverer = InformationDiscoverer(graph)
        planner = discoverer.planner
        raw = planner.stats.expected_basis_size()
        assert raw > 2.0  # the histogram mean the picker used to trust
        for _ in range(6):
            discoverer.rank(parse_query("lone", ""), strategy="friends")
            planner.refresh(planner.graph)  # force recompiles → re-observe
        key = CardinalityFeedback.basis_key()
        assert planner.feedback.factor(key) < 1.0
        assert planner.stats.expected_basis_size() < raw

    def test_endorsement_actuals_feed_the_reach_correction(self):
        graph = factories.social_site_graph(num_users=5, num_items=6)
        discoverer = InformationDiscoverer(graph)
        discoverer.rank(parse_query("u0", ""), strategy="friends")
        key = CardinalityFeedback.endorse_key()
        assert key in discoverer.planner.feedback.snapshot()

    def test_strategy_decision_reads_corrected_numbers(self):
        graph = factories.social_site_graph(num_users=6, num_items=6)
        planner = InformationDiscoverer(graph).planner
        planner.feedback.observe(CardinalityFeedback.basis_key(), 8.0, 1.0)
        corrected = planner.stats.expected_basis_size()
        query = parse_query("u0", "")
        execution = planner.discovery_pipeline(query, strategy="auto",
                                               alpha=0.0)
        decision = execution.plan.strategy_decision
        assert decision is not None
        assert f"{corrected:.1f}" in decision.reason

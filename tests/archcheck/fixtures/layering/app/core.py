"""Fixture: the core layer imports upward, completing a package cycle.

Expected findings: L001 (core may not import plan) and L002 (the
observed core -> plan -> core cycle).
"""

from app.plan import lower


def base():
    return lower

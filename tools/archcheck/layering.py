"""Rule family L: the allowed import DAG.

* **L001** — an import crosses a package edge the DAG does not allow
  (includes every "upward" import by construction: upward edges are
  simply absent from the allowed map).
* **L002** — the *observed* package import graph contains a cycle.
  Reported even when every individual edge is allowed: a configuration
  that legalised a cycle is itself a finding.
* **L003** — an import targets a package the DAG has no entry for
  (usually a new package nobody declared a layer for).
* **L004** — a *restricted* external import (``config.restricted_imports``)
  appears outside its one owning module.  ``multiprocessing`` is the
  motivating case: process lifecycle, pipe protocol and shared-memory
  ownership are confined to ``plan.parallel`` so a second spawner cannot
  grow its own fork/cleanup bugs.
* **T001** — production code imports a *test-only* package
  (``config.test_only_packages``, by default ``repro.testing``).  The
  fault-injection handlers live there; a production module importing
  them could arm faults in a serving process, so the guarantee
  "production never arms faults" is enforced as an import ban (the
  layer DAG is silent about the edge; this rule rejects it by name).

Only imports of the project's own top package are considered; stdlib and
third-party imports are out of scope here (the determinism rules own
those).  ``TYPE_CHECKING``-guarded imports count: a typing-only upward
import still couples the layers in every reader's head, and one
refactor away from coupling them at runtime.
"""

from __future__ import annotations

import ast

from tools.archcheck.config import Config
from tools.archcheck.findings import Finding, Module


def _imported_modules(tree: ast.Module, top: str) -> list[tuple[str, int]]:
    """(dotted target, line) for every project-internal import."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == top or alias.name.startswith(top + "."):
                    out.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve below
                out.append(("." * node.level + (node.module or ""),
                            node.lineno))
            elif node.module and (
                node.module == top or node.module.startswith(top + ".")
            ):
                out.append((node.module, node.lineno))
    return out


def _target_package(target: str, importer: Module, top: str) -> str | None:
    """Layer name a dotted import target lands in, or None if external."""
    if target.startswith("."):
        # relative import: stays inside the importer's own package
        return importer.package
    parts = target.split(".")
    if top:
        if parts[0] != top:
            return None
        parts = parts[1:]
    if not parts:
        return top or None  # "import repro" itself
    return parts[0]


def check_layering(modules: list[Module], config: Config) -> list[Finding]:
    findings: list[Finding] = []
    observed: dict[str, dict[str, tuple[str, int]]] = {}
    top = config.layer_root
    for module in modules:
        source = module.package
        for target_module, line in _imported_modules(module.tree, top):
            target = _target_package(target_module, module, top)
            if target is None or target == source:
                continue
            observed.setdefault(source, {}).setdefault(
                target, (module.rel_path, line)
            )
            if source not in config.layers or target not in config.layers:
                missing = source if source not in config.layers else target
                findings.append(Finding(
                    rule="L003",
                    path=module.rel_path,
                    line=line,
                    symbol=f"{source}->{target}",
                    message=(
                        f"package {missing!r} has no layer declared in the "
                        f"import DAG (import of {target_module!r})"
                    ),
                    detail=target_module,
                ))
                continue
            if target not in config.layers[source]:
                findings.append(Finding(
                    rule="L001",
                    path=module.rel_path,
                    line=line,
                    symbol=f"{source}->{target}",
                    message=(
                        f"layer {source!r} may not import {target!r} "
                        f"(import of {target_module!r}); allowed: "
                        f"{sorted(config.layers[source])}"
                    ),
                    detail=target_module,
                ))
    findings.extend(_find_cycles(observed))
    findings.extend(_check_restricted_imports(modules, config))
    findings.extend(_check_test_only_imports(modules, config))
    return findings


def _check_test_only_imports(
    modules: list[Module], config: Config
) -> list[Finding]:
    """T001: production modules importing a test-only package."""
    findings: list[Finding] = []
    if not config.test_only_packages:
        return findings
    top = config.layer_root
    for module in modules:
        if module.package in config.test_only_packages:
            continue  # the test-only package may import itself
        for target_module, line in _imported_modules(module.tree, top):
            target = _target_package(target_module, module, top)
            if target is None or target not in config.test_only_packages:
                continue
            findings.append(Finding(
                rule="T001",
                path=module.rel_path,
                line=line,
                symbol=f"{module.package}->{target}",
                message=(
                    f"production module imports test-only package "
                    f"{target!r} (import of {target_module!r}): fault "
                    f"handlers must never be armable from serving code"
                ),
                detail=target_module,
            ))
    return findings


def _check_restricted_imports(
    modules: list[Module], config: Config
) -> list[Finding]:
    """L004: restricted external imports outside their owning module."""
    findings: list[Finding] = []
    if not config.restricted_imports:
        return findings
    for module in modules:
        for target, line in _external_imports(module.tree):
            for prefix, owner in config.restricted_imports.items():
                if target != prefix and not target.startswith(prefix + "."):
                    continue
                if config.module_in(module.name, (owner,)):
                    continue
                findings.append(Finding(
                    rule="L004",
                    path=module.rel_path,
                    line=line,
                    symbol=f"{module.name}->{prefix}",
                    message=(
                        f"import of {target!r} is restricted to "
                        f"{owner!r}; route through its API instead"
                    ),
                    detail=target,
                ))
    return findings


def _external_imports(tree: ast.Module) -> list[tuple[str, int]]:
    """(dotted target, line) for every absolute import in the module."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if not node.level and node.module:
                out.append((node.module, node.lineno))
    return out


def _find_cycles(
    observed: dict[str, dict[str, tuple[str, int]]]
) -> list[Finding]:
    """One L002 finding per distinct package cycle in the observed graph."""
    findings: list[Finding] = []
    seen_cycles: set[tuple[str, ...]] = set()
    WHITE, GREY, BLACK = 0, 1, 2
    color = {package: WHITE for package in observed}
    stack: list[str] = []

    def visit(package: str) -> None:
        color[package] = GREY
        stack.append(package)
        for target in sorted(observed.get(package, ())):
            if color.get(target, WHITE) == GREY:
                cycle = tuple(stack[stack.index(target):]) + (target,)
                # canonicalise rotation so each cycle reports once
                pivot = cycle.index(min(cycle[:-1]))
                canonical = cycle[pivot:-1] + cycle[:pivot]
                if canonical in seen_cycles:
                    continue
                seen_cycles.add(canonical)
                path, line = observed[package][target]
                findings.append(Finding(
                    rule="L002",
                    path=path,
                    line=line,
                    symbol="->".join(canonical + (canonical[0],)),
                    message=(
                        "package import cycle: "
                        + " -> ".join(cycle)
                    ),
                ))
            elif color.get(target, WHITE) == WHITE and target in observed:
                visit(target)
        stack.pop()
        color[package] = BLACK

    for package in sorted(observed):
        if color[package] == WHITE:
            visit(package)
    return findings

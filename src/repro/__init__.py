"""repro — a full reproduction of *SocialScope: Enabling Information
Discovery on Social Content Sites* (Amer-Yahia, Lakshmanan, Yu; CIDR 2009).

The library implements the paper's three-layer architecture end to end:

* :mod:`repro.core` — the social content graph model and the paper's
  algebra (selections, set operators, composition, semi-join, SAF/NAF
  aggregation, graph-pattern aggregation, plans + optimizer);
* :mod:`repro.analysis` — the Content Analyzer (LDA topics, association
  rules, derived similarity links);
* :mod:`repro.discovery` — the Information Discoverer (query model and
  classifier, semantic + social relevance, Meaningful Social Graphs);
* :mod:`repro.management` — the Content Management layer (storage,
  OpenSocial-style integration, the three management models, activity-driven
  sync);
* :mod:`repro.indexing` — §6.2's network-aware inverted indexes, user
  clustering strategies, top-k pruning, and the semantic item index;
* :mod:`repro.presentation` — §7's grouping, ranking and explanations;
* :mod:`repro.workloads` — synthetic social-content-site workloads
  (Y!Travel-like, del.icio.us-like) and the Table 1 query generator;
* :mod:`repro.api` — the session-based query API: structured
  :class:`~repro.api.SearchRequest`/:class:`~repro.api.SearchResponse`
  values, the fluent :class:`~repro.api.QueryBuilder`, and the warm
  :class:`~repro.api.Session` engine (pagination, batching, index-backed
  discovery);
* :mod:`repro.serve` — the concurrent serving front: the asyncio
  :class:`~repro.serve.ServeGateway` with per-tenant admission control
  and dynamic plan-key batching, plus the closed-loop load harness
  (:mod:`repro.serve.loadgen`);
* :class:`repro.socialscope.SocialScope` — the stable facade over one
  session (Figure 1).

Quickstart::

    from repro import Session
    from repro.workloads import TravelSiteConfig, build_travel_site

    site = build_travel_site(TravelSiteConfig(seed=42))
    session = Session.from_graph(site.graph)

    response = (session.query(site.personas["john"])
                .text("Denver attractions")
                .limit(10)
                .run())
    for group in response.groups:
        print(group.label, [e.item_id for e in group.entries])

    # Deterministic pagination over the same ranking:
    page2 = (session.query(site.personas["john"])
             .text("Denver attractions")
             .page_size(5).page(2)
             .run())

Migration from the pre-session facade (still supported, now a thin shim)::

    scope.search(u, "denver", k=10)   ->  session.query(u).text("denver").limit(10).run().page
    scope.recommend(u, k=5)           ->  session.query(u).limit(5).run().page
    scope.discover(u, "denver")       ->  session.discover(SearchRequest(user_id=u, text="denver"))
    scope.explore(u, "denver")        ->  session.explore(SearchRequest(user_id=u, text="denver"))
    SocialScopeConfig(...)            ->  SessionConfig(...)  (same fields)
"""

from repro.core import (
    Condition,
    Link,
    Node,
    SocialContentGraph,
    aggregate_links,
    aggregate_nodes,
    compose,
    intersection,
    link_minus,
    minus,
    select_links,
    select_nodes,
    semi_join,
    union,
)

__version__ = "1.1.0"

__all__ = [
    "Node",
    "Link",
    "SocialContentGraph",
    "Condition",
    "select_nodes",
    "select_links",
    "union",
    "intersection",
    "minus",
    "link_minus",
    "semi_join",
    "compose",
    "aggregate_nodes",
    "aggregate_links",
    "SocialScope",
    "Session",
    "SessionConfig",
    "SearchRequest",
    "SearchResponse",
    "QueryBuilder",
    "ServeGateway",
    "GatewayConfig",
    "__version__",
]

#: Lazy attribute -> providing module.  The facade and session pull in
#: every layer; keep `import repro` cheap for users who only need the
#: algebra.
_LAZY = {
    "SocialScope": "repro.socialscope",
    "Session": "repro.api",
    "SessionConfig": "repro.api",
    "SearchRequest": "repro.api",
    "SearchResponse": "repro.api",
    "QueryBuilder": "repro.api",
    "ServeGateway": "repro.serve",
    "GatewayConfig": "repro.serve",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        from importlib import import_module

        return getattr(import_module(module_name), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

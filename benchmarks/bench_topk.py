"""Experiment S62c — top-k pruning with score upper bounds (Fagin [16]).

Compares brute force, TA and NRA over the exact per-(tag,user) lists:
result agreement (score sequences) plus the access counts that justify
"storing scores ... enables top-k pruning".
"""

from __future__ import annotations

import random

import pytest

from repro.indexing import (
    ExactUserIndex,
    brute_force,
    g_sum,
    no_random_access,
    threshold_algorithm,
)

K_VALUES = (5, 10, 20)
N_QUERIES = 50


@pytest.fixture(scope="module")
def setup(tagging_data):
    index = ExactUserIndex(tagging_data)
    rng = random.Random(7)
    queries = []
    for _ in range(N_QUERIES):
        user = rng.choice(tagging_data.users)
        keywords = rng.sample(tagging_data.tag_vocab, k=2)
        lists = [index.lists.get((kw, user), []) for kw in keywords]
        maps = [dict(entries) for entries in lists]
        queries.append((lists, maps))
    return index, queries


def _ra_for(maps):
    def random_access(item, list_index):
        return maps[list_index].get(item, 0.0)

    return random_access


def test_agreement_and_access_counts(setup, report, benchmark):
    _, queries = setup
    benchmark.pedantic(
        lambda: [threshold_algorithm(l, _ra_for(m), 10, g_sum)
                 for l, m in queries],
        rounds=1, iterations=1,
    )
    lines = ["", "=== top-k pruning: brute force vs TA vs NRA ==="]
    for k in K_VALUES:
        bf_acc = ta_acc = nra_acc = 0
        for lists, maps in queries:
            bf, bf_stats = brute_force(lists, k, g_sum)
            ta, ta_stats = threshold_algorithm(lists, _ra_for(maps), k, g_sum)
            nra, nra_stats = no_random_access(lists, k, g_sum)
            assert [s for _, s in ta] == [s for _, s in bf]
            bf_acc += bf_stats.total_accesses()
            ta_acc += ta_stats.total_accesses()
            nra_acc += nra_stats.total_accesses()
        lines.append(
            f"  k={k:<3} mean accesses/query: brute={bf_acc/len(queries):7.1f}"
            f"  TA={ta_acc/len(queries):7.1f}"
            f"  NRA={nra_acc/len(queries):7.1f}"
        )
    report(*lines)


@pytest.mark.parametrize("k", K_VALUES)
def test_brute_force_latency(setup, benchmark, k):
    _, queries = setup

    def run():
        for lists, _ in queries:
            brute_force(lists, k, g_sum)

    benchmark(run)


@pytest.mark.parametrize("k", K_VALUES)
def test_ta_latency(setup, benchmark, k):
    _, queries = setup

    def run():
        for lists, maps in queries:
            threshold_algorithm(lists, _ra_for(maps), k, g_sum)

    benchmark(run)


@pytest.mark.parametrize("k", K_VALUES)
def test_nra_latency(setup, benchmark, k):
    _, queries = setup

    def run():
        for lists, _ in queries:
            no_random_access(lists, k, g_sum)

    benchmark(run)

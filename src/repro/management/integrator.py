"""The Content Integrator (paper §3, Content Management layer).

    "it facilitates the incorporation of social information from remote
    sites through Content Integrator.  This has become increasingly
    important as open standards like OpenSocial become widely accepted."

:class:`ContentIntegrator` pulls profiles, connections and activities from
:class:`~repro.management.remote.RemoteSocialSite` instances (given user
permission grants) and converts them into graph records with external
provenance (``source=<site>`` attributes, store origin tracking).  It also
pushes locally-established connections back to the social sites — the
write-back path that distinguishes the Open Cartel model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id, Link, Node
from repro.errors import PermissionDeniedError
from repro.management.remote import RemoteSocialSite
from repro.management.storage import GraphStore


@dataclass
class IntegrationReport:
    """What one integration pass imported."""

    site: str
    users: int = 0
    connections: int = 0
    activities: int = 0
    denied: int = 0


class ContentIntegrator:
    """Imports remote social data into a local :class:`GraphStore`."""

    def __init__(self, store: GraphStore, client_name: str):
        self.store = store
        self.client_name = client_name
        #: per-(site, user) high-water mark of imported activity sequence
        self._sync_marks: dict[tuple[str, Id], int] = {}

    # -------------------------------------------------------------- importing
    def import_user(
        self,
        site: RemoteSocialSite,
        user_id: Id,
        with_connections: bool = True,
        with_activities: bool = False,
    ) -> IntegrationReport:
        """Pull one user's social data from *site* (permission permitting).

        Imported nodes/links carry ``source=<site name>`` and are recorded
        with that origin in the store, so "locally owned" vs "externally
        integrated" (paper §3) stays queryable.
        """
        report = IntegrationReport(site=site.name)
        try:
            profile = site.get_profile(user_id, self.client_name)
        except PermissionDeniedError:
            report.denied += 1
            return report
        self.store.upsert_node(
            Node(user_id, type="user", name=profile.name,
                 interests=profile.interests or None, source=site.name),
            origin=site.name,
        )
        report.users += 1

        if with_connections:
            try:
                connections = site.get_connections(user_id, self.client_name)
            except PermissionDeniedError:
                report.denied += 1
                connections = set()
            for other in sorted(connections, key=repr):
                if not self.store.has_node(other):
                    # Shallow placeholder; full profile requires that user's
                    # own grant.
                    self.store.upsert_node(
                        Node(other, type="user", name=f"user{other}",
                             source=site.name),
                        origin=site.name,
                    )
                link_id = f"ext:{site.name}:{user_id}->{other}"
                self.store.upsert_link(
                    Link(link_id, user_id, other,
                         type="connect, friend", source=site.name),
                    origin=site.name,
                )
                report.connections += 1

        if with_activities:
            since = self._sync_marks.get((site.name, user_id), 0)
            try:
                activities = site.get_activities(
                    user_id, self.client_name, since=since
                )
            except PermissionDeniedError:
                report.denied += 1
                activities = []
            for activity in activities:
                if not self.store.has_node(activity.item_id):
                    self.store.upsert_node(
                        Node(activity.item_id, type="item",
                             name=str(activity.item_id), source=site.name),
                        origin=site.name,
                    )
                link_id = f"ext:{site.name}:act:{activity.sequence}"
                self.store.upsert_link(
                    Link(link_id, user_id, activity.item_id,
                         type=f"act, {activity.verb}", source=site.name,
                         **activity.payload),
                    origin=site.name,
                )
                report.activities += 1
                self._sync_marks[(site.name, user_id)] = max(
                    self._sync_marks.get((site.name, user_id), 0),
                    activity.sequence,
                )
        return report

    def import_all(
        self, site: RemoteSocialSite, with_activities: bool = False
    ) -> IntegrationReport:
        """Import every user registered on *site*."""
        total = IntegrationReport(site=site.name)
        for user_id in site.iter_users():
            r = self.import_user(site, user_id, with_activities=with_activities)
            total.users += r.users
            total.connections += r.connections
            total.activities += r.activities
            total.denied += r.denied
        return total

    # ------------------------------------------------------------- write-back
    def push_connection(
        self, site: RemoteSocialSite, user_id: Id, other: Id
    ) -> bool:
        """Propagate a locally-created connection back to the social site.

        Returns False when the user has not granted write scope (the
        connection then exists only locally — a "focused view" divergence).
        """
        try:
            site.push_connection(user_id, other, self.client_name)
        except PermissionDeniedError:
            return False
        return True

    def staleness(self, site: RemoteSocialSite, user_id: Id) -> int:
        """How many remote activities are newer than our last import."""
        mark = self._sync_marks.get((site.name, user_id), 0)
        return sum(
            1
            for a in site._activities  # site-internal view for measurement
            if a.user_id == user_id and a.sequence > mark
        )

"""Sharded scans and the pooled executor: parity, lowering, EXPLAIN.

The acceptance contract of the partition/parallel refactor: every query
produces identical results (1e-9 on scores) across {monolithic, 2-shard,
7-shard} stores × {sequential, pooled} executors, verified here with the
hypothesis workload factory; plus structural tests for the lowering rule
(threshold, pruning, covering), the runtime degrade path, per-shard
EXPLAIN rows, and the session-level wiring.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import factories
from repro.api import SearchRequest, Session, SessionConfig
from repro.core import Condition, Link, Node, input_graph
from repro.discovery import InformationDiscoverer, parse_query
from repro.plan import (
    CostModel,
    QueryPlanner,
    SHARDED,
    ShardedScanOp,
    WorkerPool,
)

TOL = 1e-9

VOCAB = ("topic0", "topic1", "thing", "offkey")


def sharded_planner(graph, shards, parallelism="never",
                    min_nodes=0.0) -> QueryPlanner:
    planner = QueryPlanner(
        graph,
        cost_model=CostModel(shard_scan_min_nodes=min_nodes),
        parallelism=parallelism,
    )
    if shards > 1:
        planner.attach_shards(shards)
    return planner


@st.composite
def site_queries(draw):
    graph = factories.social_site_graph(
        num_users=draw(st.integers(min_value=1, max_value=6)),
        num_items=draw(st.integers(min_value=1, max_value=9)),
        friends_per_user=draw(st.integers(min_value=0, max_value=3)),
        acts_per_user=draw(st.integers(min_value=0, max_value=4)),
        with_sim_links=draw(st.booleans()),
    )
    user = f"u{draw(st.integers(min_value=0, max_value=5))}"
    text = " ".join(draw(st.lists(st.sampled_from(VOCAB), max_size=2)))
    strategy = draw(st.sampled_from(["friends", "similar_users",
                                     "item_based"]))
    return graph, user, text, strategy


class TestDifferentialParity:
    """{monolithic, 2, 7 shards} × {sequential, pooled} — one ranking."""

    @settings(max_examples=25, deadline=None)
    @given(site_queries())
    def test_every_configuration_ranks_identically(self, workload):
        graph, user, text, strategy = workload
        reference = InformationDiscoverer(graph).rank(
            parse_query(user, text), strategy=strategy
        )
        for shards in (1, 2, 7):
            for mode in ("never", "force"):
                discoverer = InformationDiscoverer(graph)
                discoverer.planner.cost_model = CostModel(
                    shard_scan_min_nodes=0.0
                )
                if shards > 1:
                    discoverer.planner.attach_shards(shards)
                discoverer.planner.parallelism = mode
                got = discoverer.rank(parse_query(user, text),
                                      strategy=strategy)
                assert [s.item_id for s in got.items] == [
                    s.item_id for s in reference.items
                ]
                for a, b in zip(got.items, reference.items):
                    assert a.combined == pytest.approx(b.combined, abs=TOL)
                    assert a.semantic == pytest.approx(b.semantic, abs=TOL)
                    assert a.social == pytest.approx(b.social, abs=TOL)
                assert got.social.scores == pytest.approx(
                    reference.social.scores, abs=TOL
                )

    @settings(max_examples=15, deadline=None)
    @given(site_queries(), st.sampled_from([2, 7]))
    def test_raw_sharded_scan_matches_monolithic(self, workload, shards):
        graph, _user, _text, _strategy = workload
        expr = input_graph("G").select_nodes({"type": "item"})
        mono = QueryPlanner(graph).execute(expr)
        for mode in ("never", "force"):
            planner = sharded_planner(graph, shards, parallelism=mode)
            execution = planner.execute(expr)
            assert execution.result.same_as(mono.result)


class TestLowering:
    def test_small_scans_stay_unsharded(self):
        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 4, min_nodes=10_000.0)
        plan, _ = planner.compile(
            input_graph("G").select_nodes({"type": "item"})
        )
        assert not plan.uses_sharded_scan

    def test_large_scans_shard_and_record_the_decision(self):
        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 4)
        plan, _ = planner.compile(
            input_graph("G").select_nodes({"type": "item"})
        )
        assert plan.uses_sharded_scan
        (decision,) = [d for d in plan.decisions if d.chosen == SHARDED]
        assert "4 partitions" in decision.reason
        assert "covered by type 'item'" in decision.reason

    def test_type_pinned_keyword_scan_prunes_but_is_not_covered(self):
        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 3)
        plan, _ = planner.compile(input_graph("G").select_nodes(
            Condition({"type": "item"}, keywords="topic0")
        ))
        ops = [op for op in plan._walk(plan.root, set())
               if isinstance(op, ShardedScanOp)]
        assert ops and ops[0].prune_type == "item"
        assert not ops[0].covered

    def test_unpinned_conditions_scan_whole_shards(self):
        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 3)
        plan, _ = planner.compile(
            input_graph("G").select_nodes({"name": "item 1"})
        )
        ops = [op for op in plan._walk(plan.root, set())
               if isinstance(op, ShardedScanOp)]
        assert ops and ops[0].prune_type is None
        execution = planner.execute(
            input_graph("G").select_nodes({"name": "item 1"})
        )
        assert [n.id for n in execution.result.nodes()] == ["i1"]

    def test_derived_input_scans_never_shard(self):
        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 4)
        derived = input_graph("G").select_nodes({"type": "item"}) \
            .select_nodes({"type": "item"})
        plan, _ = planner.compile(derived)
        sharded = [op for op in plan._walk(plan.root, set())
                   if isinstance(op, ShardedScanOp)]
        # only the base-graph selection scatters; the derived one scans
        assert len(sharded) == 1
        assert sharded[0].logical.child.op == "input"


class TestInPlaceWriteInvalidation:
    """Derived planner caches must die on in-place graph mutations.

    The plan cache validates against the graph's mutation epoch; the
    planner-local result-bearing caches (sub-plan memo, shard views)
    must use the same clock, or a recompiled plan silently serves
    pre-write records.
    """

    def test_subplan_memo_sees_in_place_writes(self):
        graph = factories.social_site_graph(num_items=5)
        planner = QueryPlanner(graph)
        expr = input_graph("G").select_nodes({"type": "item"})
        before = planner.execute(expr)
        assert before.result.num_nodes == 5
        graph.add_node(Node("i-live", type="item", name="in-place"))
        after = planner.execute(expr)
        assert after.result.has_node("i-live")
        assert after.result.num_nodes == 6

    def test_shard_views_see_in_place_writes(self):
        graph = factories.social_site_graph(num_items=5)
        planner = sharded_planner(graph, 3)
        expr = input_graph("G").select_nodes({"type": "item"})
        env = {"G": graph}  # memo bypassed: exercises the views directly
        before = planner.execute(expr, env=env)
        assert before.result.num_nodes == 5
        graph.add_node(Node("i-live", type="item", name="in-place"))
        after = planner.execute(expr, env=env)
        assert after.result.has_node("i-live")
        graph.remove_node("i-live")
        assert not planner.execute(expr, env=env).result.has_node("i-live")

    def test_network_index_sees_in_place_writes(self):
        graph = factories.social_site_graph(num_users=4, num_items=4,
                                            with_sim_links=False)
        planner = QueryPlanner(graph)
        from repro.discovery import parse_query

        query = parse_query("u0", "")
        before = planner.discovery_pipeline(query, alpha=0.0, access="index")
        assert not before.result.has_node("i-live")
        graph.add_node(Node("i-live", type="item", name="in-place"))
        graph.add_link(Link("a-live", "u1", "i-live", type="act, visit"))
        after = planner.discovery_pipeline(query, alpha=0.0, access="index")
        assert after.result.has_node("i-live")  # u0 follows u1


class TestRuntimeDegrade:
    def test_foreign_environment_degrades_to_full_scan(self):
        graph = factories.social_site_graph()
        other = factories.social_site_graph(num_items=3)
        planner = sharded_planner(graph, 4)
        expr = input_graph("G").select_nodes({"type": "item"})
        plan, _ = planner.compile(expr)
        assert plan.uses_sharded_scan
        execution = planner.execute(expr, env={"G": other})
        # provider refuses to shard a graph it did not partition
        assert execution.degraded_ops == 1
        assert execution.result.same_as(
            QueryPlanner(other).execute(expr).result
        )

    def test_bare_plan_without_provider_still_runs(self):
        from repro.plan import compile_plan
        from repro.core.stats import GraphStats

        graph = factories.social_site_graph()
        plan = compile_plan(
            input_graph("G").select_nodes({"type": "item"}),
            GraphStats.of(graph),
            cost_model=CostModel(shard_scan_min_nodes=0.0),
            shards=4,
        )
        assert plan.uses_sharded_scan
        execution = plan.execute({"G": graph})
        assert execution.degraded_ops == 1
        assert {n.id for n in execution.result.nodes()} == {
            n.id for n in graph.nodes_of_type("item")
        }


class TestExplainAndProfiles:
    def test_per_shard_rows_with_sequential_executor(self):
        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 3)
        execution = planner.execute(
            input_graph("G").select_nodes({"type": "item"})
        )
        shard_rows = [p for p in execution.profiles if p.shard is not None]
        assert [p.shard for p in shard_rows] == [0, 1, 2]
        assert sum(p.actual.nodes for p in shard_rows) == \
            execution.result.num_nodes
        assert execution.executor == "sequential"
        assert "[sharded×3:item*]" in execution.render()

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_pooled_execution_tags_workers(self):
        graph = factories.social_site_graph(num_users=7, num_items=9)
        planner = sharded_planner(graph, 2, parallelism="force")
        execution = planner.execute(
            input_graph("G").select_nodes({"type": "item"})
        )
        assert execution.executor.startswith("pooled(")
        workers = {p.worker for p in execution.profiles if p.worker}
        assert workers  # at least one op ran on a named pool thread
        assert "executor=pooled" in execution.render()

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_pooled_errors_propagate(self):
        from repro.errors import ExpressionError

        graph = factories.social_site_graph()
        planner = sharded_planner(graph, 2, parallelism="force")
        with pytest.raises(ExpressionError):
            planner.execute(input_graph("MISSING").select_nodes({}))

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_pooled_repeats_serve_from_the_subplan_memo(self):
        # The scheduler must consult the generation memo before fanning a
        # sharded scan out — otherwise the pooled executor re-scans every
        # partition on every repeat of a hot query.
        graph = factories.social_site_graph(num_users=7, num_items=9)
        planner = sharded_planner(graph, 3, parallelism="force")
        expr = input_graph("G").select_nodes({"type": "item"})
        first = planner.execute(expr)
        assert any(p.shard is not None for p in first.profiles)
        second = planner.execute(expr)
        assert second.result.same_as(first.result)
        assert not any(p.shard is not None for p in second.profiles)
        assert "(memo)" in second.render()

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_worker_pool_accounts_tasks(self):
        pool = WorkerPool(max_workers=2)
        graph = factories.social_site_graph()
        planner = QueryPlanner(
            graph, cost_model=CostModel(shard_scan_min_nodes=0.0),
            parallelism="force", pool=pool,
        )
        planner.attach_shards(3)
        planner.execute(input_graph("G").select_nodes({"type": "item"}))
        assert pool.tasks_run >= 3  # the shard tasks at minimum
        pool.shutdown()


class TestSessionWiring:
    def test_config_shards_back_the_store_and_the_planner(self):
        session = Session.from_graph(
            factories.social_site_graph(),
            SessionConfig(shards=3),
        )
        assert session.data_manager.num_shards == 3
        assert session.planner.shards == 3

    def test_sharded_parallel_session_serves_identical_pages(self):
        graph = factories.social_site_graph(num_users=7, num_items=9)
        plain = Session.from_graph(graph)
        fancy = Session.from_graph(
            graph, SessionConfig(shards=5, parallelism="force"),
        )
        fancy.planner.cost_model = CostModel(shard_scan_min_nodes=0.0)
        for request in (
            SearchRequest(user_id="u0", text="topic0"),
            SearchRequest(user_id="u1"),
            SearchRequest(user_id="u2", text="thing", strategy="item_based"),
        ):
            assert fancy.run(request).items == plain.run(request).items
        assert fancy.stats.parallel_queries >= 1
        response = fancy.run(SearchRequest(user_id="u0", explain=True))
        assert response.plan.executor.startswith("pooled(")
        assert response.plan.sharded

    def test_writes_invalidate_shard_views(self):
        session = Session.from_graph(
            factories.social_site_graph(),
            SessionConfig(shards=3),
        )
        session.planner.cost_model = CostModel(shard_scan_min_nodes=0.0)
        before = session.run(SearchRequest(user_id="u0"))
        session.data_manager.add_node(Node(
            "i-new", type="item", name="fresh", keywords="topic0 thing",
        ))
        session.data_manager.add_link(
            Link("a-new", "u1", "i-new", type="act, visit")
        )
        after = session.run(SearchRequest(user_id="u0"))
        assert "i-new" in after.items
        assert before.items != after.items

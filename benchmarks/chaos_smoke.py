#!/usr/bin/env python
"""Chaos smoke: Zipf load while a seeded fault schedule breaks things.

The resilience acceptance run, end to end.  A closed-loop Zipf drive
(:mod:`repro.serve.loadgen`'s mix) runs against a live gateway while a
deterministic :class:`~repro.testing.faults.FaultSchedule` — keyed on
the submitted-request index, so a seeded run arms the same faults at
the same requests every time — injects, mid-run:

* **slow shards** (``physical.scan_shard`` sleeps) — latency, not error;
* **failing shard scans** (``physical.scan_shard`` raises) — the
  planner's ladder degrades threads→sequential and retries;
* **hung executor slots** (``serve.batch`` sleeps past the deadline) —
  the hedge re-dispatches, or the deadline timer sheds typed;
* **a corrupted checkpoint** (``persist.snapshot`` bit-flip) — the
  read-side CRC refuses it loudly.

What must hold (assertion, not vibes):

1. **No wedge** — the whole drive completes inside a hard wall-clock
   budget; every future resolves.
2. **Typed outcomes only** — every submission resolves to
   SearchResponse | RequestFailure | Overloaded | DeadlineExceeded.
3. **Ranking parity on survivors** — every SearchResponse matches the
   pre-chaos sequential reference to 1e-9, faults or no faults.
4. **Self-healing** — after the schedule finishes, a clean wave serves
   100% and no circuit breaker is left open.

``python benchmarks/chaos_smoke.py --quick`` is the CI chaos-smoke
entry point (exit 0/1).
"""

from __future__ import annotations

import argparse
import asyncio
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro.api import SearchRequest, SearchResponse, Session, SessionConfig
from repro.errors import PersistenceError
from repro.management.persist import snapshot_graph
from repro.serve import (
    AdmissionPolicy,
    DeadlineExceeded,
    GatewayConfig,
    Overloaded,
    ServeGateway,
    TenantPolicy,
)
from repro.serve.loadgen import LoadMix, LoadMixConfig
from repro.testing import (
    FaultPhase,
    FaultSchedule,
    arm,
    disarm,
    disarm_all,
    file_corruptor,
    raising,
    sleeping,
)
from repro.workloads import WorkloadConfig, build_site

TOL = 1e-9


def build_schedule(total: int) -> FaultSchedule:
    """The fault timeline, proportional to the drive length."""

    def at(fraction: float) -> int:
        return int(total * fraction)

    return FaultSchedule([
        # slow shards: latency injection, answers must not change
        FaultPhase(start=at(0.20), stop=at(0.35), handlers={
            "physical.scan_shard": sleeping(0.002),
        }),
        # failing shard scans: the ladder retries sequentially
        FaultPhase(start=at(0.40), stop=at(0.55), handlers={
            "physical.scan_shard": raising(
                lambda: RuntimeError("chaos: shard scan blew up"), times=4
            ),
        }),
        # hung executor slots: hedge or deadline, never a stuck future
        FaultPhase(start=at(0.60), stop=at(0.75), handlers={
            "serve.batch": sleeping(3.0, times=3),
        }),
    ])


def reference_responses(
    session: Session, stream: Sequence[tuple[str, SearchRequest]]
) -> dict[SearchRequest, SearchResponse]:
    """Pre-chaos sequential ground truth, one run per distinct request."""
    reference: dict[SearchRequest, SearchResponse] = {}
    for _, request in stream:
        if request not in reference:
            reference[request] = session.run(request)
    return reference


def ranking_matches(got: SearchResponse, want: SearchResponse) -> bool:
    got_flat = got.page.flat
    want_flat = want.page.flat
    if [e.item_id for e in got_flat] != [e.item_id for e in want_flat]:
        return False
    return all(
        abs(a.score - b.score) <= TOL
        for a, b in zip(got_flat, want_flat)
    )


async def drive_chaos(
    gateway: ServeGateway,
    stream: Sequence[tuple[str, SearchRequest]],
    schedule: FaultSchedule,
    concurrency: int,
) -> list[tuple[SearchRequest, object]]:
    """Closed-loop drive; the schedule is polled per submitted index."""
    outcomes: list[tuple[SearchRequest, object]] = []
    position = 0

    async def client() -> None:
        nonlocal position
        while position < len(stream):
            index = position
            position += 1
            schedule.poll(index)
            tenant, request = stream[index]
            outcome = await gateway.submit(tenant, request)
            outcomes.append((request, outcome))

    await asyncio.gather(*(client() for _ in range(max(1, concurrency))))
    return outcomes


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="chaos smoke for the resilient serving stack"
    )
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: tiny site, short drive")
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    if args.quick:
        site_config = WorkloadConfig(num_users=80, num_items=160,
                                     seed=args.seed)
        total, clean_total, concurrency = 120, 32, 16
        budget_s = 120.0
    else:
        site_config = WorkloadConfig(num_users=400, num_items=800,
                                     seed=args.seed)
        total, clean_total, concurrency = 384, 64, 32
        budget_s = 300.0

    site = build_site(site_config)
    # sharded, so per-shard scan subtasks (and their fault point) exist
    session = Session.from_graph(site.graph, SessionConfig(shards=4))
    # short breaker cooldowns: a breaker tripped mid-chaos must get its
    # half-open probe during the recovery wave, not five seconds later
    session.planner.pool_breaker.cooldown_s = 0.5
    session.planner.attr_breaker.cooldown_s = 0.5
    mix = LoadMix.for_site(
        site.user_ids, site.categories, LoadMixConfig(seed=args.seed)
    )
    stream = mix.stream(total)
    clean_stream = mix.stream(clean_total)
    reference = reference_responses(session, stream + clean_stream)

    config = GatewayConfig(
        batch_window_s=0.002,
        max_batch=8,
        default_deadline_s=2.0,
        drain_timeout_s=5.0,
        hedge=True,
        hedge_min_samples=8,
        admission=AdmissionPolicy(
            default=TenantPolicy(capacity=64.0, refill_per_s=512.0),
            max_depth=512,
        ),
    )
    schedule = build_schedule(total)
    failures: list[str] = []

    async def run(chaos_dir: Path) -> tuple[list, list, object, dict | None]:
        async with ServeGateway(session, config) as gateway:
            chaos_outcomes = await drive_chaos(
                gateway, stream, schedule, concurrency
            )
            schedule.finish()
            # a corrupted checkpoint must be refused at read time, typed
            corrupt_error: dict | None = None
            arm({"persist.snapshot": file_corruptor(times=1)})
            try:
                await gateway.checkpoint(chaos_dir)
            finally:
                disarm("persist.snapshot")
            try:
                snapshot_graph(chaos_dir)
            except PersistenceError as error:
                corrupt_error = {"refused": str(error)}
            # let any breaker tripped mid-chaos reach its half-open
            # probe window before the recovery wave exercises it
            await asyncio.sleep(0.6)
            # recovery wave: everything disarmed, serving must be whole
            clean_outcomes = await drive_chaos(
                gateway, clean_stream, FaultSchedule([]), concurrency
            )
            stats = gateway.stats()
        return chaos_outcomes, clean_outcomes, stats, corrupt_error

    start = time.perf_counter()
    scratch = Path(tempfile.mkdtemp(prefix="chaos_smoke_"))
    try:
        chaos_outcomes, clean_outcomes, stats, corrupt_error = asyncio.run(
            asyncio.wait_for(
                run(scratch / "corrupt_snapshot"), timeout=budget_s
            )
        )
    except asyncio.TimeoutError:
        print(f"chaos-smoke: WEDGED — drive exceeded {budget_s:.0f}s budget")
        return 1
    finally:
        disarm_all()
        session.close()
        shutil.rmtree(scratch, ignore_errors=True)
    duration = time.perf_counter() - start

    # 1. no wedge: gather returned, and every future resolved
    if len(chaos_outcomes) != total:
        failures.append(
            f"{total - len(chaos_outcomes)} chaos submissions never resolved"
        )

    # 2. typed outcomes only + 3. ranking parity on survivors
    counts = {"completed": 0, "failed": 0, "shed": 0, "deadline": 0}
    parity_violations = 0
    for request, outcome in chaos_outcomes + clean_outcomes:
        if isinstance(outcome, SearchResponse):
            counts["completed"] += 1
            if not ranking_matches(outcome, reference[request]):
                parity_violations += 1
        elif isinstance(outcome, Overloaded):
            counts["shed"] += 1
        elif isinstance(outcome, DeadlineExceeded):
            counts["deadline"] += 1
        elif getattr(outcome, "ok", True) is False:  # RequestFailure
            counts["failed"] += 1
        else:
            failures.append(f"untyped outcome: {outcome!r}")
    if parity_violations:
        failures.append(
            f"{parity_violations} responses diverged from the sequential "
            f"reference (> {TOL} on scores)"
        )

    # 4. self-healing: the clean wave serves 100%, no breaker left open
    clean_bad = [
        outcome for _, outcome in clean_outcomes
        if not isinstance(outcome, SearchResponse)
    ]
    if clean_bad:
        failures.append(
            f"recovery wave: {len(clean_bad)}/{clean_total} requests did "
            f"not complete after faults cleared (first: {clean_bad[0]!r})"
        )
    open_breakers = {
        name: snap.state
        for name, snap in stats.breakers.items()
        if snap.state == "open"
    }
    if open_breakers:
        failures.append(f"breakers left open after recovery: {open_breakers}")
    if corrupt_error is None:
        failures.append(
            "corrupted checkpoint was NOT refused at read time"
        )

    print("=== chaos smoke ===")
    print(f"  drive:      {total} chaos + {clean_total} clean requests, "
          f"{concurrency} clients, {duration:.1f}s")
    print(f"  outcomes:   completed {counts['completed']}  "
          f"failed {counts['failed']}  shed {counts['shed']}  "
          f"deadline {counts['deadline']}")
    print(f"  hedges:     {stats.hedged_batches} batches re-dispatched")
    print(f"  deadline:   {stats.deadline_expired} expiries (gateway-side)")
    print("  breakers:   " + ", ".join(
        f"{name}={snap.state}" for name, snap in sorted(stats.breakers.items())
    ))
    if corrupt_error is not None:
        print("  checkpoint: corrupted snapshot refused (CRC verify)")
    if failures:
        print("chaos-smoke: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("chaos-smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Quickstart: build a small social content graph, run the algebra, search.

Walks the three things a new user of the library does first:

1. build a :class:`SocialContentGraph` by hand;
2. manipulate it with the paper's algebra operators;
3. stand up the full three-layer stack and run a query.

Run:  python examples/quickstart.py
"""

from repro import SocialScope
from repro.core import (
    Condition,
    Link,
    Node,
    SocialContentGraph,
    aggregate_nodes,
    count,
    select_links,
    select_nodes,
    semi_join,
)

# ---------------------------------------------------------------------------
# 1. Build a graph: two travelers, three destinations, some activity.
# ---------------------------------------------------------------------------
graph = SocialContentGraph()
graph.add_node(Node(1, type="user, traveler", name="John"))
graph.add_node(Node(2, type="user", name="Ann"))
graph.add_node(Node("coors", type="item, destination",
                    name="Coors Field", keywords="denver baseball stadium"))
graph.add_node(Node("museum", type="item, destination",
                    name="Ballpark Museum", keywords="denver baseball museum"))
graph.add_node(Node("aquarium", type="item, destination",
                    name="Downtown Aquarium", keywords="denver family aquarium"))

graph.add_link(Link("f1", 1, 2, type="connect, friend"))
graph.add_link(Link("f2", 2, 1, type="connect, friend"))
graph.add_link(Link("v1", 1, "coors", type="act, visit"))
graph.add_link(Link("v2", 2, "coors", type="act, visit"))
graph.add_link(Link("v3", 2, "museum", type="act, visit"))
graph.add_link(Link("t1", 2, "museum", type="act, tag",
                    tags="baseball history"))

print(f"graph: {graph}")

# ---------------------------------------------------------------------------
# 2. The algebra (paper §5).
# ---------------------------------------------------------------------------
# Node Selection with keywords attaches relevance scores (Definition 1):
baseball = select_nodes(
    graph, Condition({"type": "destination"}, keywords="denver baseball")
)
print("\nσN(destinations, 'denver baseball'):")
for node in sorted(baseball.nodes(), key=lambda n: -(n.score or 0)):
    print(f"  {node.value('name')}: score={node.score:.3f}")

# Semi-join against a null graph filters links by endpoint (Definition 6):
anns_acts = select_links(
    semi_join(graph, select_nodes(graph, {"id": 2}), ("src", "src")),
    {"type": "act"},
)
print(f"\nAnn's activities: {[l.id for l in anns_acts.links()]}")

# Node aggregation counts friends into an attribute (Definition 9):
with_counts = aggregate_nodes(graph, {"type": "friend"}, "src",
                              "fnd_cnt", count())
print(f"John's friend count: {with_counts.node(1).value('fnd_cnt')}")

# ---------------------------------------------------------------------------
# 3. The full stack (Figure 1): query -> MSG -> organized result page.
# ---------------------------------------------------------------------------
scope = SocialScope.from_graph(graph)
page = scope.search(user_id=1, query="denver baseball")

print("\nsearch(John, 'denver baseball'):")
print(f"  grouping dimension chosen: {page.chosen_dimension}")
for group in page.groups:
    print(f"  [{group.label}]")
    for entry in group.entries:
        print(f"    {entry.name}  score={entry.score:.3f}")
        if entry.explanation.aggregate_text:
            print(f"      ({entry.explanation.aggregate_text})")

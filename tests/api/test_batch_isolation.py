"""Per-request failure isolation in ``Session.run_many``.

A serving batch mixes unrelated tenants: one member's stale cursor (or
any per-request evaluation error) must come back as a typed
:class:`~repro.api.RequestFailure` *value* for that member only — never
abort its batch-mates.  The deterministic failure used throughout is a
cursor minted at a bogus refresh epoch, which ``Session._window`` rejects
with ``QueryError: stale cursor``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    RequestFailure,
    SearchRequest,
    SearchResponse,
    Session,
    encode_cursor,
)
from repro.errors import QueryError
from repro.workloads import ALEXIA, JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture()
def session(travel):
    return Session.from_graph(travel.graph)


def stale_request() -> SearchRequest:
    """A request whose evaluation deterministically raises QueryError."""
    return SearchRequest(
        user_id=JOHN,
        text="denver",
        cursor=encode_cursor(0, 5, epoch=999),
    )


def mixed_requests() -> list[SearchRequest]:
    return [
        SearchRequest(user_id=JOHN, text="Denver attractions", k=5),
        stale_request(),
        SearchRequest(user_id=ALEXIA, text="history"),
    ]


class TestIsolation:
    def test_bad_request_fails_alone(self, session):
        outcomes = session.run_many(mixed_requests(), isolate_errors=True)
        assert [type(o) for o in outcomes] == [
            SearchResponse, RequestFailure, SearchResponse,
        ]
        assert [o.ok for o in outcomes] == [True, False, True]

    def test_failure_carries_cause_and_request(self, session):
        requests = mixed_requests()
        failure = session.run_many(requests, isolate_errors=True)[1]
        assert failure.request == requests[1]
        assert failure.kind == "QueryError"
        assert "stale cursor" in failure.message
        with pytest.raises(QueryError, match="stale cursor"):
            failure.raise_()

    def test_good_members_match_solo_runs(self, session):
        requests = mixed_requests()
        outcomes = session.run_many(requests, isolate_errors=True)
        solo_first = session.run(requests[0])
        solo_last = session.run(requests[2])
        assert outcomes[0].items == solo_first.items
        assert outcomes[2].items == solo_last.items

    def test_order_preserved_with_many_failures(self, session):
        requests = [
            stale_request(),
            SearchRequest(user_id=JOHN, text="museum"),
            stale_request(),
            SearchRequest(user_id=ALEXIA),  # recommendation
            stale_request(),
        ]
        outcomes = session.run_many(requests, isolate_errors=True)
        assert [o.ok for o in outcomes] == [False, True, False, True, False]
        for request, outcome in zip(requests, outcomes):
            if isinstance(outcome, RequestFailure):
                assert outcome.request == request

    def test_executor_path_isolates_too(self, session):
        with ThreadPoolExecutor(max_workers=3) as pool:
            outcomes = session.run_many(
                mixed_requests(), executor=pool, isolate_errors=True
            )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1], RequestFailure)
        assert outcomes[1].kind == "QueryError"

    def test_default_still_raises(self, session):
        """Without opting in, run_many keeps its fail-fast contract."""
        with pytest.raises(QueryError, match="stale cursor"):
            session.run_many(mixed_requests())

    def test_all_failures_batch(self, session):
        outcomes = session.run_many(
            [stale_request(), stale_request()], isolate_errors=True
        )
        assert all(isinstance(o, RequestFailure) for o in outcomes)
        assert session.stats.batches >= 1


class TestRequestFailureValue:
    def test_raise_without_cause_wraps_as_query_error(self):
        failure = RequestFailure(
            request=SearchRequest(user_id=JOHN),
            kind="ValueError",
            message="boom",
        )
        with pytest.raises(QueryError, match="ValueError: boom"):
            failure.raise_()

    def test_cause_excluded_from_equality(self, session):
        request = stale_request()
        a = session.run_many([request], isolate_errors=True)[0]
        b = session.run_many([request], isolate_errors=True)[0]
        assert isinstance(a, RequestFailure) and isinstance(b, RequestFailure)
        assert a == b  # `error` is compare=False: equality is semantic

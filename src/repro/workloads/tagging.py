"""A del.icio.us-like collaborative tagging workload (for paper §6.2).

Section 6.2 studies network-aware search over a site "where users connect
with other users and tag items with tags", sized at 100k users / 1M items /
1k tags in the paper's back-of-envelope index analysis.  This generator
produces scaled-down graphs with the two properties the clustering
strategies rely on:

* **community structure** — users belong to latent communities; friendships
  form mostly within a community, so *network-based* clusters (Def 11) are
  recoverable;
* **community-correlated tagging** — each community favours its own item
  and tag pools, so *behavior-based* clusters (Def 12) are recoverable too,
  but imperfectly aligned with the network communities (the paper's
  motivating scenario for preferring one strategy over the other).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import Link, Node, SocialContentGraph


@dataclass
class TaggingSiteConfig:
    """Shape of the synthetic collaborative tagging site.

    The paper-scale reference point (100k users, 1M items, 1k tags,
    20 tags/item from 5% of users) is reproduced analytically in
    :mod:`repro.indexing.sizing`; defaults here are a 1/500 scale that
    keeps test and bench runtimes in seconds.
    """

    num_users: int = 200
    num_items: int = 500
    num_tags: int = 40
    num_communities: int = 5
    friends_per_user: int = 6
    #: probability a friendship stays within the user's community
    community_cohesion: float = 0.85
    actions_per_user: int = 15
    tags_per_action: int = 2
    #: probability an action targets the community's item/tag pool
    behavior_alignment: float = 0.8
    seed: int = 11


@dataclass
class TaggingSite:
    """Built tagging site: graph plus registries for tests and benches."""

    graph: SocialContentGraph
    user_ids: list[int] = field(default_factory=list)
    item_ids: list[str] = field(default_factory=list)
    tag_vocab: list[str] = field(default_factory=list)
    community_of: dict[int, int] = field(default_factory=dict)


def build_tagging_site(config: TaggingSiteConfig | None = None) -> TaggingSite:
    """Generate the tagging site deterministically from the seed."""
    config = config or TaggingSiteConfig()
    rng = random.Random(config.seed)
    graph = SocialContentGraph()
    site = TaggingSite(graph=graph)

    site.tag_vocab = [f"tag{k}" for k in range(config.num_tags)]
    site.user_ids = list(range(1, config.num_users + 1))
    site.item_ids = [f"url{k}" for k in range(1, config.num_items + 1)]

    # Latent communities partition users, items and tags.
    communities = list(range(config.num_communities))
    users_in: dict[int, list[int]] = {c: [] for c in communities}
    for uid in site.user_ids:
        community = rng.choice(communities)
        site.community_of[uid] = community
        users_in[community].append(uid)
        graph.add_node(Node(uid, type="user", name=f"user{uid}",
                            community=community))

    items_in: dict[int, list[str]] = {c: [] for c in communities}
    for item_id in site.item_ids:
        community = rng.choice(communities)
        items_in[community].append(item_id)
        graph.add_node(Node(item_id, type="item, url", name=item_id,
                            community=community))

    tags_in: dict[int, list[str]] = {c: [] for c in communities}
    for index, tag in enumerate(site.tag_vocab):
        tags_in[index % config.num_communities].append(tag)

    # ------------------------------------------------------------ friendships
    def befriend(a: int, b: int) -> None:
        if a == b or graph.has_link(f"fr:{a}->{b}"):
            return
        graph.add_link(Link(f"fr:{a}->{b}", a, b, type="connect, friend"))
        graph.add_link(Link(f"fr:{b}->{a}", b, a, type="connect, friend"))

    for uid in site.user_ids:
        own = site.community_of[uid]
        for _ in range(config.friends_per_user):
            if rng.random() < config.community_cohesion and users_in[own]:
                pool = users_in[own]
            else:
                pool = site.user_ids
            befriend(uid, rng.choice(pool))

    # ------------------------------------------------------------ tagging actions
    link_seq = 0
    for uid in site.user_ids:
        own = site.community_of[uid]
        seen: set[str] = set()
        for _ in range(config.actions_per_user):
            if rng.random() < config.behavior_alignment and items_in[own]:
                item = rng.choice(items_in[own])
                tag_pool = tags_in[own] or site.tag_vocab
            else:
                item = rng.choice(site.item_ids)
                tag_pool = site.tag_vocab
            if item in seen:
                continue
            seen.add(item)
            k = min(config.tags_per_action, len(tag_pool))
            tags = rng.sample(tag_pool, k=k)
            link_seq += 1
            graph.add_link(
                Link(f"tg:{link_seq}", uid, item, type="act, tag", tags=tags)
            )
    return site

"""The Data Manager: logical graph service over the physical store (§3).

    "the maintenance and retrieval of the social content graph through the
    Data Manager, which abstracts away the physical implementation of the
    graph."

:class:`DataManager` is what the upper layers talk to: it loads graphs into
the physical :class:`~repro.management.storage.GraphStore`, serves logical
snapshots plus overlay views, answers provenance questions, exposes
optimizer statistics, and owns the refresh machinery (integrator +
activity manager + scheduler) for externally-integrated data.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core import Id, Link, Node, SocialContentGraph
from repro.core.serialize import link_to_dict, node_to_dict
from repro.management.activity import ActivityManager, UserActivityProfile
from repro.management.integrator import ContentIntegrator, IntegrationReport
from repro.management.remote import RemoteSocialSite
from repro.management.storage import (
    DERIVED,
    GraphStore,
    LOCAL,
    PartitionedGraphStore,
)
from repro.management.sync import SyncScheduler
from repro.management.wal import (
    OP_DEL_LINK,
    OP_DEL_NODE,
    OP_LINK,
    OP_NODE,
    WalWriter,
)
from repro.core.stats import GraphStats


class DataManager:
    """Facade over physical storage + integration + refresh policy.

    *shards* > 1 backs the manager with a
    :class:`~repro.management.storage.PartitionedGraphStore`; the logical
    surface is unchanged (the partitioning is a physical choice, exactly
    as §3 promises), but the plan layer can then scatter scans across the
    shard populations.
    """

    def __init__(self, site_name: str = "socialscope",
                 indexed_attributes: tuple[str, ...] = ("name",),
                 shards: int = 1):
        self.site_name = site_name
        if shards > 1:
            self.store: GraphStore | PartitionedGraphStore = (
                PartitionedGraphStore(
                    indexed_attributes=indexed_attributes, num_shards=shards
                )
            )
        else:
            self.store = GraphStore(indexed_attributes=indexed_attributes)
        self.integrator = ContentIntegrator(self.store, client_name=site_name)
        self.activity_manager = ActivityManager()
        self._snapshot_cache: SocialContentGraph | None = None
        self._version = 0
        #: optional write-ahead log; once attached, every logical write
        #: (loads, upserts, deletes) appends an activity record before
        #: the call returns — recovery replays these past the snapshot
        self._wal: WalWriter | None = None
        #: high watermark: the WAL seq of the last write reflected here
        self._applied_seq = 0

    @property
    def num_shards(self) -> int:
        """Shard count of the backing store (1 for the monolithic store)."""
        return getattr(self.store, "num_shards", 1)

    @property
    def version(self) -> int:
        """Monotone write counter — bumps whenever stored data changes.

        Upper layers (the session engine in particular) compare versions
        instead of graphs to decide whether cached per-graph state (tf-idf
        corpus, search indexes) is still valid.
        """
        return self._version

    def _mark_changed(self) -> None:
        self._snapshot_cache = None
        self._version += 1

    # ------------------------------------------------------------ durability
    @property
    def wal(self) -> WalWriter | None:
        """The attached write-ahead log (None = in-memory only)."""
        return self._wal

    @property
    def applied_seq(self) -> int:
        """WAL seq of the last write this store reflects (0 = none)."""
        return self._applied_seq

    def attach_wal(self, wal: WalWriter) -> None:
        """Journal every subsequent logical write through *wal*.

        Writes already in the store are *not* retro-logged — they are the
        snapshot's job (:meth:`checkpoint`).  Integration pulls
        (:meth:`attach_remote`) write through the integrator below this
        facade and are likewise captured by the next checkpoint, not the
        log.
        """
        self._wal = wal

    def enable_wal(self, directory: str | Path, **kw: Any) -> WalWriter:
        """Attach a fresh :class:`WalWriter` under *directory* (convenience).

        The writer continues after this store's current watermark, so a
        manager recovered with ``resume_wal=False`` can re-enable
        journaling without re-numbering history.
        """
        wal = WalWriter(directory, next_seq=self._applied_seq + 1, **kw)
        self.attach_wal(wal)
        return wal

    def _log(self, op: str, payload: dict[str, Any]) -> None:
        if self._wal is not None:
            self._applied_seq = self._wal.append(op, payload)

    def checkpoint(
        self, directory: str | Path, extra: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Write a recoverable site snapshot into *directory*.

        Durability order: the attached WAL (if any) is fsynced first, so
        the manifest's ``applied_seq`` watermark never references records
        the disk does not hold; the snapshot files commit atomically
        (manifest last); then the WAL rotates and segments fully covered
        by the snapshot are pruned.  ``extra`` rides along in the
        manifest for the upper layers (see
        :meth:`repro.api.Session.save`).
        """
        from repro.management import persist

        if self._wal is not None:
            self._wal.sync()
        manifest = persist.write_snapshot(self, directory, extra=extra)
        if self._wal is not None:
            self._wal.rotate()
            persist.walmod.prune_segments(
                self._wal.directory, self._applied_seq
            )
        return manifest

    @classmethod
    def recover(
        cls, directory: str | Path, *, resume_wal: bool = True
    ) -> "tuple[DataManager, Any]":
        """Rebuild a manager from a site snapshot + WAL tail.

        Returns ``(manager, report)`` where the report carries the
        manifest, the replayed-record count and whether a torn tail was
        truncated (see
        :func:`repro.management.persist.recover_data_manager`).
        """
        from repro.management import persist

        return persist.recover_data_manager(directory, resume_wal=resume_wal)

    # ------------------------------------------------------------------ load
    def load_graph(self, graph: SocialContentGraph, origin: str = LOCAL) -> None:
        """Bulk-load a logical graph into the store under one origin."""
        for node in graph.nodes():
            self.store.upsert_node(node, origin=origin)
            self._log(OP_NODE, {**node_to_dict(node), "origin": origin})
        for link in graph.links():
            self.store.upsert_link(link, origin=origin)
            self._log(OP_LINK, {**link_to_dict(link), "origin": origin})
        self._mark_changed()

    def add_node(self, node: Node, origin: str = LOCAL) -> Node:
        """Insert/update one node."""
        self._mark_changed()
        stored = self.store.upsert_node(node, origin=origin)
        self._log(OP_NODE, {**node_to_dict(stored), "origin": origin})
        return stored

    def add_link(self, link: Link, origin: str = LOCAL) -> Link:
        """Insert/update one link."""
        self._mark_changed()
        stored = self.store.upsert_link(link, origin=origin)
        self._log(OP_LINK, {**link_to_dict(stored), "origin": origin})
        return stored

    def delete_node(self, node_id: Id) -> None:
        """Remove a node (incident links cascade, exactly as on replay)."""
        self.store.delete_node(node_id)
        self._log(OP_DEL_NODE, {"id": node_id})
        self._mark_changed()

    def delete_link(self, link_id: Id) -> None:
        """Remove one link."""
        self.store.delete_link(link_id)
        self._log(OP_DEL_LINK, {"id": link_id})
        self._mark_changed()

    def merge_derived(self, derived: SocialContentGraph) -> None:
        """Union a Content Analyzer derivation into the store."""
        self.load_graph(derived, origin=DERIVED)

    # ------------------------------------------------------------------ read
    def graph(self) -> SocialContentGraph:
        """The logical social content graph (cached until the next write)."""
        if self._snapshot_cache is None:
            self._snapshot_cache = self.store.snapshot()
        return self._snapshot_cache

    def statistics(self) -> GraphStats:
        """Cardinality statistics for the optimizer."""
        return self.store.graph_stats()

    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        """Attributes the physical store keeps value indexes for."""
        return self.store.indexed_attributes

    def plan_cache_stats(self) -> dict[str, object]:
        """Site-wide shared plan-cache counters (a management endpoint).

        Every planner in the process defaults to the shared
        :class:`~repro.plan.cache.SharedPlanCache`, so these numbers
        describe the whole serving site, not one session: queries served
        from already-compiled plans (``hits``), compilations paid
        (``compiles`` — each miss triggers one), LRU/byte-budget
        ``evictions``, inserts the TinyLFU doorkeeper turned away
        (``admission_rejections``), and the resident footprint.
        """
        from repro.plan.cache import shared_plan_cache

        stats = shared_plan_cache().stats
        return {
            "hits": stats.hits,
            "compiles": stats.misses,
            "evictions": stats.evictions,
            "admission_rejections": stats.rejects,
            "size": stats.size,
            "bytes": stats.bytes,
            "hit_rate": stats.hit_rate,
        }

    def provenance_summary(self) -> dict[str, tuple[int, int]]:
        """origin -> (nodes, links) counts: local / derived / per-site."""
        origins: dict[str, tuple[int, int]] = {}
        seen = set()
        for (kind, rid), origin in self.store._origins.items():
            seen.add(origin)
        for origin in sorted(seen):
            nodes, links = self.store.records_from(origin)
            origins[origin] = (len(nodes), len(links))
        return origins

    # ------------------------------------------------------------ integration
    def attach_remote(
        self, site: RemoteSocialSite, with_activities: bool = False
    ) -> IntegrationReport:
        """Import a remote site's users/connections (Open Cartel pull)."""
        report = self.integrator.import_all(site, with_activities=with_activities)
        self._mark_changed()
        return report

    def build_scheduler(self, site: RemoteSocialSite) -> SyncScheduler:
        """Create an activity-driven refresh scheduler for *site*.

        Uses the current graph to profile users; callers run the returned
        scheduler on their simulated clock.
        """
        profiles: dict[Id, UserActivityProfile] = self.activity_manager.analyze(
            self.graph()
        )
        remote_users = set(site.iter_users())
        relevant = {u: p for u, p in profiles.items() if u in remote_users}
        return SyncScheduler(site, self.integrator, relevant)

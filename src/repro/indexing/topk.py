"""Top-k pruning algorithms over sorted inverted lists.

Paper §6.2: "Storing scores allows to sort entries in the inverted list
thereby enabling top-k pruning [16]" — reference 16 is Fagin, Lotem &
Naor's *Optimal aggregation algorithms for middleware* (TA / NRA).  Both
algorithms are implemented from scratch over generic score-sorted lists:

* :func:`threshold_algorithm` (TA) — round-robin sorted access plus random
  access to complete each seen item's score; stops when the k-th best score
  reaches the threshold of unseen items.
* :func:`no_random_access` (NRA) — sorted access only, maintaining
  lower/upper bounds per item; stops when the k-th lower bound dominates
  every other item's upper bound.

Monotone g is assumed (the paper requires it); both functions work for any
g applied to per-list scores with "missing = 0" semantics, which holds for
the default g = sum.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core import Id

Entry = tuple[Id, float]
RandomAccess = Callable[[Id, int], float]
Aggregate = Callable[[Sequence[float]], float]


@dataclass
class QueryStats:
    """Machine-independent work counters for one top-k query."""

    sorted_accesses: int = 0
    random_accesses: int = 0
    exact_computations: int = 0
    candidates: int = 0

    def total_accesses(self) -> int:
        """Sorted + random accesses (the classic middleware cost)."""
        return self.sorted_accesses + self.random_accesses


def _top_k_sorted(scores: dict[Id, float], k: int) -> list[Entry]:
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return ordered[:k]


def brute_force(
    lists: Sequence[Sequence[Entry]],
    k: int,
    g: Aggregate,
) -> tuple[list[Entry], QueryStats]:
    """Score every item appearing in any list (the no-pruning baseline)."""
    stats = QueryStats()
    per_item: dict[Id, list[float]] = {}
    for entries in lists:
        for item, score in entries:
            stats.sorted_accesses += 1
            per_item.setdefault(item, [0.0] * len(lists))
    for li, entries in enumerate(lists):
        for item, score in entries:
            per_item[item][li] = score
    totals = {item: g(scores) for item, scores in per_item.items()}
    stats.candidates = len(totals)
    stats.exact_computations = len(totals)
    return _top_k_sorted({i: s for i, s in totals.items() if s > 0}, k), stats


def threshold_algorithm(
    lists: Sequence[Sequence[Entry]],
    random_access: RandomAccess,
    k: int,
    g: Aggregate,
) -> tuple[list[Entry], QueryStats]:
    """Fagin's TA.

    Performs sorted access in parallel (round-robin, one entry per list per
    round); each newly seen item's full score is completed by random access
    to the other lists.  The stopping threshold is g over the last scores
    seen under sorted access in each list.
    """
    stats = QueryStats()
    n_lists = len(lists)
    if n_lists == 0:
        return [], stats
    positions = [0] * n_lists
    last_seen = [0.0] * n_lists
    exhausted = [len(entries) == 0 for entries in lists]
    seen: dict[Id, float] = {}
    heap: list[tuple[float, str]] = []  # min-heap of top-k scores

    while not all(exhausted):
        for li in range(n_lists):
            if exhausted[li]:
                last_seen[li] = 0.0  # an exhausted list contributes nothing
                continue
            item, score = lists[li][positions[li]]
            stats.sorted_accesses += 1
            positions[li] += 1
            if positions[li] >= len(lists[li]):
                exhausted[li] = True
            last_seen[li] = score
            if item in seen:
                continue
            parts = []
            for other in range(n_lists):
                if other == li:
                    parts.append(score)
                else:
                    parts.append(random_access(item, other))
                    stats.random_accesses += 1
            total = g(parts)
            stats.exact_computations += 1
            seen[item] = total
            if total > 0:
                heapq.heappush(heap, (total, repr(item)))
                if len(heap) > k:
                    heapq.heappop(heap)
        threshold = g(last_seen)
        if len(heap) == k and heap and heap[0][0] >= threshold:
            break
        if threshold <= 0 and all(exhausted):
            break
    stats.candidates = len(seen)
    return _top_k_sorted({i: s for i, s in seen.items() if s > 0}, k), stats


@dataclass
class _Bounds:
    """NRA per-item bookkeeping."""

    lower: float = 0.0
    known: dict = field(default_factory=dict)  # list index -> score


def no_random_access(
    lists: Sequence[Sequence[Entry]],
    k: int,
    g: Aggregate,
) -> tuple[list[Entry], QueryStats]:
    """Fagin's NRA: sorted access only, lower/upper bound maintenance.

    Upper bounds substitute each unknown list score with that list's last
    seen value; the algorithm stops when k items' lower bounds dominate all
    other items' upper bounds (and the unseen-item threshold).
    """
    stats = QueryStats()
    n_lists = len(lists)
    if n_lists == 0:
        return [], stats
    positions = [0] * n_lists
    last_seen = [float("inf")] * n_lists
    exhausted = [len(entries) == 0 for entries in lists]
    for li, is_done in enumerate(exhausted):
        if is_done:
            last_seen[li] = 0.0
    bounds: dict[Id, _Bounds] = {}

    def upper(b: _Bounds) -> float:
        parts = [
            b.known.get(li, last_seen[li] if not exhausted[li] else 0.0)
            for li in range(n_lists)
        ]
        return g(parts)

    def lower(b: _Bounds) -> float:
        parts = [b.known.get(li, 0.0) for li in range(n_lists)]
        return g(parts)

    while not all(exhausted):
        for li in range(n_lists):
            if exhausted[li]:
                continue
            item, score = lists[li][positions[li]]
            stats.sorted_accesses += 1
            positions[li] += 1
            if positions[li] >= len(lists[li]):
                exhausted[li] = True
            last_seen[li] = score
            bounds.setdefault(item, _Bounds()).known[li] = score

        if len(bounds) >= k:
            lowers = {item: lower(b) for item, b in bounds.items()}
            ranked = sorted(lowers.items(), key=lambda kv: (-kv[1], repr(kv[0])))
            kth_lower = ranked[k - 1][1] if len(ranked) >= k else 0.0
            top_ids = {item for item, _ in ranked[:k]}
            threshold = g([
                0.0 if exhausted[li] else last_seen[li] for li in range(n_lists)
            ])
            contender = max(
                (upper(b) for item, b in bounds.items() if item not in top_ids),
                default=0.0,
            )
            if kth_lower >= max(contender, threshold) and kth_lower > 0:
                break

    stats.candidates = len(bounds)
    stats.exact_computations = len(bounds)
    finals = {item: lower(b) for item, b in bounds.items()}
    return _top_k_sorted({i: s for i, s in finals.items() if s > 0}, k), stats

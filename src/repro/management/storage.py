"""Physical storage for social content graphs (the Data Manager's engine).

The paper (§3): "the maintenance and retrieval of the social content graph
through the Data Manager, which abstracts away the physical implementation
of the graph."  :class:`GraphStore` is that physical implementation: an
in-memory record store with

* primary key access for nodes and links,
* secondary indexes on type values and on arbitrary registered attributes,
* adjacency indexes (out/in) for traversals,
* provenance bookkeeping (which *source* owns each record: local, an
  external site, or a derivation),
* maintained statistics for the optimizer (:class:`repro.core.stats.GraphStats`).

:class:`PartitionedGraphStore` is the scale-out form of the same
abstraction: records hash-partition across a configurable number of
shards (nodes by node id; links ride with their source node so outgoing
adjacency stays shard-local), each shard maintains its own
:class:`StoreStats`, and the read surface is identical — ``snapshot``
unions the shards, ``find_nodes`` scatters the lookup, ``graph_stats``
merges the per-shard statistics.  Upper layers (the Data Manager, sync,
the integrator) cannot tell the two apart; the plan layer *can* ask for
per-shard views (:meth:`PartitionedGraphStore.shard_snapshot`) to scatter
a scan.

The logical layer (:class:`repro.core.graph.SocialContentGraph`) is
produced on demand via :meth:`snapshot` / :meth:`view`; algebra operators
never see the store.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core import Id, Link, Node, SocialContentGraph
from repro.core.partition import shard_of
from repro.core.stats import GraphStats
from repro.errors import (
    DanglingLinkError,
    ManagementError,
    UnknownLinkError,
    UnknownNodeError,
)

# ``shard_of`` moved to :mod:`repro.core.partition` (the plan layer's
# columnar scatter needs it and must not import management — see the
# layering DAG in docs/ARCHITECTURE.md); re-imported above so existing
# ``from repro.management.storage import shard_of`` callers keep working.

#: Provenance values for the ``origin`` of records (paper §3: information
#: may be locally owned, externally integrated, or derived).
LOCAL = "local"
DERIVED = "derived"


@dataclass
class StoreStats:
    """Running statistics maintained incrementally on every write."""

    node_types: Counter = field(default_factory=Counter)
    link_types: Counter = field(default_factory=Counter)
    writes: int = 0
    deletes: int = 0

    def as_graph_stats(self, num_nodes: int, num_links: int) -> GraphStats:
        """Adapt to the optimizer's GraphStats."""
        return GraphStats(
            num_nodes=num_nodes,
            num_links=num_links,
            node_types=Counter(self.node_types),
            link_types=Counter(self.link_types),
        )

    @classmethod
    def merged(cls, parts: Iterable["StoreStats"]) -> "StoreStats":
        """Aggregate per-shard statistics into one site-wide view."""
        total = cls()
        for part in parts:
            total.node_types.update(part.node_types)
            total.link_types.update(part.link_types)
            total.writes += part.writes
            total.deletes += part.deletes
        return total


class GraphStore:
    """In-memory physical store with secondary indexes and provenance."""

    def __init__(self, indexed_attributes: Iterable[str] = ()):
        self._nodes: dict[Id, Node] = {}
        self._links: dict[Id, Link] = {}
        self._out: dict[Id, set[Id]] = {}
        self._in: dict[Id, set[Id]] = {}
        self._node_type_index: dict[str, set[Id]] = {}
        self._link_type_index: dict[str, set[Id]] = {}
        self._attr_indexes: dict[str, dict[Any, set[Id]]] = {
            att: {} for att in indexed_attributes
        }
        self._origins: dict[tuple[str, Id], str] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------ write
    def upsert_node(self, node: Node, origin: str = LOCAL) -> Node:
        """Insert or replace a node record, maintaining all indexes."""
        old = self._nodes.get(node.id)
        if old is not None:
            self._deindex_node(old)
        self._nodes[node.id] = node
        self._out.setdefault(node.id, set())
        self._in.setdefault(node.id, set())
        self._index_node(node)
        self._origins[("node", node.id)] = origin
        self.stats.writes += 1
        return node

    def upsert_link(self, link: Link, origin: str = LOCAL) -> Link:
        """Insert or replace a link record (endpoints must exist)."""
        for endpoint in (link.src, link.tgt):
            if endpoint not in self._nodes:
                raise DanglingLinkError(link.id, endpoint)
        old = self._links.get(link.id)
        if old is not None:
            if (old.src, old.tgt) != (link.src, link.tgt):
                raise ManagementError(
                    f"link {link.id!r} cannot change endpoints on upsert"
                )
            self._deindex_link(old)
        self._links[link.id] = link
        self._out[link.src].add(link.id)
        self._in[link.tgt].add(link.id)
        self._index_link(link)
        self._origins[("link", link.id)] = origin
        self.stats.writes += 1
        return link

    def delete_link(self, link_id: Id) -> None:
        """Remove a link and its index entries."""
        link = self._links.pop(link_id, None)
        if link is None:
            raise UnknownLinkError(link_id)
        self._deindex_link(link)
        self._out[link.src].discard(link_id)
        self._in[link.tgt].discard(link_id)
        self._origins.pop(("link", link_id), None)
        self.stats.deletes += 1

    def delete_node(self, node_id: Id) -> None:
        """Remove a node and cascade to incident links."""
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        incident = set(self._out.get(node_id, ())) | set(self._in.get(node_id, ()))
        for link_id in incident:
            if link_id in self._links:
                self.delete_link(link_id)
        self._deindex_node(node)
        del self._nodes[node_id]
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        self._origins.pop(("node", node_id), None)
        self.stats.deletes += 1

    # -------------------------------------------------------------- indexing
    def _index_node(self, node: Node) -> None:
        for t in node.types:
            self._node_type_index.setdefault(str(t), set()).add(node.id)
            self.stats.node_types[str(t)] += 1
        for att, index in self._attr_indexes.items():
            for value in node.values(att):
                index.setdefault(value, set()).add(node.id)

    def _deindex_node(self, node: Node) -> None:
        for t in node.types:
            self._node_type_index.get(str(t), set()).discard(node.id)
            self.stats.node_types[str(t)] -= 1
        for att, index in self._attr_indexes.items():
            for value in node.values(att):
                index.get(value, set()).discard(node.id)

    def _index_link(self, link: Link) -> None:
        for t in link.types:
            self._link_type_index.setdefault(str(t), set()).add(link.id)
            self.stats.link_types[str(t)] += 1

    def _deindex_link(self, link: Link) -> None:
        for t in link.types:
            self._link_type_index.get(str(t), set()).discard(link.id)
            self.stats.link_types[str(t)] -= 1

    # ------------------------------------------------------------------ read
    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        """The attributes this store maintains value indexes for.

        The planner mirrors this registration: selections that pin one of
        these attributes may take the attribute-index access path
        (per-shard value postings) instead of scanning the population.
        """
        return tuple(sorted(self._attr_indexes))

    def node(self, node_id: Id) -> Node:
        """Primary-key node lookup."""
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        return node

    def link(self, link_id: Id) -> Link:
        """Primary-key link lookup."""
        link = self._links.get(link_id)
        if link is None:
            raise UnknownLinkError(link_id)
        return link

    def has_node(self, node_id: Id) -> bool:
        """True if the node exists."""
        return node_id in self._nodes

    def has_link(self, link_id: Id) -> bool:
        """True if the link exists."""
        return link_id in self._links

    @property
    def num_nodes(self) -> int:
        """Node count."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Link count."""
        return len(self._links)

    def nodes_of_type(self, type_name: str) -> Iterator[Node]:
        """Secondary-index scan over a node type."""
        for node_id in sorted(self._node_type_index.get(type_name, ()), key=repr):
            yield self._nodes[node_id]

    def links_of_type(self, type_name: str) -> Iterator[Link]:
        """Secondary-index scan over a link type."""
        for link_id in sorted(self._link_type_index.get(type_name, ()), key=repr):
            yield self._links[link_id]

    def find_nodes(self, att: str, value: Any) -> Iterator[Node]:
        """Attribute-index lookup (attribute must be registered)."""
        index = self._attr_indexes.get(att)
        if index is None:
            raise ManagementError(
                f"attribute {att!r} is not indexed; registered: "
                f"{sorted(self._attr_indexes)}"
            )
        for node_id in sorted(index.get(value, ()), key=repr):
            yield self._nodes[node_id]

    def out_links(self, node_id: Id) -> Iterator[Link]:
        """Adjacency scan: outgoing links."""
        for link_id in self._out.get(node_id, ()):
            yield self._links[link_id]

    def in_links(self, node_id: Id) -> Iterator[Link]:
        """Adjacency scan: incoming links."""
        for link_id in self._in.get(node_id, ()):
            yield self._links[link_id]

    def origin_of(self, kind: str, record_id: Id) -> str | None:
        """Provenance of a record ('local', 'derived', or a site name)."""
        return self._origins.get((kind, record_id))

    def records_from(self, origin: str) -> tuple[set[Id], set[Id]]:
        """(node ids, link ids) owned by *origin*."""
        nodes = {rid for (kind, rid), o in self._origins.items()
                 if kind == "node" and o == origin}
        links = {rid for (kind, rid), o in self._origins.items()
                 if kind == "link" and o == origin}
        return nodes, links

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> SocialContentGraph:
        """A full logical graph over the current store contents."""
        graph = SocialContentGraph()
        for node in self._nodes.values():
            graph.add_node(node)
        for link in self._links.values():
            graph.add_link(link)
        return graph

    def graph_stats(self) -> GraphStats:
        """Optimizer statistics reflecting the current contents."""
        return self.stats.as_graph_stats(self.num_nodes, self.num_links)


class PartitionedGraphStore:
    """A hash-partitioned :class:`GraphStore`: same interface, N shards.

    Nodes partition by :func:`shard_of` on their id; a link is stored in
    its *source* node's shard (outgoing adjacency stays shard-local, the
    common traversal), while the target's shard indexes the incoming side.
    Each shard is a plain :class:`GraphStore` whose write internals are
    driven from here — global invariants (endpoint existence, endpoint
    immutability on upsert) are checked across shards before any shard
    mutates, so a failed write never leaves partial state behind.

    Reads merge the shards back: :meth:`snapshot` unions them,
    :meth:`find_nodes` / :meth:`nodes_of_type` scatter the lookup and
    re-sort so output order is identical to the monolithic store, and
    :meth:`graph_stats` sums the per-shard :class:`StoreStats`.  The plan
    layer's sharded scan reads :meth:`shard_snapshot` views instead of the
    full snapshot.
    """

    def __init__(self, indexed_attributes: Iterable[str] = (),
                 num_shards: int = 4):
        if num_shards <= 0:
            raise ManagementError(
                f"num_shards must be positive, got {num_shards!r}"
            )
        self.num_shards = num_shards
        self._shards = [
            GraphStore(indexed_attributes=indexed_attributes)
            for _ in range(num_shards)
        ]
        #: link id → index of the shard holding the record (its src shard)
        self._link_home: dict[Id, int] = {}
        self._origins: dict[tuple[str, Id], str] = {}

    # ----------------------------------------------------------------- routing
    def shard_index(self, node_id: Id) -> int:
        """The shard a node id hashes to."""
        return shard_of(node_id, self.num_shards)

    def _node_shard(self, node_id: Id) -> GraphStore:
        return self._shards[self.shard_index(node_id)]

    @property
    def shards(self) -> tuple[GraphStore, ...]:
        """The underlying shard stores (read-only tour for stats/tests)."""
        return tuple(self._shards)

    def shard_stats(self) -> tuple[StoreStats, ...]:
        """Per-shard running statistics, in shard order."""
        return tuple(shard.stats for shard in self._shards)

    @property
    def stats(self) -> StoreStats:
        """Merged site-wide statistics (the monolithic store's view)."""
        return StoreStats.merged(shard.stats for shard in self._shards)

    # ------------------------------------------------------------------ write
    def upsert_node(self, node: Node, origin: str = LOCAL) -> Node:
        """Insert or replace a node record in its hash shard.

        Node writes are entirely shard-local, so this delegates to the
        shard's own :meth:`GraphStore.upsert_node` (links cannot: their
        invariants span shards).  The global origins map mirrors the
        shard-level entry because provenance queries are site-wide.
        """
        shard = self._node_shard(node.id)
        shard.upsert_node(node, origin=origin)
        self._origins[("node", node.id)] = origin
        return node

    def upsert_link(self, link: Link, origin: str = LOCAL) -> Link:
        """Insert or replace a link (endpoints may live in any shard)."""
        for endpoint in (link.src, link.tgt):
            if not self.has_node(endpoint):
                raise DanglingLinkError(link.id, endpoint)
        home = self._link_home.get(link.id)
        if home is not None:
            old = self._shards[home]._links[link.id]
            if (old.src, old.tgt) != (link.src, link.tgt):
                raise ManagementError(
                    f"link {link.id!r} cannot change endpoints on upsert"
                )
            self._shards[home]._deindex_link(old)
        src_shard_index = self.shard_index(link.src)
        shard = self._shards[src_shard_index]
        shard._links[link.id] = link
        shard._out[link.src].add(link.id)
        self._node_shard(link.tgt)._in[link.tgt].add(link.id)
        shard._index_link(link)
        self._link_home[link.id] = src_shard_index
        self._origins[("link", link.id)] = origin
        shard.stats.writes += 1
        return link

    def delete_link(self, link_id: Id) -> None:
        """Remove a link from its home shard and the target's in-index."""
        home = self._link_home.pop(link_id, None)
        if home is None:
            raise UnknownLinkError(link_id)
        shard = self._shards[home]
        link = shard._links.pop(link_id)
        shard._deindex_link(link)
        shard._out[link.src].discard(link_id)
        self._node_shard(link.tgt)._in.get(link.tgt, set()).discard(link_id)
        self._origins.pop(("link", link_id), None)
        shard.stats.deletes += 1

    def delete_node(self, node_id: Id) -> None:
        """Remove a node and cascade to incident links (any shard)."""
        shard = self._node_shard(node_id)
        node = shard._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        incident = set(shard._out.get(node_id, ())) | set(
            shard._in.get(node_id, ())
        )
        for link_id in incident:
            if link_id in self._link_home:
                self.delete_link(link_id)
        shard._deindex_node(node)
        del shard._nodes[node_id]
        shard._out.pop(node_id, None)
        shard._in.pop(node_id, None)
        shard._origins.pop(("node", node_id), None)
        self._origins.pop(("node", node_id), None)
        shard.stats.deletes += 1

    # ------------------------------------------------------------------ read
    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        """The attributes every shard maintains value indexes for."""
        return self._shards[0].indexed_attributes

    def node(self, node_id: Id) -> Node:
        """Primary-key node lookup (one hash, one shard probe)."""
        node = self._node_shard(node_id)._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        return node

    def link(self, link_id: Id) -> Link:
        """Primary-key link lookup via the link-home routing table."""
        home = self._link_home.get(link_id)
        if home is None:
            raise UnknownLinkError(link_id)
        return self._shards[home]._links[link_id]

    def has_node(self, node_id: Id) -> bool:
        """True if the node exists (in its hash shard)."""
        return node_id in self._node_shard(node_id)._nodes

    def has_link(self, link_id: Id) -> bool:
        """True if the link exists."""
        return link_id in self._link_home

    @property
    def num_nodes(self) -> int:
        """Node count across all shards."""
        return sum(shard.num_nodes for shard in self._shards)

    @property
    def num_links(self) -> int:
        """Link count across all shards."""
        return len(self._link_home)

    def nodes_of_type(self, type_name: str) -> Iterator[Node]:
        """Scatter the type lookup; merge in the monolithic sort order."""
        hits = [
            (node_id, shard)
            for shard in self._shards
            for node_id in shard._node_type_index.get(type_name, ())
        ]
        for node_id, shard in sorted(hits, key=lambda pair: repr(pair[0])):
            yield shard._nodes[node_id]

    def links_of_type(self, type_name: str) -> Iterator[Link]:
        """Scatter the link-type lookup; merge in monolithic sort order."""
        hits = [
            (link_id, shard)
            for shard in self._shards
            for link_id in shard._link_type_index.get(type_name, ())
        ]
        for link_id, shard in sorted(hits, key=lambda pair: repr(pair[0])):
            yield shard._links[link_id]

    def find_nodes(self, att: str, value: Any) -> Iterator[Node]:
        """Scatter an attribute-index lookup across every shard."""
        hits: list[tuple[Id, GraphStore]] = []
        for shard in self._shards:
            index = shard._attr_indexes.get(att)
            if index is None:
                raise ManagementError(
                    f"attribute {att!r} is not indexed; registered: "
                    f"{sorted(shard._attr_indexes)}"
                )
            hits.extend((node_id, shard) for node_id in index.get(value, ()))
        for node_id, shard in sorted(hits, key=lambda pair: repr(pair[0])):
            yield shard._nodes[node_id]

    def out_links(self, node_id: Id) -> Iterator[Link]:
        """Adjacency scan: outgoing links (shard-local by construction)."""
        shard = self._node_shard(node_id)
        for link_id in shard._out.get(node_id, ()):
            yield shard._links[link_id]

    def in_links(self, node_id: Id) -> Iterator[Link]:
        """Adjacency scan: incoming links (records resolve via routing)."""
        for link_id in self._node_shard(node_id)._in.get(node_id, ()):
            yield self._shards[self._link_home[link_id]]._links[link_id]

    def origin_of(self, kind: str, record_id: Id) -> str | None:
        """Provenance of a record ('local', 'derived', or a site name)."""
        return self._origins.get((kind, record_id))

    def records_from(self, origin: str) -> tuple[set[Id], set[Id]]:
        """(node ids, link ids) owned by *origin*."""
        nodes = {rid for (kind, rid), o in self._origins.items()
                 if kind == "node" and o == origin}
        links = {rid for (kind, rid), o in self._origins.items()
                 if kind == "link" and o == origin}
        return nodes, links

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> SocialContentGraph:
        """A full logical graph: union of the shard populations.

        Nodes land shard by shard, then links — a link's endpoints may
        live in different shards, so all nodes must exist before any link
        is attached.
        """
        graph = SocialContentGraph()
        for shard in self._shards:
            for node in shard._nodes.values():
                graph.add_node(node)
        for shard in self._shards:
            for link in shard._links.values():
                graph.add_link(link)
        return graph

    def shard_snapshot(self, index: int) -> SocialContentGraph:
        """One shard's node population as a null graph (scan scatter view).

        Links are deliberately omitted: the consumer is the plan layer's
        sharded node scan, which evaluates per-node predicates and scoring
        only — link-touching operators read the full snapshot.
        """
        shard = self._shards[index]
        graph = SocialContentGraph()
        for node in shard._nodes.values():
            graph.add_node(node)
        return graph

    def graph_stats(self) -> GraphStats:
        """Merged optimizer statistics across all shards."""
        return self.stats.as_graph_stats(self.num_nodes, self.num_links)
